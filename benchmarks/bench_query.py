"""Benchmark: summary-pruned queries vs the load-everything baseline.

Builds a city-scale store (10k objects by default, ~110 raw points
each, inserted uncompressed so the byte accounting is exact), runs a
deterministic mix of position / window / nearest queries through
:class:`repro.query.engine.QueryEngine`, and measures

* **decoded bytes per query** — read from the engine's own counters —
  against what the brute-force baseline (:mod:`repro.query.baseline`)
  decodes for the same answers, and
* wall-clock latency for both sides (informational; the byte ratio is
  the machine-independent metric the CI perf gate pins).

The headline number is ``decoded_bytes_ratio``: baseline bytes over
engine bytes, aggregated over the whole query mix. The engine promises
at least 10x on the full-size store; the report is marked failed when
it does not deliver. Answers are also cross-checked against the
baseline — a fast wrong answer must fail the bench, not win it.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_query.py

or the CI-sized variant (fewer objects, same query mix)::

    PYTHONPATH=src python benchmarks/bench_query.py --quick

or via pytest::

    pytest benchmarks/bench_query.py
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.geometry.bbox import BBox
from repro.obs import Registry
from repro.query.baseline import brute_nearest, brute_position, brute_window
from repro.query.engine import QueryEngine
from repro.storage.store import TrajectoryStore
from repro.trajectory import Trajectory

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_query.json"
FULL_OBJECTS = 10_000
QUICK_OBJECTS = 400
POINTS_PER_OBJECT = 110
#: Queries per verb; small enough that brute force stays affordable on
#: the full store, large enough to average over partition layouts.
N_QUERIES = 40
#: The synthetic city: objects move inside a 40 km square.
CITY_M = 40_000.0
#: Required decoded-bytes advantage on the full-size store.
REQUIRED_RATIO = 10.0


def make_store(n_objects: int, seed: int = 17) -> TrajectoryStore:
    """A deterministic store of random-walk trips across the city.

    Uncompressed inserts (``compressor=None``) keep stored bytes equal
    to raw geometry bytes, so the decoded-byte comparison measures the
    query layer alone, not compression.
    """
    rng = np.random.default_rng(seed)
    store = TrajectoryStore(cell_size_m=2_000.0)
    starts = rng.uniform(0.0, 86_400.0, size=n_objects)
    origins = rng.uniform(0.05 * CITY_M, 0.95 * CITY_M, size=(n_objects, 2))
    for i in range(n_objects):
        n = int(rng.integers(POINTS_PER_OBJECT - 10, POINTS_PER_OBJECT + 10))
        t = starts[i] + np.cumsum(rng.uniform(5.0, 15.0, size=n))
        steps = rng.normal(0.0, 60.0, size=(n, 2))
        xy = np.clip(origins[i] + np.cumsum(steps, axis=0), 0.0, CITY_M)
        store.insert(Trajectory(t, xy, f"obj-{i:05d}"))
    return store


def make_queries(store: TrajectoryStore, seed: int = 23) -> dict[str, list]:
    """A deterministic query mix anchored on actual stored objects."""
    rng = np.random.default_rng(seed)
    keys = store.object_ids()
    picks = rng.choice(len(keys), size=N_QUERIES, replace=False)
    position = []
    window = []
    nearest = []
    for index in picks:
        key = keys[int(index)]
        rec = store.record(key)
        when = float(
            rec.start_time + rng.uniform(0.1, 0.9) * (rec.end_time - rec.start_time)
        )
        position.append((key, when))
        cx, cy = rec.bbox.center
        half = float(rng.uniform(250.0, 1_500.0))
        window.append((
            when - float(rng.uniform(60.0, 600.0)),
            when + float(rng.uniform(60.0, 600.0)),
            BBox(cx - half, cy - half, cx + half, cy + half),
        ))
        nearest.append((cx, cy, when, int(rng.integers(1, 6))))
    return {"position": position, "window": window, "nearest": nearest}


def _blob_bytes(store: TrajectoryStore) -> dict[str, int]:
    return {key: len(store.record(key).blob) for key in store.object_ids()}


def run_engine(
    store: TrajectoryStore, queries: dict[str, list]
) -> tuple[dict, dict]:
    """Run the mix through the engine; returns (answers, measurements)."""
    registry = Registry()
    engine = QueryEngine(store, metrics=registry)
    answers: dict = {}
    measure: dict = {}
    for verb in ("position", "window", "nearest"):
        before = registry.counter("query_decoded_bytes").value
        out = []
        started = time.perf_counter()
        if verb == "position":
            for key, when in queries[verb]:
                a = engine.position_at(key, when)
                out.append((a.x, a.y))
        elif verb == "window":
            for t0, t1, box in queries[verb]:
                out.append(engine.window(t0, t1, box))
        else:
            for x, y, when, k in queries[verb]:
                out.append([
                    (a.object_id, a.distance_m)
                    for a in engine.nearest(x, y, when, k=k)
                ])
        elapsed = time.perf_counter() - started
        measure[verb] = {
            "decoded_bytes": registry.counter("query_decoded_bytes").value - before,
            "elapsed_s": elapsed,
        }
        answers[verb] = out
    measure["prune_ratio"] = registry.gauge("query_prune_ratio").value
    return answers, measure


def run_baseline(
    store: TrajectoryStore, queries: dict[str, list]
) -> tuple[dict, dict]:
    """Brute force: decode everything relevant, count the blob bytes.

    Per the load-everything contract, a position query decodes its
    object's whole blob; window and nearest decode every stored blob.
    The decode cache is disabled-equivalent here: bytes are charged per
    query, which is exactly what a cacheless full-load server would do.
    """
    blob_bytes = _blob_bytes(store)
    total_bytes = sum(blob_bytes.values())
    answers: dict = {}
    measure: dict = {}

    started = time.perf_counter()
    answers["position"] = [
        tuple(float(v) for v in brute_position(store, key, when))
        for key, when in queries["position"]
    ]
    measure["position"] = {
        "decoded_bytes": sum(
            blob_bytes[key] for key, _ in queries["position"]
        ),
        "elapsed_s": time.perf_counter() - started,
    }

    started = time.perf_counter()
    answers["window"] = [
        brute_window(store, t0, t1, box) for t0, t1, box in queries["window"]
    ]
    measure["window"] = {
        "decoded_bytes": total_bytes * len(queries["window"]),
        "elapsed_s": time.perf_counter() - started,
    }

    started = time.perf_counter()
    answers["nearest"] = [
        brute_nearest(store, x, y, when, k=k)
        for x, y, when, k in queries["nearest"]
    ]
    measure["nearest"] = {
        "decoded_bytes": total_bytes * len(queries["nearest"]),
        "elapsed_s": time.perf_counter() - started,
    }
    return answers, measure


def bench(n_objects: int, output: Path = OUTPUT) -> dict:
    """Build, query both ways, verify equality, write the report."""
    store = make_store(n_objects)
    queries = make_queries(store)
    engine_answers, engine_measure = run_engine(store, queries)
    brute_answers, brute_measure = run_baseline(store, queries)

    failures = []
    if engine_answers["position"] != brute_answers["position"]:
        failures.append("position answers diverge from brute force")
    if engine_answers["window"] != brute_answers["window"]:
        failures.append("window answers diverge from brute force")
    if engine_answers["nearest"] != brute_answers["nearest"]:
        failures.append("nearest answers diverge from brute force")

    verbs = {}
    engine_total = 0
    brute_total = 0
    for verb in ("position", "window", "nearest"):
        e, b = engine_measure[verb], brute_measure[verb]
        engine_total += e["decoded_bytes"]
        brute_total += b["decoded_bytes"]
        verbs[verb] = {
            "n_queries": len(queries[verb]),
            "engine_decoded_bytes_per_query": e["decoded_bytes"] / N_QUERIES,
            "baseline_decoded_bytes_per_query": b["decoded_bytes"] / N_QUERIES,
            "decoded_bytes_ratio": (
                b["decoded_bytes"] / e["decoded_bytes"]
                if e["decoded_bytes"]
                else float("inf")
            ),
            "engine_ms_per_query": 1e3 * e["elapsed_s"] / N_QUERIES,
            "baseline_ms_per_query": 1e3 * b["elapsed_s"] / N_QUERIES,
        }
    ratio = brute_total / engine_total if engine_total else float("inf")
    meets = ratio >= REQUIRED_RATIO
    if not meets:
        failures.append(
            f"decoded_bytes_ratio {ratio:.1f} below required {REQUIRED_RATIO}"
        )

    store_stats = store.stats()
    report = {
        "benchmark": "query",
        "config": {
            "n_objects": n_objects,
            "points_per_object": POINTS_PER_OBJECT,
            "n_queries_per_verb": N_QUERIES,
            "partition_points": store.summary_config.partition_points,
            "summary_grid_m": store.summary_config.grid_m,
        },
        "results": {
            "stored_bytes": store_stats.stored_bytes,
            "engine_decoded_bytes": engine_total,
            "baseline_decoded_bytes": brute_total,
            "decoded_bytes_ratio": ratio,
            "prune_ratio": engine_measure["prune_ratio"],
            "verbs": verbs,
        },
        "failed": bool(failures),
        "failures": failures,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_query_quick(tmp_path):
    """Suite-sized smoke: answers match brute force and pruning wins."""
    report = bench(200, output=tmp_path / "BENCH_query.json")
    assert not report["failed"], report["failures"]
    assert report["results"]["decoded_bytes_ratio"] >= REQUIRED_RATIO


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--objects", type=int, default=FULL_OBJECTS,
        help=f"stored objects (default {FULL_OBJECTS})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-sized run ({QUICK_OBJECTS} objects instead of {FULL_OBJECTS})",
    )
    parser.add_argument(
        "--output", "-o", type=Path, default=OUTPUT,
        help=f"report path (default {OUTPUT.name} at the repo root)",
    )
    args = parser.parse_args()
    n_objects = QUICK_OBJECTS if args.quick else args.objects
    report = bench(n_objects, output=args.output)
    results = report["results"]
    for verb, entry in results["verbs"].items():
        print(
            f"{verb}: engine {entry['engine_decoded_bytes_per_query']:,.0f} "
            f"B/query vs baseline "
            f"{entry['baseline_decoded_bytes_per_query']:,.0f} B/query "
            f"({entry['decoded_bytes_ratio']:.1f}x), "
            f"{entry['engine_ms_per_query']:.2f} ms vs "
            f"{entry['baseline_ms_per_query']:.2f} ms"
        )
    print(
        f"overall decoded-bytes ratio: {results['decoded_bytes_ratio']:.1f}x "
        f"(required >= {REQUIRED_RATIO:.0f}x), "
        f"prune ratio {results['prune_ratio']:.3f}"
    )
    print(f"-> {args.output}")
    return 1 if report["failed"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
