"""Sect. 1's motivating arithmetic: storage for a fleet of tracked objects.

The paper: "If such data is collected every 10 seconds, a simple
calculation shows that 100 Mb of storage capacity is required to store the
data for just over 400 objects for a single day, barring any data
compression."

This bench reproduces the arithmetic on the actual store: it ingests a
simulated fleet, reports raw vs point-compressed vs encoded sizes, and
extrapolates to the paper's 400-objects-for-a-day scenario, asserting the
combined pipeline wins at least an order of magnitude.
"""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.core import TDTR
from repro.datagen import TrajectoryGenerator, URBAN
from repro.experiments.reporting import render_table
from repro.storage import TrajectoryStore

FLEET_SIZE = 12


def _build_store() -> TrajectoryStore:
    generator = TrajectoryGenerator(seed=404)
    # Decimetre coordinates and centisecond timestamps are far below the
    # 50 m error budget and halve the per-record byte cost.
    store = TrajectoryStore(
        compressor=TDTR(epsilon=50.0),
        time_resolution_s=0.01,
        coord_resolution_m=0.1,
    )
    for i in range(FLEET_SIZE):
        traj = generator.generate(URBAN.with_length(7_000.0), f"car-{i:02d}")
        store.insert(traj)
    return store


def test_storage_arithmetic(benchmark, results_dir):
    store = benchmark.pedantic(_build_store, rounds=1, iterations=1)
    stats = store.stats()

    # The paper's raw-format figure: one <t, x, y> record per 10 s.
    fixes_per_object_day = 24 * 3600 // 10
    raw_record_bytes = 24  # three float64, as stored raw
    raw_day_mb = 400 * fixes_per_object_day * raw_record_bytes / 1e6
    compressed_day_mb = raw_day_mb / stats.byte_compression_ratio

    table = render_table(
        ["quantity", "value"],
        [
            ("fleet size ingested", stats.n_objects),
            ("raw points", stats.n_raw_points),
            ("stored points", stats.n_stored_points),
            ("point compression (%)", stats.point_compression_percent),
            ("raw bytes", stats.raw_bytes),
            ("stored bytes", stats.stored_bytes),
            ("byte compression ratio", stats.byte_compression_ratio),
            ("paper scenario raw (MB/day, 400 objects)", raw_day_mb),
            ("paper scenario stored (MB/day, 400 objects)", compressed_day_mb),
        ],
        title="Sect. 1 storage arithmetic, reproduced on the trajectory store",
    )
    publish(results_dir, "storage_arithmetic", table)

    # The paper's "100 Mb for just over 400 objects" figure (their record
    # is ~29 bytes with overheads; ours is 24) — same order of magnitude.
    assert 60.0 < raw_day_mb < 150.0

    # Point selection plus the codec combine to an order of magnitude.
    assert stats.byte_compression_ratio >= 8.0
    assert stats.point_compression_percent > 50.0

    # Every stored object remains queryable.
    assert len(store.query_time_window(0.0, 1e9)) == FLEET_SIZE
