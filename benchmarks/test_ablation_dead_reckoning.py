"""Ablation: dead reckoning vs the opening-window family.

The paper's future work points at using momentaneous speed/direction for
"more advanced interpolation techniques"; dead reckoning is that idea as
an O(N) update policy. This bench quantifies the trade on the standard
dataset: DR selects points ~in linear time but, choosing causally, needs
more points than OPW-TR for the same error — the window's hindsight is
what the O(N²) buys.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import publish
from repro.core import DeadReckoning, OPWSP, OPWTR
from repro.error import mean_synchronized_error
from repro.experiments.reporting import render_table

EPS = 50.0


def test_ablation_dead_reckoning(benchmark, dataset, results_dir):
    def run():
        out = {}
        for label, algo in (
            ("dead-reckoning", DeadReckoning(epsilon=EPS)),
            ("opw-tr", OPWTR(epsilon=EPS)),
            ("opw-sp(5m/s)", OPWSP(max_dist_error=EPS, max_speed_error=5.0)),
        ):
            started = time.perf_counter()
            results = [algo.compress(traj) for traj in dataset]
            elapsed = time.perf_counter() - started
            errors = [
                mean_synchronized_error(traj, res.compressed)
                for traj, res in zip(dataset, results)
            ]
            out[label] = {
                "compression": float(
                    np.mean([r.compression_percent for r in results])
                ),
                "error": float(np.mean(errors)),
                "seconds": elapsed,
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["algorithm", "compression_%", "mean_sync_err_m", "selection_seconds"],
        [
            (label, row["compression"], row["error"], row["seconds"])
            for label, row in out.items()
        ],
        title=f"Ablation: dead reckoning vs opening windows (eps = {EPS:g} m)",
    )
    publish(results_dir, "ablation_dead_reckoning", table)

    # DR's point selection is much cheaper than the window rescans...
    assert out["dead-reckoning"]["seconds"] < out["opw-tr"]["seconds"]
    # ...and its error remains moderate (prediction bounded by eps keeps
    # the reconstruction in the same ballpark)...
    assert out["dead-reckoning"]["error"] < EPS
    # ...but the hindsight chord wins the accuracy-per-point trade:
    # at the same eps OPW-TR commits less error.
    assert out["opw-tr"]["error"] <= out["dead-reckoning"]["error"] + 1e-9
