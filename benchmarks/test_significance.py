"""Significance: the headline improvements are statistically conclusive.

The paper's figures assert superiority from averages over ten
trajectories; this bench adds the uncertainty the paper omits. Paired
per-(trajectory, threshold) differences with percentile-bootstrap 95%
confidence intervals, for the two headline claims:

* TD-TR's synchronized error is below NDP's (Fig. 7), and
* OPW-TR's is below NOPW's (Fig. 9),

asserting in each case that the CI excludes zero and that the better
algorithm wins on at least nine of every ten individual pairs — the
improvement is not an artifact of averaging (a handful of individual
pairs can order either way when both algorithms keep very few points).
"""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.core import NOPW, OPWTR, TDTR, DouglasPeucker
from repro.experiments import (
    DISTANCE_THRESHOLDS_M,
    compare_algorithms,
    run_sweep,
)
from repro.experiments.reporting import render_table


def test_headline_claims_are_conclusive(benchmark, dataset, results_dir):
    def run():
        sweeps = {
            "ndp": run_sweep(lambda e: DouglasPeucker(epsilon=e), DISTANCE_THRESHOLDS_M, dataset),
            "td-tr": run_sweep(lambda e: TDTR(epsilon=e), DISTANCE_THRESHOLDS_M, dataset),
            "nopw": run_sweep(lambda e: NOPW(epsilon=e), DISTANCE_THRESHOLDS_M, dataset),
            "opw-tr": run_sweep(lambda e: OPWTR(epsilon=e), DISTANCE_THRESHOLDS_M, dataset),
        }
        return [
            compare_algorithms(sweeps["td-tr"], sweeps["ndp"]),
            compare_algorithms(sweeps["opw-tr"], sweeps["nopw"]),
            compare_algorithms(
                sweeps["td-tr"], sweeps["ndp"], metric="compression_percent"
            ),
        ]

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["comparison", "metric", "pairs", "mean_diff", "ci_low", "ci_high", "win_%"],
        [
            (
                f"{c.algorithm_a} vs {c.algorithm_b}",
                c.metric,
                c.n_pairs,
                c.mean_difference,
                c.ci_low,
                c.ci_high,
                100.0 * c.win_fraction_a,
            )
            for c in comparisons
        ],
        title="Paired bootstrap comparisons (95% CI), full threshold grid",
    )
    publish(results_dir, "significance", table)

    error_claims = comparisons[:2]
    for comparison in error_claims:
        assert comparison.conclusive, comparison.summary()
        assert comparison.ci_high < 0.0  # error strictly lower
        assert comparison.win_fraction_a >= 0.9  # nearly every pair

    # The compression give-up of TD-TR vs NDP is real but bounded: the
    # CI sits below zero (NDP compresses more) yet within 25 points.
    compression = comparisons[2]
    assert compression.ci_high < 0.0
    assert compression.ci_low > -25.0
