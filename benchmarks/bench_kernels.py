"""Benchmark: numpy batch kernels vs the scalar python reference engine.

Every compressor accepts ``engine="numpy" | "python"``; the two engines
select identical indices by construction (the conformance suite pins
bit-identity). This bench measures what the numpy engine buys: it times
the paper's two headline algorithms (TD-TR and OPW-TR) on one long
synthetic trajectory under both engines, verifies the outputs match, and
writes the timings to ``BENCH_kernels.json`` at the repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--points 100000]

or the suite-sized variant::

    PYTHONPATH=src python benchmarks/bench_kernels.py --quick

or via pytest::

    pytest benchmarks/bench_kernels.py
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.registry import make_compressor
from repro.datagen import URBAN, TrajectoryGenerator
from repro.trajectory import Trajectory

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
#: The paper's two spatiotemporal headliners — top-down (batch) and
#: opening-window (online) — plus the one-pass error-bounded family
#: (OPERB's rectangle regions, CISED's polygon regions). All inner
#: loops ride the synchronized distance kernels.
SPECS = (
    "td-tr:epsilon=30",
    "opw-tr:epsilon=30",
    "operb:epsilon=30",
    "cised:epsilon=30",
)
FULL_POINTS = 100_000
QUICK_POINTS = 4_000


def make_trajectory(n_points: int, seed: int = 7) -> Trajectory:
    """One deterministic urban trip resampled to ``n_points`` fixes."""
    traj = TrajectoryGenerator(seed=seed).generate(URBAN, object_id="bench")
    step = (traj.end_time - traj.start_time) / (n_points - 1)
    return traj.resample(step)


def time_engine(spec: str, traj: Trajectory, engine: str, repeats: int) -> dict:
    """Best-of-``repeats`` wall time for one (spec, engine) pair."""
    compressor = make_compressor(f"{spec},engine={engine}")
    best = None
    indices = None
    for _ in range(repeats):
        started = time.perf_counter()
        indices = compressor.select_indices(traj)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    assert indices is not None
    return {"engine": engine, "best_s": best, "n_kept": int(len(indices)),
            "indices": indices}


def bench(n_points: int, output: Path = OUTPUT) -> dict:
    """Time both engines per spec, check agreement, write the JSON report."""
    traj = make_trajectory(n_points)
    algorithms = {}
    for spec in SPECS:
        # The scalar reference is the slow side: time it once; give the
        # numpy engine best-of-3 to smooth allocator noise.
        python = time_engine(spec, traj, "python", repeats=1)
        numpy_ = time_engine(spec, traj, "numpy", repeats=3)
        assert np.array_equal(python.pop("indices"), numpy_.pop("indices")), (
            f"engines diverged on {spec}"
        )
        algorithms[spec] = {
            "python": python,
            "numpy": numpy_,
            "speedup": python["best_s"] / numpy_["best_s"],
        }
    report = {
        "benchmark": "kernels",
        "n_points": len(traj),
        "algorithms": algorithms,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_kernels_quick(tmp_path):
    """Suite-sized smoke: engines agree and the report lands on disk."""
    report = bench(800, output=tmp_path / "BENCH_kernels.json")
    assert (tmp_path / "BENCH_kernels.json").exists()
    for spec, entry in report["algorithms"].items():
        assert entry["python"]["n_kept"] == entry["numpy"]["n_kept"], spec


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points", type=int, default=FULL_POINTS,
        help=f"trajectory length in fixes (default {FULL_POINTS})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-sized run ({QUICK_POINTS} points instead of {FULL_POINTS})",
    )
    parser.add_argument(
        "--output", "-o", type=Path, default=OUTPUT,
        help=f"report path (default {OUTPUT.name} at the repo root)",
    )
    args = parser.parse_args()
    n_points = QUICK_POINTS if args.quick else args.points
    report = bench(n_points, output=args.output)
    for spec, entry in report["algorithms"].items():
        print(
            f"{spec}: python {entry['python']['best_s']:.2f}s, "
            f"numpy {entry['numpy']['best_s']:.2f}s "
            f"({entry['speedup']:.1f}x), kept {entry['numpy']['n_kept']}"
        )
    print(f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
