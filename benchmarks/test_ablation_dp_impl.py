"""Ablation: recursive vs explicit-stack Douglas-Peucker engines.

DESIGN.md: the textbook recursion is kept as an executable specification;
production uses an explicit stack (no recursion-depth hazard). Identical
outputs, comparable cost — this bench pins both, for NDP and TD-TR.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import publish
from repro.core.douglas_peucker import (
    perpendicular_segment_error,
    top_down_indices,
    top_down_indices_recursive,
)
from repro.core.td_tr import synchronized_segment_error
from repro.experiments.reporting import render_table

EPS = 50.0


def test_ablation_dp_engines(benchmark, dataset, results_dir):
    def run_iterative():
        out = []
        for traj in dataset:
            out.append(top_down_indices(traj, EPS, perpendicular_segment_error))
            out.append(top_down_indices(traj, EPS, synchronized_segment_error))
        return out

    iterative = benchmark.pedantic(run_iterative, rounds=1, iterations=1)

    started = time.perf_counter()
    run_iterative()
    iterative_seconds = time.perf_counter() - started

    started = time.perf_counter()
    recursive = []
    for traj in dataset:
        recursive.append(
            top_down_indices_recursive(traj, EPS, perpendicular_segment_error)
        )
        recursive.append(
            top_down_indices_recursive(traj, EPS, synchronized_segment_error)
        )
    recursive_seconds = time.perf_counter() - started

    for a, b in zip(iterative, recursive):
        np.testing.assert_array_equal(a, b)

    table = render_table(
        ["engine", "total_seconds"],
        [
            ("iterative (explicit stack)", iterative_seconds),
            ("recursive (textbook)", recursive_seconds),
        ],
        title="Ablation: DP engines agree exactly (NDP + TD-TR criteria, 10 trajectories)",
    )
    publish(results_dir, "ablation_dp_impl", table)
