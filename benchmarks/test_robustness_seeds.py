"""Robustness: the headline findings hold across dataset seeds.

Every other bench runs on the fixed-seed standard dataset; a reproduction
that only held for one random draw would be fragile. This bench
regenerates the evaluation dataset under three different seeds and
re-asserts the paper's two headline relations (S1: TD-TR error far below
NDP at matched thresholds; S4: OPW-TR error far below NOPW) on each —
the findings are properties of the algorithms, not of a lucky dataset.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.core import NOPW, OPWTR, TDTR, DouglasPeucker
from repro.error import mean_synchronized_error
from repro.experiments import paper_dataset
from repro.experiments.reporting import render_table

SEEDS = (2004, 7, 99)
EPS = 50.0


def test_headline_relations_across_seeds(benchmark, results_dir):
    def run():
        rows = []
        for seed in SEEDS:
            dataset = paper_dataset(seed)

            def mean_error(algo) -> float:
                return float(
                    np.mean(
                        [
                            mean_synchronized_error(
                                traj, algo.compress(traj).compressed
                            )
                            for traj in dataset
                        ]
                    )
                )

            rows.append(
                (
                    seed,
                    mean_error(DouglasPeucker(epsilon=EPS)),
                    mean_error(TDTR(epsilon=EPS)),
                    mean_error(NOPW(epsilon=EPS)),
                    mean_error(OPWTR(epsilon=EPS)),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["seed", "ndp_alpha_m", "td-tr_alpha_m", "nopw_alpha_m", "opw-tr_alpha_m"],
        rows,
        title=f"Robustness: headline relations across seeds (eps = {EPS:g} m)",
    )
    publish(results_dir, "robustness_seeds", table)

    for seed, ndp, tdtr, nopw, opwtr in rows:
        assert tdtr < 0.5 * ndp, f"S1 failed for seed {seed}"
        assert opwtr < 0.5 * nopw, f"S4 failed for seed {seed}"
