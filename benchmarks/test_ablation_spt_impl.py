"""Ablation: the paper's SPT pseudocode vs the vectorized OPW-SP.

DESIGN.md: we port the Sect. 3.3 pseudocode verbatim (including its
rescan-the-window-on-every-growth behaviour) as the executable
specification, and ship a numpy-vectorized equivalent. This bench pins
that they select identical points and measures the constant-factor gap.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import publish
from repro.core import OPWSP
from repro.core.spt import spt_paper_indices
from repro.experiments.reporting import render_table

DIST_EPS = 50.0
SPEED_EPS = 5.0


def test_ablation_spt_implementations(benchmark, dataset, results_dir):
    def run_vectorized():
        return [OPWSP(max_dist_error=DIST_EPS, max_speed_error=SPEED_EPS).compress(traj).indices for traj in dataset]

    vectorized = benchmark.pedantic(run_vectorized, rounds=1, iterations=1)

    started = time.perf_counter()
    faithful = [spt_paper_indices(traj, DIST_EPS, SPEED_EPS) for traj in dataset]
    faithful_seconds = time.perf_counter() - started

    started = time.perf_counter()
    run_vectorized()
    vectorized_seconds = time.perf_counter() - started

    for traj, a, b in zip(dataset, faithful, vectorized):
        np.testing.assert_array_equal(a, b, err_msg=traj.object_id or "?")

    speedup = faithful_seconds / max(vectorized_seconds, 1e-9)
    table = render_table(
        ["implementation", "total_seconds", "speedup"],
        [
            ("spt_paper_indices (pseudocode port)", faithful_seconds, 1.0),
            ("OPWSP (vectorized scan)", vectorized_seconds, speedup),
        ],
        title=(
            "Ablation: SPT implementations select identical points "
            f"({sum(len(i) for i in faithful)} indices over 10 trajectories)"
        ),
    )
    publish(results_dir, "ablation_spt_impl", table)

    assert speedup > 1.0, "the vectorized scan should beat the pure-Python port"
