"""Benchmark: observability overhead on the hot compression path.

The obs layer promises near-zero cost when disabled and small, bounded
cost when enabled. This bench quantifies both on the kernel hot path:
it times ``Compressor.compress`` over a fleet of trajectories with the
ambient registry disabled (the library default — only the fast-path
enabled checks run) and enabled (per-call timers, counters and a
histogram), and reports the enabled/disabled overhead. The acceptance
target is <3% overhead with obs enabled on the kernel bench.

A microbench section prices the individual instruments (counter inc,
timer observe, histogram observe, disabled/enabled spans) in
nanoseconds per operation.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick]

or via pytest::

    pytest benchmarks/bench_obs.py
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

try:  # standalone script: `python benchmarks/bench_obs.py`
    from bench_kernels import make_trajectory
except ImportError:  # collected as the benchmarks package by pytest
    from benchmarks.bench_kernels import make_trajectory

from repro import obs
from repro.core.registry import make_compressor
from repro.obs.registry import Registry

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
SPEC = "td-tr:epsilon=30"
FULL_POINTS = 20_000
QUICK_POINTS = 2_000
REPEATS = 5


def _time_compress(compressor, traj, repeats: int) -> float:
    """Best-of-``repeats`` wall time for one full compress call."""
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        compressor.compress(traj)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    assert best is not None
    return best


def _micro(op, n: int = 100_000) -> float:
    """Nanoseconds per call of a zero-argument operation."""
    started = time.perf_counter()
    for _ in range(n):
        op()
    return (time.perf_counter() - started) / n * 1e9


def bench(n_points: int, output: Path | None = OUTPUT, repeats: int = REPEATS) -> dict:
    """Measure enabled-vs-disabled obs overhead; write the JSON report."""
    traj = make_trajectory(n_points)
    compressor = make_compressor(SPEC)
    previous = obs.get_registry().enabled
    try:
        obs.disable()
        disabled_s = _time_compress(compressor, traj, repeats)
        obs.set_registry(Registry(enabled=True))  # fresh, live ambient sink
        enabled_s = _time_compress(compressor, traj, repeats)
    finally:
        obs.set_registry(None)
        if previous:
            obs.enable()
    overhead = (enabled_s - disabled_s) / disabled_s * 100.0

    live = Registry()
    counter = live.counter("bench")
    timer = live.timer("bench")
    histogram = live.histogram("bench")
    null = Registry(enabled=False)
    null_counter = null.counter("bench")

    def _null_span():
        with obs.span("bench"):
            pass

    obs.configure_tracing(True, ring_size=256)
    try:
        def _live_span():
            with obs.span("bench"):
                pass

        micro = {
            "counter_inc_ns": _micro(counter.inc),
            "timer_observe_ns": _micro(lambda: timer.observe(0.001)),
            "histogram_observe_ns": _micro(lambda: histogram.observe(3.0)),
            "null_counter_inc_ns": _micro(null_counter.inc),
            "span_enabled_ns": _micro(_live_span, n=20_000),
        }
    finally:
        obs.configure_tracing(False)
    micro["span_disabled_ns"] = _micro(_null_span)

    report = {
        "benchmark": "obs-overhead",
        "spec": SPEC,
        "n_points": len(traj),
        "repeats": repeats,
        "disabled_best_s": disabled_s,
        "enabled_best_s": enabled_s,
        "overhead_percent": overhead,
        "target_overhead_percent": 3.0,
        "micro_ns_per_op": micro,
    }
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_obs_quick(tmp_path):
    """Suite-sized smoke: the report is produced and structurally sound.

    The 3% acceptance target is asserted loosely here (10x slack): CI
    runners are noisy and a best-of-5 on a small input can jitter; the
    committed ``BENCH_obs.json`` documents the real measurement.
    """
    report = bench(600, output=tmp_path / "BENCH_obs.json", repeats=3)
    assert (tmp_path / "BENCH_obs.json").exists()
    assert report["disabled_best_s"] > 0
    assert report["enabled_best_s"] > 0
    assert report["overhead_percent"] < 30.0
    assert report["micro_ns_per_op"]["null_counter_inc_ns"] < 10_000


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points", type=int, default=FULL_POINTS,
        help=f"trajectory length in fixes (default {FULL_POINTS})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-sized run ({QUICK_POINTS} points instead of {FULL_POINTS})",
    )
    parser.add_argument(
        "--output", "-o", type=Path, default=OUTPUT,
        help=f"report path (default {OUTPUT.name} at the repo root)",
    )
    args = parser.parse_args()
    n_points = QUICK_POINTS if args.quick else args.points
    report = bench(n_points, output=args.output)
    print(
        f"{SPEC} on {report['n_points']} points: "
        f"obs disabled {report['disabled_best_s'] * 1e3:.2f} ms, "
        f"enabled {report['enabled_best_s'] * 1e3:.2f} ms "
        f"({report['overhead_percent']:+.2f}% overhead, target <3%)"
    )
    for name, ns in report["micro_ns_per_op"].items():
        print(f"  {name}: {ns:.0f} ns/op")
    print(f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
