"""Scaling: runtime versus series length for every algorithm family.

The paper states both DP and OW algorithms are O(N²). This bench measures
wall time on progressively longer series (a long rural drive resampled to
1 s fixes and sliced) and reports the growth, pinning that doubling N
does not blow past the quadratic envelope for the O(N²) algorithms and
that the cheap baselines stay near-linear.
"""

from __future__ import annotations

import time

from benchmarks.conftest import publish
from repro.core import (
    BottomUp,
    DouglasPeucker,
    EveryIth,
    NOPW,
    OPWSP,
    OPWTR,
    TDTR,
)
from repro.datagen import RURAL, TrajectoryGenerator
from repro.experiments.reporting import render_table

SIZES = (250, 500, 1000, 2000)


def _long_trajectory():
    generator = TrajectoryGenerator(seed=31)
    traj = generator.generate(RURAL.with_length(36_000.0), "scaling")
    return traj.resample(1.0)  # ~1 fix/second: thousands of points


def test_scaling_with_series_length(benchmark, results_dir):
    base = benchmark.pedantic(_long_trajectory, rounds=1, iterations=1)
    assert len(base) >= SIZES[-1], "need a long enough series for the sweep"

    algorithms = [
        DouglasPeucker(epsilon=50.0),
        TDTR(epsilon=50.0),
        NOPW(epsilon=50.0),
        OPWTR(epsilon=50.0),
        OPWSP(max_dist_error=50.0, max_speed_error=5.0),
        BottomUp(epsilon=50.0),
        EveryIth(step=5),
    ]
    timings: dict[str, list[float]] = {algo.name: [] for algo in algorithms}
    for size in SIZES:
        piece = base.slice_index(0, size)
        for algo in algorithms:
            started = time.perf_counter()
            algo.compress(piece)
            timings[algo.name].append(time.perf_counter() - started)

    rows = [
        (name, *[f"{seconds * 1000:.1f}" for seconds in series])
        for name, series in timings.items()
    ]
    table = render_table(
        ["algorithm", *[f"N={size} (ms)" for size in SIZES]],
        rows,
        title="Scaling: compression wall time vs series length",
    )
    publish(results_dir, "scaling", table)

    # Everything finishes comfortably at N=2000 (sanity envelope: the
    # worst-case quadratic algorithms stay under 10 s here).
    for name, series in timings.items():
        assert series[-1] < 10.0, f"{name} too slow at N={SIZES[-1]}"

    # The naive baseline is far cheaper than the O(N^2) window scans.
    assert timings["every-ith"][-1] < timings["opw-tr"][-1]
