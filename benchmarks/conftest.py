"""Shared fixtures for the benchmark suite.

Every file in this directory regenerates one exhibit of the paper's
evaluation (or one ablation from DESIGN.md): it runs the experiment under
``pytest-benchmark``, prints the numeric series behind the exhibit,
writes it to ``benchmarks/results/``, and asserts the paper's qualitative
shape relations.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import paper_dataset
from repro.trajectory import Trajectory

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def dataset() -> list[Trajectory]:
    """The standard ten-trajectory evaluation dataset (fixed seed)."""
    return paper_dataset()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print an exhibit's table and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
