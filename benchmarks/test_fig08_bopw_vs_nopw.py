"""Fig. 8: break-point strategy in opening windows — BOPW vs NOPW.

Paper finding asserted (DESIGN.md S3): BOPW results in higher compression
but worse errors; it suits applications that favour compression over
error, which is why the paper drops it from further comparisons.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.experiments import figure_08, render_aggregate_rows


def test_fig08_bopw_vs_nopw(benchmark, dataset, results_dir):
    fig = benchmark.pedantic(lambda: figure_08(dataset), rounds=1, iterations=1)
    publish(results_dir, "fig08", render_aggregate_rows(fig.rows, title=fig.title))

    bopw = fig.series("bopw")
    nopw = fig.series("nopw")

    # S3a: BOPW compresses at least as much at every threshold, and
    # strictly more on average.
    for bopw_row, nopw_row in zip(bopw, nopw):
        assert bopw_row.compression_percent >= nopw_row.compression_percent - 1e-9
    assert float(np.mean([r.compression_percent for r in bopw])) > float(
        np.mean([r.compression_percent for r in nopw])
    )

    # S3b: BOPW's error is worse on average over the sweep.
    assert float(np.mean([r.mean_sync_error_m for r in bopw])) > float(
        np.mean([r.mean_sync_error_m for r in nopw])
    )

    # The paper notes NOPW's error need not be strictly monotone in the
    # threshold (small-dataset artifact); we only require an overall rise.
    nopw_errors = [r.mean_sync_error_m for r in nopw]
    assert nopw_errors[-1] > nopw_errors[0] * 0.8
