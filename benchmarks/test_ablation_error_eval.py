"""Ablation: closed-form error integral vs sampled approximation.

DESIGN.md: the Sect. 4.2 average synchronized error has a closed form;
a trapezoid-sampled estimator cross-checks it. This bench measures the
cost gap and verifies agreement at fine sampling on the real sweep
workload (TD-TR at 50 m over the ten trajectories).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import publish
from repro.core import TDTR
from repro.error import mean_synchronized_error, mean_synchronized_error_sampled
from repro.experiments.reporting import render_table


def test_ablation_error_evaluation(benchmark, dataset, results_dir):
    pairs = [(traj, TDTR(epsilon=50.0).compress(traj).compressed) for traj in dataset]

    closed = benchmark.pedantic(
        lambda: [mean_synchronized_error(p, a) for p, a in pairs],
        rounds=1,
        iterations=1,
    )

    timings = []
    started = time.perf_counter()
    closed_again = [mean_synchronized_error(p, a) for p, a in pairs]
    timings.append(("closed form (exact)", time.perf_counter() - started, 0.0))
    assert np.allclose(closed, closed_again)

    for n_samples in (256, 4096, 65_536):
        started = time.perf_counter()
        sampled = [
            mean_synchronized_error_sampled(p, a, n_samples) for p, a in pairs
        ]
        elapsed = time.perf_counter() - started
        max_rel = float(
            np.max(np.abs(np.asarray(sampled) - np.asarray(closed)) / np.asarray(closed))
        )
        timings.append((f"sampled n={n_samples}", elapsed, max_rel))
        if n_samples == 65_536:
            assert max_rel < 1e-3, "fine sampling must agree with the closed form"

    table = render_table(
        ["evaluator", "total_seconds", "max_rel_error_vs_closed"],
        timings,
        title="Ablation: error-integral evaluation (TD-TR @ 50 m, 10 trajectories)",
    )
    publish(results_dir, "ablation_error_eval", table)
