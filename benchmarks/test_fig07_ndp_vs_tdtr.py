"""Fig. 7: conventional Douglas-Peucker (NDP) vs top-down time-ratio (TD-TR).

Paper findings asserted (DESIGN.md S1/S2):

* TD-TR produces much lower synchronized errors at every threshold;
* TD-TR's compression is only slightly lower than NDP's;
* for the top-down algorithms, compression and error grow monotonically
  with the threshold, saturating toward a maximum.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.experiments import figure_07, render_aggregate_rows


def test_fig07_ndp_vs_tdtr(benchmark, dataset, results_dir):
    fig = benchmark.pedantic(lambda: figure_07(dataset), rounds=1, iterations=1)
    publish(results_dir, "fig07", render_aggregate_rows(fig.rows, title=fig.title))

    ndp = fig.series("ndp")
    tdtr = fig.series("td-tr")

    # S1a: TD-TR error is far below NDP error at every threshold.
    for ndp_row, tdtr_row in zip(ndp, tdtr):
        assert tdtr_row.mean_sync_error_m < 0.5 * ndp_row.mean_sync_error_m, (
            f"threshold {ndp_row.threshold_m}: td-tr {tdtr_row.mean_sync_error_m:.1f} "
            f"vs ndp {ndp_row.mean_sync_error_m:.1f}"
        )

    # S1b: TD-TR compression is only slightly lower (within 25 points).
    for ndp_row, tdtr_row in zip(ndp, tdtr):
        assert tdtr_row.compression_percent >= ndp_row.compression_percent - 25.0
        assert tdtr_row.compression_percent <= ndp_row.compression_percent + 1e-9

    # S2: compression and error increase monotonically with the threshold
    # for both top-down algorithms (the paper's 'important observation').
    for series in (ndp, tdtr):
        compression = [row.compression_percent for row in series]
        errors = [row.mean_sync_error_m for row in series]
        assert np.all(np.diff(compression) >= -1e-9)
        # Error rises overall; allow small local non-monotonicity from
        # the 10-trajectory average (the paper observes the same for OW).
        assert errors[-1] > errors[0]
        assert np.all(np.diff(errors) >= -0.1 * max(errors))

    # TD-TR's guarantee: mean error stays below the threshold itself.
    for row in tdtr:
        assert row.mean_sync_error_m < row.threshold_m
