"""Perf-regression gate: compare a bench report against its baseline.

CI runs the quick benchmarks (``bench_kernels.py --quick`` and
``repro serve-bench``) and then this script against the baselines
committed under ``benchmarks/baselines/``. A metric that regresses by
more than the tolerance (default 25%) fails the gate. Absolute timings
differ across machines — the committed baselines were produced on one
runner class, and the wide tolerance absorbs runner-to-runner noise; a
genuine algorithmic slowdown blows well past it.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        BENCH_kernels_ci.json benchmarks/baselines/BENCH_kernels_quick.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        BENCH_serve_ci.json benchmarks/baselines/BENCH_serve_ci.json \
        --tolerance 0.25

After an intentional perf change, regenerate and commit the baseline::

    PYTHONPATH=src python benchmarks/bench_kernels.py --quick \
        --output benchmarks/baselines/BENCH_kernels_quick.json
    # or copy a fresh report over the old baseline:
    PYTHONPATH=src python benchmarks/check_regression.py \
        BENCH_kernels_ci.json benchmarks/baselines/BENCH_kernels_quick.json \
        --update-baseline

Exit codes: 0 = within tolerance, 1 = regression (or a failed bench
report), 2 = configuration mismatch or unusable input (the two reports
measured different things; comparing them would be meaningless).
See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["compare", "main"]

#: A regression beyond this fraction fails the gate by default.
DEFAULT_TOLERANCE = 0.25


def _load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: {path}: no such report (exit 2)") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path}: not valid JSON: {exc} (exit 2)") from None
    if not isinstance(data, dict):
        raise SystemExit(f"error: {path}: expected a JSON object (exit 2)")
    return data


def _detect_kind(report: dict) -> str:
    if report.get("benchmark") == "kernels" or "algorithms" in report:
        return "kernels"
    if report.get("benchmark") == "query":
        return "query"
    if report.get("benchmark") == "budget":
        return "budget"
    if "results" in report and "config" in report:
        return "serve"
    raise SystemExit(
        "error: cannot tell what kind of bench report this is "
        "(expected a kernels or serve report) (exit 2)"
    )


def _kernel_view(report: dict) -> tuple[dict, dict]:
    """(metrics, config) for a ``bench_kernels.py`` report.

    Only the numpy engine is gated: it is what production runs, and it
    gets best-of-3 timing; the scalar reference is timed once and too
    noisy to gate.
    """
    metrics = {}
    for spec, entry in sorted(report.get("algorithms", {}).items()):
        metrics[f"{spec} numpy best_s"] = (float(entry["numpy"]["best_s"]), False)
    return metrics, {"n_points": report.get("n_points")}


def _serve_view(report: dict) -> tuple[dict, dict]:
    """(metrics, config) for a ``repro serve-bench`` report."""
    results = report.get("results", {})
    metrics = {}
    if results.get("p50_append_ms") is not None:
        metrics["p50_append_ms"] = (float(results["p50_append_ms"]), False)
    if results.get("fixes_per_sec") is not None:
        metrics["fixes_per_sec"] = (float(results["fixes_per_sec"]), True)
    config = dict(report.get("config", {}))
    config.pop("seed", None)  # the seed shifts data, not the workload shape
    return metrics, config


def _query_view(report: dict) -> tuple[dict, dict]:
    """(metrics, config) for a ``bench_query.py`` report.

    Only the decoded-byte ratios are gated: byte counts are a pure
    function of the deterministic store and query mix, so any drop is a
    real pruning regression, not runner noise. Latencies ride along in
    the report but are machine-dependent and stay informational.
    """
    results = report.get("results", {})
    metrics = {
        "decoded_bytes_ratio": (float(results["decoded_bytes_ratio"]), True),
    }
    for verb, entry in sorted(results.get("verbs", {}).items()):
        metrics[f"{verb} decoded_bytes_ratio"] = (
            float(entry["decoded_bytes_ratio"]), True
        )
    return metrics, dict(report.get("config", {}))


def _budget_view(report: dict) -> tuple[dict, dict]:
    """(metrics, config) for a ``bench_budget.py`` report.

    The SED-at-budget ratios (online error over the offline oracle's)
    are gated: both sides are pure functions of the deterministic
    workload, so any growth is a real eviction-quality regression, not
    runner noise. A *lower* ratio means the online compressor got
    closer to the oracle — higher is worse.
    """
    results = report.get("results", {})
    metrics = {}
    for algorithm, mean_ratio in sorted(
        results.get("sed_ratio_mean", {}).items()
    ):
        metrics[f"{algorithm} sed_ratio_mean"] = (float(mean_ratio), False)
    for algorithm, curve in sorted(results.get("curves", {}).items()):
        for point in curve:
            metrics[f"{algorithm} sed_ratio@budget={point['budget']}"] = (
                float(point["sed_ratio"]), False
            )
    return metrics, dict(report.get("config", {}))


_VIEWS = {
    "kernels": _kernel_view,
    "serve": _serve_view,
    "query": _query_view,
    "budget": _budget_view,
}


def compare(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> tuple[int, list[str]]:
    """Compare two reports; returns ``(exit_code, messages)``.

    Exit codes follow the script contract: 0 within tolerance,
    1 regression, 2 configuration mismatch.
    """
    messages: list[str] = []
    kind = _detect_kind(current)
    if _detect_kind(baseline) != kind:
        return 2, [f"baseline is not a {kind} report"]
    if current.get("failed"):
        reasons = current.get("failures", [])
        return 1, [f"current report is marked failed: {reasons[:3]}"]
    cur_metrics, cur_config = _VIEWS[kind](current)
    base_metrics, base_config = _VIEWS[kind](baseline)
    if cur_config != base_config:
        return 2, [
            f"configuration mismatch: current {cur_config} vs "
            f"baseline {base_config}; regenerate the baseline "
            f"(see docs/PERFORMANCE.md)"
        ]
    missing = sorted(set(base_metrics) - set(cur_metrics))
    if missing:
        return 2, [f"current report lacks baseline metric(s): {missing}"]
    worst = 0
    for name, (base_value, higher_is_better) in sorted(base_metrics.items()):
        value, _ = cur_metrics[name]
        if base_value <= 0:
            messages.append(f"skip {name}: non-positive baseline {base_value}")
            continue
        if higher_is_better:
            change = (base_value - value) / base_value  # drop fraction
        else:
            change = (value - base_value) / base_value  # growth fraction
        verdict = "REGRESSION" if change > tolerance else "ok"
        messages.append(
            f"{verdict:>10}  {name}: {value:g} vs baseline {base_value:g} "
            f"({abs(change) * 100.0:.1f}% {'worse' if change > 0 else 'better'}, "
            f"tolerance {tolerance * 100.0:.0f}%)"
        )
        if change > tolerance:
            worst = 1
    return worst, messages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly produced bench report")
    parser.add_argument("baseline", type=Path,
                        help="committed baseline report to compare against")
    parser.add_argument(
        "--tolerance", "-t", type=float, default=DEFAULT_TOLERANCE,
        help=f"allowed fractional regression (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite the baseline with the current report and exit 0",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")
    current = _load(args.current)
    if args.update_baseline:
        _detect_kind(current)  # refuse to bless an unusable report
        if current.get("failed"):
            print("error: refusing to bless a failed bench report", file=sys.stderr)
            return 2
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0
    baseline = _load(args.baseline)
    code, messages = compare(current, baseline, args.tolerance)
    for message in messages:
        print(message)
    if code == 0:
        print("perf gate: OK")
    elif code == 1:
        print("perf gate: REGRESSION", file=sys.stderr)
    else:
        print("perf gate: CONFIG MISMATCH", file=sys.stderr)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
