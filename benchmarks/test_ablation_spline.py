"""Ablation: linear vs cubic-spline reconstruction of compressed points.

The paper's future work contemplates "other, more advanced, interpolation
techniques"; the obvious candidate is a smooth spline through the
retained points instead of chords. This bench measures the paper-style α
of both reconstructions over the standard dataset — with an instructive
negative result: **the spline is consistently worse on TD-TR output**.
TD-TR retains exactly the points where linearity breaks (corners, stops),
so the piecewise-linear model between them is the right prior, and a C¹
spline overshoots at precisely the features the algorithm kept. Splines
only pay off when the retained points decimate *smooth* motion (uniform
decimation of gentle curves — the unit tests pin that case).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.core import TDTR
from repro.error import mean_path_distance, mean_synchronized_error
from repro.experiments.reporting import render_table
from repro.trajectory import CubicHermitePath

THRESHOLDS = (30.0, 50.0, 80.0)


def test_ablation_spline_reconstruction(benchmark, dataset, results_dir):
    def run():
        rows = []
        for eps in THRESHOLDS:
            linear_errors = []
            spline_errors = []
            for traj in dataset:
                approx = TDTR(epsilon=eps).compress(traj).compressed
                linear_errors.append(mean_synchronized_error(traj, approx))
                spline_errors.append(
                    mean_path_distance(traj, CubicHermitePath(approx))
                )
            rows.append(
                (
                    eps,
                    float(np.mean(linear_errors)),
                    float(np.mean(spline_errors)),
                    float(np.mean(spline_errors)) / float(np.mean(linear_errors)),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["threshold_m", "linear_alpha_m", "spline_alpha_m", "spline/linear"],
        rows,
        title="Ablation: reconstruction of TD-TR retained points (10 trajectories)",
    )
    publish(results_dir, "ablation_spline", table)

    for eps, linear_alpha, spline_alpha, ratio in rows:
        # The negative result, asserted: chords beat the spline on
        # TD-TR-selected points at every threshold.
        assert spline_alpha >= linear_alpha, (eps, linear_alpha, spline_alpha)
        # ... but not absurdly: the spline stays within a small factor.
        assert ratio < 5.0
