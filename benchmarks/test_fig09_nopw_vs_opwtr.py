"""Fig. 9: NOPW vs OPW-TR.

Paper findings asserted (DESIGN.md S4): OPW-TR's synchronized error is far
below NOPW's, and it reacts only mildly to the threshold choice — "a
change in threshold value does not dramatically impact error level" — so
one can pick generous thresholds for compression without losing much
accuracy.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.experiments import figure_09, render_aggregate_rows


def test_fig09_nopw_vs_opwtr(benchmark, dataset, results_dir):
    fig = benchmark.pedantic(lambda: figure_09(dataset), rounds=1, iterations=1)
    publish(results_dir, "fig09", render_aggregate_rows(fig.rows, title=fig.title))

    nopw = fig.series("nopw")
    opwtr = fig.series("opw-tr")

    # S4a: OPW-TR error is far lower at every threshold.
    for nopw_row, opwtr_row in zip(nopw, opwtr):
        assert opwtr_row.mean_sync_error_m < 0.5 * nopw_row.mean_sync_error_m

    # S4b: OPW-TR's error curve is comparatively flat: its rise across
    # the whole sweep is bounded by the threshold rise itself, whereas
    # NOPW starts high already at the smallest threshold.
    opwtr_errors = [r.mean_sync_error_m for r in opwtr]
    threshold_span = opwtr[-1].threshold_m - opwtr[0].threshold_m
    assert opwtr_errors[-1] - opwtr_errors[0] < threshold_span / 2
    assert nopw[0].mean_sync_error_m > opwtr_errors[-1]

    # OPW-TR bounds its max synchronized error by the threshold.
    for row in opwtr:
        assert row.max_sync_error_m <= row.threshold_m + 1e-6

    # NOPW compresses more (it ignores time), but pays in error.
    assert float(np.mean([r.compression_percent for r in nopw])) > float(
        np.mean([r.compression_percent for r in opwtr])
    )
