"""Table 2: statistics of the ten evaluation trajectories.

Regenerates the paper's Table 2 for our synthetic stand-in dataset and
asserts the calibration contract from DESIGN.md: every mean within ±35%
of the published value, and the short/lengthy series mix preserved.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import publish
from repro.experiments import DATASET_SEED, PAPER_TABLE2, paper_dataset
from repro.experiments.reporting import render_table
from repro.trajectory import dataset_stats, trajectory_stats


def _fmt_hms(seconds: float) -> str:
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def test_table2_dataset_statistics(benchmark, dataset, results_dir):
    agg = benchmark.pedantic(
        lambda: dataset_stats(paper_dataset(DATASET_SEED)), rounds=1, iterations=1
    )
    ref = PAPER_TABLE2

    per_trip = render_table(
        ["trajectory", "duration", "speed_kmh", "length_km", "displacement_km", "points"],
        [
            (
                traj.object_id,
                trajectory_stats(traj).duration_hms,
                trajectory_stats(traj).mean_speed_kmh,
                trajectory_stats(traj).length_m / 1000.0,
                trajectory_stats(traj).displacement_m / 1000.0,
                len(traj),
            )
            for traj in dataset
        ],
        title="Per-trajectory statistics (synthetic stand-in dataset)",
    )
    comparison = render_table(
        ["statistic", "paper_mean", "paper_std", "ours_mean", "ours_std"],
        [
            ("duration", _fmt_hms(ref.duration_mean_s), _fmt_hms(ref.duration_std_s),
             _fmt_hms(agg.duration_mean_s), _fmt_hms(agg.duration_std_s)),
            ("speed (km/h)", ref.speed_mean_kmh, ref.speed_std_kmh,
             agg.speed_mean_kmh, agg.speed_std_kmh),
            ("length (km)", ref.length_mean_km, ref.length_std_km,
             agg.length_mean_km, agg.length_std_km),
            ("displacement (km)", ref.displacement_mean_km, ref.displacement_std_km,
             agg.displacement_mean_km, agg.displacement_std_km),
            ("# of data points", ref.points_mean, ref.points_std,
             agg.points_mean, agg.points_std),
        ],
        title="Table 2: paper vs this reproduction",
    )
    publish(results_dir, "table2", per_trip + "\n\n" + comparison)

    assert agg.n_trajectories == 10
    assert agg.duration_mean_s == pytest.approx(ref.duration_mean_s, rel=0.35)
    assert agg.speed_mean_kmh == pytest.approx(ref.speed_mean_kmh, rel=0.35)
    assert agg.length_mean_km == pytest.approx(ref.length_mean_km, rel=0.35)
    assert agg.displacement_mean_km == pytest.approx(ref.displacement_mean_km, rel=0.35)
    assert agg.points_mean == pytest.approx(ref.points_mean, rel=0.35)
    # The dataset mixes short and lengthy series, like the paper's.
    sizes = sorted(len(traj) for traj in dataset)
    assert sizes[0] < 110 < 230 < sizes[-1]
