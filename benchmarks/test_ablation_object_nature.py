"""Ablation: moving objects of different nature (paper future work).

"having a clear understanding of moving object behaviour helps in making
these choices, and we plan to look into the issue of moving objects of
different nature" (Sect. 5). This bench runs NDP / TD-TR / OPW-SP on a
car commute, a mall pedestrian and a migrating bird at thresholds scaled
to each nature's movement scale, and reports the trade-offs. Expected
shape: the spatiotemporal error advantage holds for *every* nature, and
a threshold chosen at each nature's own movement scale buys substantial
compression on all of them — the understanding-the-object guidance the
paper's conclusion asks for.
"""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.core import DouglasPeucker, OPWSP, TDTR
from repro.datagen import (
    TrajectoryGenerator,
    URBAN,
    generate_migration_trajectory,
    generate_pedestrian_trajectory,
)
from repro.error import mean_synchronized_error
from repro.experiments.reporting import render_table

#: Per-nature distance threshold (metres) on the nature's own scale, and
#: speed threshold (m/s) likewise.
NATURES = {
    "car": {"eps": 50.0, "speed_eps": 5.0},
    "pedestrian": {"eps": 8.0, "speed_eps": 0.8},
    "migrant": {"eps": 200.0, "speed_eps": 6.0},
}


def _make_trajectories():
    car = TrajectoryGenerator(seed=61).generate(URBAN.with_length(9_000.0), "car")
    pedestrian = generate_pedestrian_trajectory(seed=61, duration_s=2_400.0)
    migrant = generate_migration_trajectory(seed=61)
    return {"car": car, "pedestrian": pedestrian, "migrant": migrant}


def test_ablation_object_nature(benchmark, results_dir):
    trajectories = benchmark.pedantic(_make_trajectories, rounds=1, iterations=1)

    rows = []
    results: dict[tuple[str, str], tuple[float, float]] = {}
    for nature, traj in trajectories.items():
        eps = NATURES[nature]["eps"]
        speed_eps = NATURES[nature]["speed_eps"]
        for label, algo in (
            ("ndp", DouglasPeucker(epsilon=eps)),
            ("td-tr", TDTR(epsilon=eps)),
            ("opw-sp", OPWSP(max_dist_error=eps, max_speed_error=speed_eps)),
        ):
            result = algo.compress(traj)
            error = mean_synchronized_error(traj, result.compressed)
            results[(nature, label)] = (result.compression_percent, error)
            rows.append(
                (nature, len(traj), label, eps, result.compression_percent, error)
            )
    table = render_table(
        ["nature", "fixes", "algorithm", "eps_m", "compression_%", "alpha_m"],
        rows,
        title="Ablation: object natures (thresholds scaled to movement scale)",
    )
    publish(results_dir, "ablation_object_nature", table)

    # The spatiotemporal advantage holds for every nature.
    for nature in NATURES:
        ndp_error = results[(nature, "ndp")][1]
        tdtr_error = results[(nature, "td-tr")][1]
        assert tdtr_error < ndp_error, nature

    # TD-TR's guarantee holds on every nature.
    for nature in NATURES:
        assert results[(nature, "td-tr")][1] <= NATURES[nature]["eps"]

    # A scale-appropriate threshold compresses every nature substantially.
    for nature in NATURES:
        assert results[(nature, "td-tr")][0] > 50.0, nature
