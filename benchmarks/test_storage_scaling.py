"""Storage scaling: query cost stays flat as the fleet grows.

The paper's motivation is fleets of hundreds of objects; a store whose
every query scans the whole catalog would erase the wins compression
buys. This bench ingests fleets of increasing size (synthetic commutes,
compressed with TD-TR) and measures per-query latency of the three query
kinds, asserting that a 8x fleet costs far less than 8x per query for the
index-served lookups (grid cells for rectangles, endpoint bisection for
time windows).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import publish
from repro.core import TDTR
from repro.datagen import TrajectoryGenerator, URBAN
from repro.experiments.reporting import render_table
from repro.geometry import BBox
from repro.storage import TrajectoryStore

FLEET_SIZES = (25, 100, 200)
N_QUERIES = 120


def _build_store(fleet_size: int) -> tuple[TrajectoryStore, list]:
    generator = TrajectoryGenerator(seed=88)
    rng = np.random.default_rng(88)
    store = TrajectoryStore(compressor=TDTR(epsilon=40.0), cell_size_m=400.0)
    trips = []
    for i in range(fleet_size):
        trip = generator.generate(
            URBAN.with_length(5_000.0),
            f"car-{i:03d}",
            start_time_s=float(rng.uniform(0.0, 7_200.0)),
        )
        store.insert(trip)
        trips.append(trip)
    return store, trips


def _measure(store: TrajectoryStore, trips: list, rng: np.random.Generator) -> dict:
    timings = {}
    # Time-window queries.
    started = time.perf_counter()
    for _ in range(N_QUERIES):
        t0 = float(rng.uniform(0.0, 8_000.0))
        store.query_time_window(t0, t0 + 300.0)
    timings["time_window_us"] = (time.perf_counter() - started) / N_QUERIES * 1e6
    # Rectangle queries around known positions (non-empty answers).
    started = time.perf_counter()
    for _ in range(N_QUERIES):
        trip = trips[int(rng.integers(0, len(trips)))]
        mid = trip.xy[len(trip) // 2]
        box = BBox(mid[0] - 150, mid[1] - 150, mid[0] + 150, mid[1] + 150)
        store.query_bbox(box)
    timings["bbox_us"] = (time.perf_counter() - started) / N_QUERIES * 1e6
    # Position-at-time on random alive objects.
    started = time.perf_counter()
    for _ in range(N_QUERIES):
        trip = trips[int(rng.integers(0, len(trips)))]
        when = float(rng.uniform(trip.start_time, trip.end_time))
        store.position_at(trip.object_id or "?", when)
    timings["position_us"] = (time.perf_counter() - started) / N_QUERIES * 1e6
    return timings


def test_storage_query_scaling(benchmark, results_dir):
    def run():
        rows = []
        for fleet_size in FLEET_SIZES:
            store, trips = _build_store(fleet_size)
            timings = _measure(store, trips, np.random.default_rng(5))
            rows.append(
                (
                    fleet_size,
                    timings["time_window_us"],
                    timings["bbox_us"],
                    timings["position_us"],
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["fleet size", "time_window (us)", "bbox (us)", "position_at (us)"],
        rows,
        title="Storage: per-query latency vs fleet size",
    )
    publish(results_dir, "storage_scaling", table)

    growth = FLEET_SIZES[-1] / FLEET_SIZES[0]  # 8x fleet
    for column in (1, 2):
        ratio = rows[-1][column] / max(rows[0][column], 1e-9)
        assert ratio < growth, (
            f"column {column} grew {ratio:.1f}x for a {growth:.0f}x fleet"
        )
    # Absolute sanity: everything stays well under a millisecond.
    for row in rows:
        assert max(row[1:]) < 5_000.0
