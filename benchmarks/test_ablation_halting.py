"""Ablation: the paper's three halting conditions, compared head-on.

Sect. 2 lists three possible halting conditions — per-segment error
threshold, point budget, and total-error budget. This bench fixes a
*point budget* (whatever TD-TR @ 50 m happens to keep per trajectory) and
compares what each condition buys at that exact size:

* TD-TR @ 50 m (per-segment threshold, the paper's main setting);
* TDTRBudget / BottomUpBudget at the same point count;
* BottomUpTotalError tuned to TD-TR's achieved α;
* EveryIth decimation to (roughly) the same point count, as the floor.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.core import (
    BottomUpBudget,
    BottomUpTotalError,
    EveryIth,
    TDTR,
    TDTRBudget,
)
from repro.error import mean_synchronized_error
from repro.experiments.reporting import render_table

EPS = 50.0


def test_ablation_halting_conditions(benchmark, dataset, results_dir):
    def run() -> dict[str, list[float]]:
        errors: dict[str, list[float]] = {
            "td-tr @ 50m": [],
            "td-tr-budget": [],
            "bottom-up-budget": [],
            "bottom-up-total-error": [],
            "every-ith": [],
        }
        kept: dict[str, list[int]] = {name: [] for name in errors}

        for traj in dataset:
            reference = TDTR(epsilon=EPS).compress(traj)
            budget = reference.n_kept
            alpha = mean_synchronized_error(traj, reference.compressed)
            contenders = {
                "td-tr @ 50m": reference,
                "td-tr-budget": TDTRBudget(budget=budget).compress(traj),
                "bottom-up-budget": BottomUpBudget(budget=budget).compress(traj),
                "bottom-up-total-error": BottomUpTotalError(max_mean_error=alpha).compress(traj),
                "every-ith": EveryIth(step=max(len(traj) // budget, 1)).compress(traj),
            }
            for name, result in contenders.items():
                errors[name].append(
                    mean_synchronized_error(traj, result.compressed)
                )
                kept[name].append(result.n_kept)
        return {"errors": errors, "kept": kept}  # type: ignore[return-value]

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    errors = out["errors"]
    kept = out["kept"]

    rows = [
        (
            name,
            float(np.mean(kept[name])),
            float(np.mean(errors[name])),
            float(np.max(errors[name])),
        )
        for name in errors
    ]
    table = render_table(
        ["halting condition", "mean points kept", "mean alpha (m)", "worst alpha (m)"],
        rows,
        title="Ablation: halting conditions at matched size/error budgets",
    )
    publish(results_dir, "ablation_halting", table)

    mean_err = {name: float(np.mean(errors[name])) for name in errors}

    # Budgeted variants at TD-TR's size do no worse than ~TD-TR itself.
    assert mean_err["td-tr-budget"] <= mean_err["td-tr @ 50m"] * 1.25
    assert mean_err["bottom-up-budget"] <= mean_err["td-tr @ 50m"] * 1.25

    # The total-error condition respects its α budget per trajectory.
    for traj_alpha, budget_alpha in zip(
        errors["td-tr @ 50m"], errors["bottom-up-total-error"]
    ):
        assert budget_alpha <= traj_alpha + 1e-9

    # Uniform decimation at the same size is clearly worse: it spends its
    # points blindly.
    assert mean_err["every-ith"] > 1.5 * mean_err["td-tr @ 50m"]
