"""Ablation: GPS sampling-interval sensitivity.

The paper's storage arithmetic assumes fixes "collected every 10 seconds"
and notes "there seem to be few technological barriers to high position
sampling rates". This ablation regenerates the same drive sampled at 2,
5, 10, 20 and 30 s and measures what the fix rate does to OPW-TR at a
fixed 50 m threshold. Expected shape: higher rates multiply the raw data
but the *retained* point count stays nearly constant — compression
percentage climbs toward an asymptote because the algorithm keeps the
movement's information content, not its sample count.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.core import OPWTR
from repro.datagen import GpsNoise, TrajectoryGenerator, URBAN, sample_trace
from repro.datagen.route import random_route
from repro.datagen.vehicle import simulate_drive
from repro.error import mean_synchronized_error
from repro.experiments.reporting import render_table
from repro.trajectory import Trajectory

INTERVALS_S = (2.0, 5.0, 10.0, 20.0, 30.0)
EPS = 50.0


def test_ablation_sampling_rate(benchmark, results_dir):
    def make_observations() -> list[tuple[float, Trajectory]]:
        """One drive, observed at each sampling interval."""
        generator = TrajectoryGenerator(seed=51)
        network = generator._network_for(URBAN)
        rng = np.random.default_rng(51)
        route = random_route(network, rng, 9_000.0)
        trace = simulate_drive(route, URBAN.vehicle, rng)
        out = []
        for interval in INTERVALS_S:
            t, xy = sample_trace(trace, interval, GpsNoise(sigma_m=4.0), rng)
            out.append((interval, Trajectory(t, xy, f"dt-{interval:g}")))
        return out

    observations = benchmark.pedantic(make_observations, rounds=1, iterations=1)

    rows = []
    kept_counts = []
    for interval, traj in observations:
        result = OPWTR(epsilon=EPS).compress(traj)
        error = mean_synchronized_error(traj, result.compressed)
        rows.append(
            (interval, len(traj), result.n_kept, result.compression_percent, error)
        )
        kept_counts.append(result.n_kept)
    table = render_table(
        ["interval_s", "raw_fixes", "kept", "compression_%", "alpha_m"],
        rows,
        title=f"Ablation: sampling interval vs OPW-TR @ {EPS:g} m (same drive)",
    )
    publish(results_dir, "ablation_sampling_rate", table)

    # Raw size scales ~inversely with the interval...
    raw_sizes = [row[1] for row in rows]
    assert raw_sizes == sorted(raw_sizes, reverse=True)
    assert raw_sizes[0] > 4 * raw_sizes[-1]
    # ...but the retained count varies far less than the raw count does:
    # the algorithm keeps the movement, not the sample rate.
    kept_spread = max(kept_counts) / max(min(kept_counts), 1)
    raw_spread = raw_sizes[0] / raw_sizes[-1]
    assert kept_spread < raw_spread / 2
    # Compression percentage grows as the rate climbs.
    compression = [row[3] for row in rows]
    assert compression[0] == max(compression)
    # Error stays bounded by the threshold at every rate.
    for row in rows:
        assert row[4] <= EPS
