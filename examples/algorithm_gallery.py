"""Algorithm gallery: the paper's Figs. 1-3 walkthrough, in text.

Reproduces the behaviour the paper's illustration figures show on a
19-point data series:

* Fig. 1 — Douglas-Peucker recursively cutting the series;
* Fig. 2 — NOPW breaking at the threshold-violating point;
* Fig. 3 — BOPW breaking at the point just before the float;

and then contrasts the spatiotemporal algorithms on the same series with
a timing deviation that the spatial algorithms cannot see.

Run:
    python examples/algorithm_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro import BOPW, NOPW, OPWSP, OPWTR, TDTR, DouglasPeucker, Trajectory


def ascii_selection(n: int, kept: np.ndarray) -> str:
    """One character per data point: '#' kept, '.' discarded."""
    marks = ["."] * n
    for index in kept:
        marks[index] = "#"
    return "".join(marks)


def nineteen_point_series() -> Trajectory:
    """A 19-point series with gentle waves, in the spirit of Fig. 1."""
    t = np.arange(19.0) * 10.0
    x = t * 8.0
    y = np.array(
        [0.0, 14, 22, 16, 2, -12, -20, -14, -2, 10, 18, 13, 3, -7, -13, -9, -1, 5, 0.0]
    ) * 4.0
    return Trajectory(t, np.column_stack([x, y]), object_id="fig1-series")


def timing_skewed_series() -> Trajectory:
    """Geometrically straight east-bound drive with a mid-route dwell."""
    rows = []
    t = 0.0
    x = 0.0
    for i in range(19):
        rows.append((t, x, 0.0))
        # Dwell between points 8 and 11: the clock advances, x barely does.
        if 8 <= i <= 10:
            t += 60.0
            x += 15.0
        else:
            t += 10.0
            x += 150.0
    return Trajectory.from_points(rows, object_id="dwell-series")


def main() -> None:
    series = nineteen_point_series()
    print(f"data series: {len(series)} points (index 0..18)")
    print()
    print("spatial algorithms on the wavy series (threshold 30 m):")
    for algorithm in (DouglasPeucker(epsilon=30.0), NOPW(epsilon=30.0), BOPW(epsilon=30.0)):
        kept = algorithm.compress(series).indices
        print(f"  {algorithm.name:5s} keeps {ascii_selection(len(series), kept)}"
              f"  ({len(kept)} points: {kept.tolist()})")

    print()
    skewed = timing_skewed_series()
    print("the same comparison on a geometrically straight series with a")
    print("mid-route dwell (the object stops; the line does not show it):")
    for algorithm in (
        DouglasPeucker(epsilon=30.0),
        NOPW(epsilon=30.0),
        TDTR(epsilon=30.0),
        OPWTR(epsilon=30.0),
        OPWSP(max_dist_error=30.0, max_speed_error=5.0),
    ):
        kept = algorithm.compress(skewed).indices
        print(f"  {algorithm.name:6s} keeps {ascii_selection(len(skewed), kept)}"
              f"  ({len(kept)} points)")
    print()
    print("NDP and NOPW collapse the dwell (their perpendicular criterion sees")
    print("a straight line); the time-ratio algorithms keep the dwell's")
    print("boundary points because the synchronized positions drift hundreds")
    print("of metres — exactly the paper's Sect. 3 argument.")


if __name__ == "__main__":
    main()
