"""Animal tracking: a constrained tag compressing a migration on-device.

The paper's widest-scope motivation — "even migratory animals, under the
assumption that one day we will have the techniques to routinely equip
many of them" — is also its harshest systems setting: a wildlife tag has
a tiny buffer, a slow duty-cycled GPS and a brutal transmission budget.
This example runs that scenario end to end:

* a six-hour migration leg (correlated random walk with rest stops),
  observed at one fix per minute with tag-grade noise;
* on-device compression with the streaming OPW-SP under a hard
  ``max_window`` memory bound (the tag never buffers more than a dozen
  fixes);
* ingestion into a ground-station store that records the known error
  margin, so biologists' queries ("did it cross the reserve boundary?")
  can be answered with possibly/definitely semantics.

Run:
    python examples/animal_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro.datagen import MigrationModel, generate_migration_trajectory
from repro.error import evaluate_compression
from repro.geometry import BBox
from repro.storage import StreamIngestor, TrajectoryStore
from repro.streaming import StreamingOPW
from repro.trajectory import trajectory_stats

EPSILON = 250.0  # metres: generous for a 200 km flight
SPEED_EPS = 6.0  # m/s: flags the flight/rest transitions
TAG_BUFFER = 12  # fixes the tag may hold


def main() -> None:
    flight = generate_migration_trajectory(
        seed=17,
        duration_s=6 * 3600.0,
        model=MigrationModel(bearing_rad=np.pi / 4),
        object_id="stork-17",
    )
    stats = trajectory_stats(flight)
    print(
        f"simulated migration leg: {stats.n_points} fixes over "
        f"{stats.duration_hms}, {stats.length_m / 1000:.1f} km at "
        f"{stats.mean_speed_kmh:.0f} km/h"
    )

    # --- on-tag compression with a hard memory bound ------------------- #
    station = TrajectoryStore(coord_resolution_m=1.0)  # metre precision is plenty
    ingestor = StreamIngestor(
        station,
        compressor_factory=lambda: StreamingOPW(
            EPSILON, "synchronized", max_speed_error=SPEED_EPS, max_window=TAG_BUFFER
        ),
    )
    max_buffered = 0
    for fix in flight:
        ingestor.push("stork-17", fix)
        max_buffered = max(max_buffered, ingestor.window_size("stork-17"))
    record = ingestor.finish("stork-17")
    report = evaluate_compression(flight, station.get("stork-17"))
    print(
        f"tag transmitted {record.n_stored_points} of {record.n_raw_points} fixes "
        f"({report.compression_percent:.1f}% saved), holding at most "
        f"{max_buffered} fixes at a time"
    )
    print(
        f"reconstruction error: mean {report.mean_sync_error_m:.0f} m, "
        f"max {report.max_sync_error_m:.0f} m "
        f"(recorded margin {record.sync_error_bound_m:.0f} m)"
    )

    # --- reserve-boundary queries with honest semantics ----------------- #
    stored = station.get("stork-17")
    mid_time = (stored.start_time + stored.end_time) / 2.0
    mid = stored.position_at(mid_time)
    reserve = BBox(mid[0] - 4_000, mid[1] - 4_000, mid[0] + 4_000, mid[1] + 4_000)
    # A thin strip placed perpendicular to the flight, just off the
    # stored path but within its error margin.
    heading = stored.position_at(mid_time + 60.0) - mid
    normal = np.array([-heading[1], heading[0]])
    normal = normal / max(np.hypot(*normal), 1e-9)
    strip_center = mid + normal * 150.0
    thin_strip = BBox(
        strip_center[0] - 200, strip_center[1] - 40,
        strip_center[0] + 200, strip_center[1] + 40,
    )
    print(
        f"crossed the 8 km reserve around mid-route? "
        f"definitely={station.query_bbox(reserve, mode='definitely')}"
    )
    print(
        f"crossed a 400x100 m strip near the route? "
        f"stored={station.query_bbox(thin_strip)} "
        f"possibly={station.query_bbox(thin_strip, mode='possibly')} "
        f"definitely={station.query_bbox(thin_strip, mode='definitely')}"
    )
    print("(a strip thinner than the error margin can never be certified —")
    print(" the store says 'possibly' instead of guessing)")


if __name__ == "__main__":
    main()
