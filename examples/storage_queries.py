"""Moving-object database queries over compressed storage.

The paper's motivation is database support for moving objects: present
*and past* positions must stay queryable after compression. This example
ingests a small fleet into a compressing store, persists it to disk,
reloads it, and runs the query workload — position-at-time, time-window,
and spatial rectangle ("who passed through this block between 8:10 and
8:20?") — comparing answers against the uncompressed ground truth.

Run:
    python examples/storage_queries.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import OPWTR, TrajectoryStore
from repro.datagen import TrajectoryGenerator, URBAN
from repro.geometry import BBox
from repro.trajectory import Trajectory

EPSILON = 35.0


def simulate(seed: int = 19, n: int = 8) -> list[Trajectory]:
    generator = TrajectoryGenerator(seed=seed)
    return [
        generator.generate(URBAN.with_length(7_000.0), f"taxi-{i:02d}")
        for i in range(n)
    ]


def main() -> None:
    fleet = simulate()
    store = TrajectoryStore(compressor=OPWTR(epsilon=EPSILON))
    for traj in fleet:
        store.insert(traj)
    stats = store.stats()
    print(
        f"ingested {stats.n_objects} taxis: {stats.n_raw_points} fixes -> "
        f"{stats.n_stored_points} stored points "
        f"({stats.point_compression_percent:.1f}% removed, "
        f"{stats.byte_compression_ratio:.1f}x smaller on disk)"
    )

    # --- position-at-time accuracy against the raw data --------------- #
    worst = 0.0
    for traj in fleet:
        for when in np.linspace(traj.start_time, traj.end_time, 25):
            truth = traj.position_at(float(when))
            answer = store.position_at(traj.object_id, float(when))
            worst = max(worst, float(np.hypot(*(truth - answer))))
    print(f"position-at-time: worst deviation from raw data {worst:.1f} m "
          f"(threshold was {EPSILON:g} m)")

    # --- spatial query: who passed through this block? ----------------- #
    target = fleet[0]
    mid = target.xy[len(target) // 2]
    block = BBox(mid[0] - 150, mid[1] - 150, mid[0] + 150, mid[1] + 150)
    hits = store.query_bbox(block)
    truth_hits = sorted(
        traj.object_id
        for traj in fleet
        if any(block.contains_point(x, y) for x, y in traj.xy)
    )
    print(f"who passed through the 300 m block around {mid.round(0)}?")
    print(f"  store says : {hits}")
    print(f"  truth says : {truth_hits} (every true visitor is found)")
    assert set(truth_hits) <= set(hits)

    # --- time-windowed spatial query ----------------------------------- #
    # The block sits at the target's mid-route position, so a window
    # around mid-trip finds it while the trip's opening minute does not.
    mid_time = (target.start_time + target.end_time) / 2.0
    during = store.query_bbox(block, mid_time - 120.0, mid_time + 120.0)
    before = store.query_bbox(block, target.start_time, target.start_time + 60.0)
    print(f"  within two minutes of mid-trip : {during}")
    print(f"  during the trip's first minute : {before}")

    # --- answer semantics under the known error margin ------------------ #
    # The store records each object's guaranteed error margin (the OPW-TR
    # threshold plus codec slack); queries can then distinguish objects
    # that MAY have entered a box from those that MUST have.
    margin = store.record(target.object_id).sync_error_bound_m
    # Place a small box perpendicular to the local direction of travel,
    # just outside the stored route but within the error margin of it.
    stored_target = store.get(target.object_id)
    mid_time = (stored_target.start_time + stored_target.end_time) / 2.0
    p0 = stored_target.position_at(mid_time)
    p1 = stored_target.position_at(mid_time + 5.0)
    heading = p1 - p0
    normal = np.array([-heading[1], heading[0]])
    normal = normal / max(np.hypot(*normal), 1e-9)
    center = p0 + normal * (margin * 0.6)
    near_miss = BBox(center[0] - 8, center[1] - 8, center[0] + 8, center[1] + 8)
    print(
        f"recorded error margin for {target.object_id}: {margin:.1f} m\n"
        f"  near-miss box   : stored={store.query_bbox(near_miss)} "
        f"possibly={store.query_bbox(near_miss, mode='possibly')}\n"
        f"  big block       : definitely="
        f"{store.query_bbox(block.expanded(margin * 2), mode='definitely')}"
    )

    # --- persistence ---------------------------------------------------- #
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "taxis.store"
        store.save(path)
        reloaded = TrajectoryStore.load(path)
        print(
            f"persisted {path.stat().st_size} bytes; reloaded store answers "
            f"identically: {reloaded.query_bbox(block) == hits}"
        )


if __name__ == "__main__":
    main()
