"""Quickstart: compress one trajectory and measure the result.

Builds a small hand-made trajectory (a drive with a corner and a stop),
compresses it with the paper's four headline algorithms, and prints what
each kept and how much error it committed under the paper's
time-synchronous error notion.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    NOPW,
    OPWSP,
    OPWTR,
    TDTR,
    DouglasPeucker,
    Trajectory,
    evaluate_compression,
)


def build_trajectory() -> Trajectory:
    """A two-minute drive: east at speed, a corner, a stop, then north."""
    points = [
        # t,    x,     y      — fix every 10 s
        (0.0, 0.0, 0.0),
        (10.0, 150.0, 2.0),
        (20.0, 300.0, -3.0),
        (30.0, 450.0, 1.0),
        (40.0, 560.0, 40.0),   # entering the corner, slowing
        (50.0, 590.0, 120.0),
        (60.0, 595.0, 150.0),  # red light: stopping
        (70.0, 596.0, 152.0),
        (80.0, 596.5, 152.5),  # stopped
        (90.0, 598.0, 160.0),  # moving off
        (100.0, 605.0, 260.0),
        (110.0, 610.0, 380.0),
        (120.0, 615.0, 500.0),
    ]
    return Trajectory.from_points(points, object_id="quickstart-car")


def main() -> None:
    traj = build_trajectory()
    print(f"original: {traj}")
    print(f"  fixes: {len(traj)}, duration {traj.end_time - traj.start_time:.0f} s")
    print()

    algorithms = [
        DouglasPeucker(epsilon=30.0),   # spatial baseline (NDP)
        NOPW(epsilon=30.0),             # spatial, online
        TDTR(epsilon=30.0),             # spatiotemporal, batch
        OPWTR(epsilon=30.0),            # spatiotemporal, online
        OPWSP(max_dist_error=30.0, max_speed_error=5.0),  # + speed criterion
    ]
    header = f"{'algorithm':10s} {'kept':>4s} {'compression':>11s} {'mean sync err':>13s} {'max sync err':>12s}"
    print(header)
    print("-" * len(header))
    for algorithm in algorithms:
        result = algorithm.compress(traj)
        report = evaluate_compression(traj, result.compressed)
        print(
            f"{algorithm.name:10s} {result.n_kept:4d} "
            f"{result.compression_percent:10.1f}% "
            f"{report.mean_sync_error_m:11.1f} m "
            f"{report.max_sync_error_m:10.1f} m"
        )

    print()
    tdtr = TDTR(epsilon=30.0).compress(traj)
    kept_times = ", ".join(f"{t:.0f}" for t in tdtr.compressed.t)
    print(f"TD-TR kept the fixes at t = {kept_times} s")
    print("note how the corner (t=40-60) and the stop (t=60-90) survive, while")
    print("the straight runs collapse to their endpoints.")


if __name__ == "__main__":
    main()
