"""Rush-hour analysis: the paper's motivating application, end to end.

Simulates a morning rush hour (a fleet of commuters departing in waves on
a shared city network), compresses everything with OPW-SP as it would
arrive from the vehicles, and then runs the analyses the paper's
introduction promises — on the *compressed* data:

* fleet speed over time-of-day (the rush-hour dip),
* spatial occupancy hotspots (the congested blocks),
* route clustering (which commuters share a corridor),

and shows that each analysis agrees with what the raw data would have
said, quantifying the paper's claim that spatiotemporal compression
preserves the analyses that matter.

Run:
    python examples/rush_hour_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import OPWSP
from repro.analysis import (
    closest_approach,
    cluster_trajectories,
    encounters,
    hausdorff_distance,
    occupancy_grid,
    speed_over_time,
)
from repro.datagen import URBAN
from repro.trajectory import Trajectory

FLEET = 14
EPSILON = 40.0
SPEED_EPS = 5.0


def simulate_rush_hour(seed: int = 23) -> list[Trajectory]:
    """Commuters from three neighbourhoods converging on downtown.

    Uses the lower-level datagen API (network -> route -> drive -> GPS
    sampling) so trips genuinely share corridors, the way commutes do.
    """
    from repro.datagen import RoadNetwork, plan_route, sample_trace, simulate_drive

    rng = np.random.default_rng(seed)
    network = RoadNetwork.grid(
        URBAN.rows, URBAN.cols, URBAN.spacing_m, rng,
        jitter_frac=URBAN.jitter_frac, arterial_every=URBAN.arterial_every,
    )
    downtown = (URBAN.rows // 2, URBAN.cols // 2)
    neighbourhoods = [(3, 4), (30, 8), (16, 32)]
    fleet = []
    for i in range(FLEET):
        home_row, home_col = neighbourhoods[i % len(neighbourhoods)]
        home = (
            int(np.clip(home_row + rng.integers(-2, 3), 0, URBAN.rows - 1)),
            int(np.clip(home_col + rng.integers(-2, 3), 0, URBAN.cols - 1)),
        )
        route = plan_route(network, home, downtown)
        # Departures bunch around the rush peak (t ~ 1800 s).
        start = float(np.clip(rng.normal(1800.0, 700.0), 0.0, 3600.0))
        trace = simulate_drive(route, URBAN.vehicle, rng, start_time_s=start)
        t, xy = sample_trace(trace, URBAN.sample_interval_s, URBAN.noise, rng)
        fleet.append(Trajectory(t, xy, f"commuter-{i:02d}"))
    return fleet


def main() -> None:
    raw_fleet = simulate_rush_hour()
    compressor = OPWSP(max_dist_error=EPSILON, max_speed_error=SPEED_EPS)
    compressed_fleet = [compressor.compress(t).compressed for t in raw_fleet]
    n_raw = sum(len(t) for t in raw_fleet)
    n_small = sum(len(t) for t in compressed_fleet)
    print(
        f"fleet of {FLEET} commuters: {n_raw} fixes -> {n_small} after OPW-SP "
        f"({100 * (1 - n_small / n_raw):.1f}% removed, computed online)"
    )

    # ---- speed over time-of-day --------------------------------------- #
    print("\nfleet speed profile (10-minute bins):")
    raw_profile = speed_over_time(raw_fleet, bin_seconds=600.0)
    small_profile = speed_over_time(compressed_fleet, bin_seconds=600.0)
    print(f"{'window':>12s} {'raw km/h':>9s} {'compressed km/h':>15s} {'trips':>6s}")
    for k in range(raw_profile.bin_centers.size):
        raw_v = raw_profile.mean_speed_ms[k]
        if np.isnan(raw_v) or raw_profile.observations[k] == 0:
            continue
        lo, hi = raw_profile.bin_edges[k], raw_profile.bin_edges[k + 1]
        small_v = small_profile.mean_speed_ms[min(k, small_profile.mean_speed_ms.size - 1)]
        print(
            f"{lo / 60:5.0f}-{hi / 60:3.0f} min {raw_v * 3.6:9.1f} "
            f"{small_v * 3.6:15.1f} {raw_profile.observations[k]:6d}"
        )

    # ---- occupancy hotspots ------------------------------------------- #
    raw_grid = occupancy_grid(raw_fleet, cell_size_m=400.0)
    small_grid = occupancy_grid(compressed_fleet, cell_size_m=400.0)
    raw_top = raw_grid.top_cells(3)
    small_top = dict(small_grid.top_cells(len(small_grid.counts)))
    print("\nbusiest 400 m blocks (distinct commuters seen):")
    for cell, count in raw_top:
        box = raw_grid.cell_bbox(cell)
        print(
            f"  block around ({box.center[0]:7.0f}, {box.center[1]:7.0f}): "
            f"raw {count}, compressed {small_top.get(cell, 0)}"
        )

    # ---- route clustering ---------------------------------------------- #
    result_raw = cluster_trajectories(
        raw_fleet, max_distance=800.0, metric=hausdorff_distance
    )
    result_small = cluster_trajectories(
        compressed_fleet, max_distance=800.0, metric=hausdorff_distance
    )
    agreement = float(np.mean(result_raw.labels == result_small.labels))
    print(
        f"\nroute clusters (Hausdorff <= 800 m): raw {result_raw.n_clusters}, "
        f"compressed {result_small.n_clusters}, label agreement {agreement:.0%}"
    )
    for cluster in range(result_raw.n_clusters):
        members = [raw_fleet[i].object_id for i in result_raw.members(cluster)]
        print(f"  corridor {cluster}: {', '.join(members)}")

    # ---- encounters: who was actually close, and when? ------------------ #
    # Everyone converges downtown, but only temporally overlapping pairs
    # truly meet; the closed-form proximity query tells them apart.
    print("\nclosest approaches under 150 m (on compressed data):")
    found = 0
    for i in range(len(compressed_fleet)):
        for j in range(i + 1, len(compressed_fleet)):
            a, b = compressed_fleet[i], compressed_fleet[j]
            if min(a.end_time, b.end_time) <= max(a.start_time, b.start_time):
                continue  # never on the road at the same time
            meeting = closest_approach(a, b)
            if meeting.distance_m > 150.0:
                continue
            windows = encounters(a, b, within_m=150.0)
            total = sum(end - start for start, end in windows)
            print(
                f"  {a.object_id} & {b.object_id}: {meeting.distance_m:5.0f} m "
                f"at t={meeting.time:5.0f} s, within 150 m for {total:4.0f} s"
            )
            found += 1
    if not found:
        print("  (none this morning)")


if __name__ == "__main__":
    main()
