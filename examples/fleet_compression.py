"""Fleet compression: the urban commuter scenario from the paper's intro.

Simulates a morning's worth of commuter trips on a synthetic city road
network, ingests them into a :class:`~repro.storage.TrajectoryStore`
under different compressors, and prints the storage ledger each choice
yields — the trade-off a fleet operator actually tunes.

Run:
    python examples/fleet_compression.py
"""

from __future__ import annotations

import numpy as np

from repro import OPWSP, OPWTR, TDTR, DouglasPeucker
from repro.core.base import Compressor
from repro.datagen import TrajectoryGenerator, URBAN
from repro.error import mean_synchronized_error
from repro.storage import TrajectoryStore
from repro.trajectory import Trajectory

FLEET_SIZE = 20


def simulate_fleet(seed: int = 8) -> list[Trajectory]:
    generator = TrajectoryGenerator(seed=seed)
    rng = np.random.default_rng(seed)
    fleet = []
    for i in range(FLEET_SIZE):
        length = float(rng.uniform(4_000.0, 14_000.0))
        start = float(rng.uniform(0.0, 3_600.0))  # staggered departures
        traj = generator.generate(
            URBAN.with_length(length), object_id=f"commuter-{i:02d}", start_time_s=start
        )
        fleet.append(traj)
    return fleet


def ingest(fleet: list[Trajectory], compressor: Compressor | None) -> tuple[TrajectoryStore, float]:
    store = TrajectoryStore(compressor=compressor, coord_resolution_m=0.1)
    errors = []
    for traj in fleet:
        store.insert(traj)
        errors.append(mean_synchronized_error(traj, store.get(traj.object_id)))
    return store, float(np.mean(errors))


def main() -> None:
    fleet = simulate_fleet()
    total_fixes = sum(len(traj) for traj in fleet)
    print(f"simulated fleet: {len(fleet)} commuters, {total_fixes} GPS fixes")
    print()

    choices: list[tuple[str, Compressor | None]] = [
        ("raw (no point compression)", None),
        ("ndp @ 50 m (spatial)", DouglasPeucker(epsilon=50.0)),
        ("td-tr @ 50 m", TDTR(epsilon=50.0)),
        ("opw-tr @ 50 m (online)", OPWTR(epsilon=50.0)),
        ("opw-sp @ 50 m, 5 m/s (online)", OPWSP(max_dist_error=50.0, max_speed_error=5.0)),
    ]
    header = (
        f"{'ingest policy':32s} {'points':>7s} {'bytes':>8s} "
        f"{'ratio':>6s} {'mean sync err':>13s}"
    )
    print(header)
    print("-" * len(header))
    for label, compressor in choices:
        store, mean_error = ingest(fleet, compressor)
        stats = store.stats()
        print(
            f"{label:32s} {stats.n_stored_points:7d} {stats.stored_bytes:8d} "
            f"{stats.byte_compression_ratio:5.1f}x {mean_error:11.2f} m"
        )

    print()
    print("the spatiotemporal algorithms buy nearly the spatial algorithms'")
    print("storage savings at a tenth of the reconstruction error — and the")
    print("opw-* rows could have been computed on the vehicles, online.")


if __name__ == "__main__":
    main()
