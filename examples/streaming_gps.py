"""Streaming compression: fixes arrive one at a time from a live tracker.

Simulates a tracking server receiving an interleaved feed from three
vehicles and compressing each stream *as it arrives* with the online
OPW-SP algorithm — the scenario the paper's online/batch distinction is
about. Shows per-vehicle emission decisions, buffer occupancy, and that
the result matches what the batch algorithm would have produced with the
whole series in hand.

Run:
    python examples/streaming_gps.py
"""

from __future__ import annotations

import numpy as np

from repro import OPWSP
from repro.datagen import TrajectoryGenerator, URBAN
from repro.streaming import StreamingOPW, merge_streams
from repro.trajectory import Trajectory

EPSILON = 40.0
MAX_SPEED_ERROR = 5.0


def simulate_vehicles(n: int = 3, seed: int = 12) -> dict[str, Trajectory]:
    generator = TrajectoryGenerator(seed=seed)
    vehicles = {}
    for i in range(n):
        object_id = f"vehicle-{i}"
        vehicles[object_id] = generator.generate(
            URBAN.with_length(6_000.0), object_id, start_time_s=float(i * 3)
        )
    return vehicles


def main() -> None:
    vehicles = simulate_vehicles()
    print("live feed from", len(vehicles), "vehicles (interleaved by timestamp)")
    print()

    compressors = {
        object_id: StreamingOPW(
            EPSILON, "synchronized", max_speed_error=MAX_SPEED_ERROR
        )
        for object_id in vehicles
    }
    kept: dict[str, list] = {object_id: [] for object_id in vehicles}
    max_buffer = {object_id: 0 for object_id in vehicles}

    # The server loop: one interleaved, time-ordered feed.
    feed = merge_streams({oid: iter(traj) for oid, traj in vehicles.items()})
    for object_id, fix in feed:
        compressor = compressors[object_id]
        kept[object_id].extend(compressor.push(fix))
        max_buffer[object_id] = max(max_buffer[object_id], compressor.window_size)
    for object_id, compressor in compressors.items():
        kept[object_id].extend(compressor.finish())

    header = f"{'vehicle':12s} {'fixes in':>8s} {'kept':>5s} {'compression':>11s} {'max buffer':>10s} {'== batch?':>9s}"
    print(header)
    print("-" * len(header))
    for object_id, traj in vehicles.items():
        batch = OPWSP(max_dist_error=EPSILON, max_speed_error=MAX_SPEED_ERROR).compress(traj)
        batch_times = traj.t[batch.indices]
        streamed_times = np.array([fix.t for fix in kept[object_id]])
        agrees = bool(np.array_equal(streamed_times, batch_times))
        n = len(traj)
        k = len(kept[object_id])
        print(
            f"{object_id:12s} {n:8d} {k:5d} {100 * (1 - k / n):10.1f}% "
            f"{max_buffer[object_id]:10d} {str(agrees):>9s}"
        )

    print()
    print(f"every vehicle's streamed selection is identical to the batch")
    print(f"OPW-SP result; the server only ever buffered the open window")
    print(f"(max {max(max_buffer.values())} fixes), not the whole trip.")


if __name__ == "__main__":
    main()
