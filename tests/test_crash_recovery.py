"""End-to-end crash recovery: SIGKILL a checkpointed CLI run, resume it,
and demand byte-identical output.

These spawn real subprocesses and poll the filesystem, so they carry the
``slow`` marker and are deselected by default (run with ``-m slow``).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.pipeline.checkpoint import JOURNAL_NAME
from repro.trajectory import Trajectory
from repro.trajectory.io import write_csv

pytestmark = pytest.mark.slow

N_FILES = 8
POINTS = 4_000


@pytest.fixture(scope="module")
def fleet_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("fleet")
    rng = np.random.default_rng(42)
    for i in range(N_FILES):
        t = np.arange(POINTS, dtype=float) * 5.0
        xy = np.cumsum(rng.normal(0.0, 20.0, size=(POINTS, 2)), axis=0)
        write_csv(
            Trajectory(t, xy, object_id=f"trip-{i}"), directory / f"trip-{i}.csv"
        )
    return directory


def _pipeline_cmd(fleet_dir, out_dir, checkpoint=None, resume=None):
    cmd = [
        sys.executable, "-m", "repro", "pipeline", str(fleet_dir),
        "--spec", "td-tr:epsilon=25", "-o", str(out_dir),
    ]
    if checkpoint:
        cmd += ["--checkpoint", str(checkpoint)]
    if resume:
        cmd += ["--resume", str(resume)]
    return cmd


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _run(cmd):
    return subprocess.run(
        cmd, env=_env(), capture_output=True, text=True, timeout=300
    )


def _wait_for_journal_lines(journal, n, process, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"pipeline exited before it could be killed "
                f"(rc={process.returncode})"
            )
        try:
            if journal.read_text().count("\n") >= n:
                return
        except FileNotFoundError:
            pass
        time.sleep(0.005)
    raise AssertionError(f"journal never reached {n} lines")


def _read_outputs(out_dir):
    return {p.name: p.read_bytes() for p in sorted(out_dir.iterdir())}


class TestCrashRecovery:
    def test_sigkill_then_resume_is_byte_identical(self, fleet_dir, tmp_path):
        reference_out = tmp_path / "reference"
        rc = _run(_pipeline_cmd(fleet_dir, reference_out))
        assert rc.returncode == 0, rc.stderr

        crash_out = tmp_path / "crashed"
        checkpoint = tmp_path / "ck"
        process = subprocess.Popen(
            _pipeline_cmd(fleet_dir, crash_out, checkpoint=checkpoint),
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Let it finish some items but not all, then kill -9.
            _wait_for_journal_lines(checkpoint / JOURNAL_NAME, 2, process)
            os.kill(process.pid, signal.SIGKILL)
        finally:
            process.wait(timeout=60)
        assert process.returncode == -signal.SIGKILL

        journal_lines = (checkpoint / JOURNAL_NAME).read_text().count("\n")
        assert 0 < journal_lines < N_FILES  # genuinely mid-run

        resumed = _run(
            _pipeline_cmd(fleet_dir, crash_out, resume=checkpoint)
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed" in resumed.stdout

        assert _read_outputs(crash_out) == _read_outputs(reference_out)

    def test_resume_of_completed_run_rewrites_identically(
        self, fleet_dir, tmp_path
    ):
        out1 = tmp_path / "out1"
        checkpoint = tmp_path / "ck"
        first = _run(_pipeline_cmd(fleet_dir, out1, checkpoint=checkpoint))
        assert first.returncode == 0, first.stderr

        out2 = tmp_path / "out2"
        second = _run(_pipeline_cmd(fleet_dir, out2, resume=checkpoint))
        assert second.returncode == 0, second.stderr
        assert f"resumed {N_FILES}" in second.stdout
        assert _read_outputs(out1) == _read_outputs(out2)

    def test_resume_against_changed_inputs_fails_loudly(
        self, fleet_dir, tmp_path
    ):
        checkpoint = tmp_path / "ck"
        first = _run(
            _pipeline_cmd(fleet_dir, tmp_path / "out", checkpoint=checkpoint)
        )
        assert first.returncode == 0, first.stderr

        smaller = tmp_path / "smaller"
        smaller.mkdir()
        for path in sorted(fleet_dir.iterdir())[:-1]:
            (smaller / path.name).write_bytes(path.read_bytes())
        clashed = _run(
            _pipeline_cmd(smaller, tmp_path / "out2", resume=checkpoint)
        )
        assert clashed.returncode != 0
        assert "item_ids" in clashed.stderr
