"""Public API surface tests: the README's promises hold."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart(self):
        traj = repro.Trajectory.from_points(
            [(0, 0, 0), (10, 95, 8), (20, 210, 4)], object_id="demo"
        )
        result = repro.TDTR(epsilon=30.0).compress(traj)
        report = repro.evaluate_compression(traj, result.compressed)
        assert "points" in report.summary()

    def test_readme_streaming_snippet(self):
        traj = repro.Trajectory.from_points(
            [(float(i * 10), float(i * 100), 0.0) for i in range(10)]
        )
        opw = repro.make_online_compressor(
            "opw-sp", epsilon=50.0, max_speed_error=5.0
        )
        kept = []
        for fix in repro.PointStream.from_trajectory(traj):
            kept.extend(opw.push(fix))
        kept.extend(opw.finish())
        assert kept[0].t == 0.0
        assert kept[-1].t == 90.0

    def test_readme_store_snippet(self):
        from repro.geometry import BBox

        traj = repro.Trajectory.from_points(
            [(0, 0, 0), (10, 110, 6), (20, 230, 2), (30, 330, -5)], object_id="car-1"
        )
        store = repro.TrajectoryStore(compressor=repro.OPWTR(epsilon=50.0))
        store.insert(traj)
        pos = store.position_at("car-1", when=17.0)
        assert pos.shape == (2,)
        assert store.query_bbox(BBox(0, -10, 250, 10)) == ["car-1"]
        assert store.stats().byte_compression_ratio > 1.0

    def test_registry_names_match_readme_table(self):
        names = set(repro.available_compressors())
        assert {
            "ndp", "nopw", "bopw", "td-tr", "opw-tr", "opw-sp", "td-sp",
            "operb", "cised",
            "every-ith", "distance-threshold", "angular", "sliding-window",
            "bottom-up", "td-tr-budget", "bottom-up-budget",
            "bottom-up-total-error", "dead-reckoning",
        } == names

    def test_error_functions_exported(self):
        traj = repro.Trajectory.from_points([(0, 0, 0), (10, 100, 0), (20, 150, 0)])
        approx = traj.subset([0, 2])
        assert repro.mean_synchronized_error(traj, approx) >= 0.0
        assert repro.max_synchronized_error(traj, approx) >= 0.0

    def test_exceptions_hierarchy(self):
        from repro.exceptions import (
            CodecError,
            CompressionError,
            ReproError,
            StorageError,
            ThresholdError,
            TrajectoryError,
        )

        assert issubclass(TrajectoryError, ReproError)
        assert issubclass(TrajectoryError, ValueError)
        assert issubclass(ThresholdError, CompressionError)
        assert issubclass(CodecError, StorageError)

    def test_threshold_error_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            repro.TDTR(epsilon=-5.0)
