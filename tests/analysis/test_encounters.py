"""Tests for closed-form encounter detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.encounters import closest_approach, encounters
from repro.exceptions import TrajectoryError
from repro.trajectory import Trajectory


def mover(x0: float, y0: float, vx: float, vy: float, n: int = 11) -> Trajectory:
    t = np.arange(n) * 10.0
    return Trajectory(
        t, np.column_stack([x0 + vx * t, y0 + vy * t]), f"m{x0}-{y0}"
    )


class TestClosestApproach:
    def test_head_on_crossing(self):
        """Two objects crossing the same point at the same instant."""
        east = mover(0.0, 0.0, 10.0, 0.0)
        north = mover(500.0, -500.0, 0.0, 10.0)
        result = closest_approach(east, north)
        assert result.time == pytest.approx(50.0)
        assert result.distance_m == pytest.approx(0.0, abs=1e-9)
        assert result.position_a == pytest.approx((500.0, 0.0))

    def test_parallel_offset_constant_distance(self):
        a = mover(0.0, 0.0, 10.0, 0.0)
        b = mover(0.0, 30.0, 10.0, 0.0)
        result = closest_approach(a, b)
        assert result.distance_m == pytest.approx(30.0)
        assert result.time == pytest.approx(0.0)  # ties resolve earliest

    def test_near_miss_midsegment(self):
        """Closest approach strictly inside a segment (not at a sample)."""
        a = mover(0.0, 0.0, 10.0, 0.0)
        b = mover(1000.0, 40.0, -10.0, 0.0)
        result = closest_approach(a, b)
        # They pass at t=50 with a 40 m lateral gap; t=50 is a sample
        # here, so shift b to break the alignment:
        b2 = Trajectory(b.t + 3.0, b.xy, "b2")
        result2 = closest_approach(a, b2)
        assert result.distance_m == pytest.approx(40.0)
        assert result2.distance_m == pytest.approx(40.0, rel=0.05)
        assert result2.time not in set(a.t.tolist())

    def test_matches_dense_sampling(self, urban_trajectory):
        other = urban_trajectory.shifted(dt=0.0, dx=120.0, dy=-60.0)
        result = closest_approach(urban_trajectory, other)
        times = np.linspace(
            urban_trajectory.start_time, urban_trajectory.end_time, 50_001
        )
        dists = np.hypot(
            *(urban_trajectory.positions_at(times) - other.positions_at(times)).T
        )
        assert result.distance_m == pytest.approx(float(dists.min()), abs=0.05)

    def test_disjoint_raises(self):
        a = mover(0.0, 0.0, 1.0, 0.0)
        b = Trajectory(a.t + 1e6, a.xy, "late")
        with pytest.raises(TrajectoryError):
            closest_approach(a, b)


class TestEncounters:
    def test_crossing_window(self):
        """Objects crossing at t=50: within 100 m while |20t-1000| <= ...

        east at (10t, 0), north at (500, -500+10t): the gap is
        sqrt((10t-500)^2 + (10t-500)^2) = |10t-500|*sqrt(2), so the 100 m
        window is |t-50| <= 100/(10*sqrt(2)) ~= 7.071 s.
        """
        east = mover(0.0, 0.0, 10.0, 0.0)
        north = mover(500.0, -500.0, 0.0, 10.0)
        windows = encounters(east, north, within_m=100.0)
        assert len(windows) == 1
        start, end = windows[0]
        half_width = 100.0 / (10.0 * np.sqrt(2.0))
        assert start == pytest.approx(50.0 - half_width, abs=1e-6)
        assert end == pytest.approx(50.0 + half_width, abs=1e-6)

    def test_never_close(self):
        a = mover(0.0, 0.0, 10.0, 0.0)
        b = mover(0.0, 10_000.0, 10.0, 0.0)
        assert encounters(a, b, within_m=50.0) == []

    def test_always_close_single_window(self):
        a = mover(0.0, 0.0, 10.0, 0.0)
        b = mover(0.0, 5.0, 10.0, 0.0)
        windows = encounters(a, b, within_m=50.0)
        assert len(windows) == 1
        assert windows[0][0] == pytest.approx(a.start_time)
        assert windows[0][1] == pytest.approx(a.end_time)

    def test_two_separate_encounters(self):
        """A weaving object crosses the corridor twice."""
        t = np.arange(0.0, 110.0, 10.0)
        a = Trajectory(t, np.column_stack([t * 10.0, np.zeros_like(t)]), "a")
        # b oscillates in y: near at t~20 and t~80, far in between.
        y = np.array([500.0, 300, 50, 300, 500, 600, 500, 300, 50, 300, 500.0])
        b = Trajectory(t, np.column_stack([t * 10.0, y]), "b")
        windows = encounters(a, b, within_m=100.0)
        assert len(windows) == 2
        assert windows[0][1] < windows[1][0]

    def test_windows_match_dense_sampling(self, urban_trajectory):
        other = urban_trajectory.shifted(dx=70.0)
        windows = encounters(urban_trajectory, other, within_m=70.5)
        times = np.linspace(
            urban_trajectory.start_time, urban_trajectory.end_time, 20_001
        )
        dists = np.hypot(
            *(urban_trajectory.positions_at(times) - other.positions_at(times)).T
        )
        inside = dists <= 70.5
        sampled_fraction = float(inside.mean())
        duration = urban_trajectory.end_time - urban_trajectory.start_time
        window_fraction = sum(end - start for start, end in windows) / duration
        assert window_fraction == pytest.approx(sampled_fraction, abs=0.01)

    def test_validation(self):
        a = mover(0.0, 0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            encounters(a, a, within_m=0.0)

    def test_windows_disjoint_and_ordered(self, urban_trajectory):
        other = urban_trajectory.shifted(dx=45.0, dy=20.0)
        windows = encounters(urban_trajectory, other, within_m=50.0)
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert s1 <= e1
            assert e1 < s2
            assert s2 <= e2
