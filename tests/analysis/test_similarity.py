"""Tests for trajectory similarity measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    hausdorff_distance,
    max_synchronized_distance,
    mean_synchronized_distance,
    overlap_interval,
    pairwise_matrix,
)
from repro.exceptions import TrajectoryError
from repro.trajectory import Trajectory


@pytest.fixture
def eastbound() -> Trajectory:
    t = np.arange(0.0, 110.0, 10.0)
    return Trajectory(t, np.column_stack([t * 10.0, np.zeros_like(t)]), "east")


class TestOverlapInterval:
    def test_full_overlap(self, eastbound):
        assert overlap_interval(eastbound, eastbound) == (0.0, 100.0)

    def test_partial_overlap(self, eastbound):
        late = eastbound.shifted(dt=50.0)
        assert overlap_interval(eastbound, late) == (50.0, 100.0)

    def test_disjoint_raises(self, eastbound):
        far = eastbound.shifted(dt=1000.0)
        with pytest.raises(TrajectoryError, match="overlap"):
            overlap_interval(eastbound, far)


class TestSynchronizedDistance:
    def test_identical_is_zero(self, eastbound):
        assert mean_synchronized_distance(eastbound, eastbound) == pytest.approx(0.0)
        assert max_synchronized_distance(eastbound, eastbound) == pytest.approx(0.0)

    def test_parallel_offset(self, eastbound):
        offset = eastbound.shifted(dy=40.0)
        assert mean_synchronized_distance(eastbound, offset) == pytest.approx(40.0)
        assert max_synchronized_distance(eastbound, offset) == pytest.approx(40.0)

    def test_symmetry(self, eastbound):
        other = eastbound.shifted(dx=15.0, dy=-30.0)
        assert mean_synchronized_distance(eastbound, other) == pytest.approx(
            mean_synchronized_distance(other, eastbound)
        )

    def test_time_lag_registers(self, eastbound):
        """Same route, driven 20 s later: spatially identical, but the
        synchronized distance sees the 200 m lag over the overlap."""
        lagged = eastbound.shifted(dt=20.0)
        sync = mean_synchronized_distance(eastbound, lagged)
        assert sync == pytest.approx(200.0)
        assert hausdorff_distance(eastbound, lagged) < 250.0  # routes overlap

    def test_mean_at_most_max(self, eastbound, urban_trajectory):
        shifted = urban_trajectory.shifted(dx=25.0)
        assert mean_synchronized_distance(
            urban_trajectory, shifted
        ) <= max_synchronized_distance(urban_trajectory, shifted) + 1e-9

    def test_compression_distance_matches_error_notion(self, urban_trajectory):
        from repro.core import TDTR
        from repro.error import mean_synchronized_error

        approx = TDTR(epsilon=40.0).compress(urban_trajectory).compressed
        assert mean_synchronized_distance(
            urban_trajectory, approx
        ) == pytest.approx(mean_synchronized_error(urban_trajectory, approx), rel=1e-9)


class TestHausdorff:
    def test_identical_routes(self, eastbound):
        assert hausdorff_distance(eastbound, eastbound) == pytest.approx(0.0)

    def test_offset_routes(self, eastbound):
        offset = eastbound.shifted(dy=75.0)
        assert hausdorff_distance(eastbound, offset) == pytest.approx(75.0, rel=0.05)

    def test_time_blind(self, eastbound):
        """The same road an hour later: Hausdorff ~0, synchronized huge."""
        later = Trajectory(eastbound.t + 3600.0, eastbound.xy, "later")
        assert hausdorff_distance(eastbound, later) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self, eastbound):
        bent = eastbound.shifted(dx=100.0, dy=33.0)
        assert hausdorff_distance(eastbound, bent) == pytest.approx(
            hausdorff_distance(bent, eastbound)
        )

    def test_rejects_bad_samples(self, eastbound):
        with pytest.raises(ValueError):
            hausdorff_distance(eastbound, eastbound, n_samples=1)


class TestPairwiseMatrix:
    def test_shape_and_symmetry(self, eastbound):
        trajs = [eastbound, eastbound.shifted(dy=10.0), eastbound.shifted(dy=50.0)]
        matrix = pairwise_matrix(trajs)
        assert matrix.shape == (3, 3)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)
        assert matrix[0, 1] == pytest.approx(10.0)
        assert matrix[0, 2] == pytest.approx(50.0)

    def test_custom_metric(self, eastbound):
        trajs = [eastbound, eastbound.shifted(dy=10.0)]
        matrix = pairwise_matrix(trajs, metric=hausdorff_distance)
        assert matrix[0, 1] == pytest.approx(10.0, rel=0.05)

    def test_rejects_single_trajectory(self, eastbound):
        with pytest.raises(ValueError):
            pairwise_matrix([eastbound])
