"""Tests for agglomerative trajectory clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import agglomerate, cluster_trajectories, hausdorff_distance
from repro.trajectory import Trajectory


def block_matrix() -> np.ndarray:
    """Two tight groups ({0,1,2} and {3,4}) far apart."""
    n = 5
    out = np.full((n, n), 100.0)
    np.fill_diagonal(out, 0.0)
    for i in (0, 1, 2):
        for j in (0, 1, 2):
            if i != j:
                out[i, j] = 1.0
    out[3, 4] = out[4, 3] = 2.0
    return out


class TestAgglomerate:
    def test_two_clusters_found(self):
        result = agglomerate(block_matrix(), n_clusters=2)
        assert result.n_clusters == 2
        assert len(set(result.labels[:3])) == 1
        assert len(set(result.labels[3:])) == 1
        assert result.labels[0] != result.labels[3]

    def test_max_distance_cut(self):
        result = agglomerate(block_matrix(), max_distance=10.0)
        assert result.n_clusters == 2
        assert all(d <= 10.0 for d in result.merge_distances)

    def test_tight_cut_keeps_singletons(self):
        result = agglomerate(block_matrix(), max_distance=0.5)
        assert result.n_clusters == 5

    def test_one_cluster(self):
        result = agglomerate(block_matrix(), n_clusters=1)
        assert result.n_clusters == 1
        assert len(result.merge_distances) == 4

    def test_labels_numbered_by_first_appearance(self):
        result = agglomerate(block_matrix(), n_clusters=2)
        assert result.labels[0] == 0
        assert result.labels[3] == 1

    def test_members(self):
        result = agglomerate(block_matrix(), n_clusters=2)
        np.testing.assert_array_equal(result.members(0), [0, 1, 2])
        np.testing.assert_array_equal(result.members(1), [3, 4])

    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_all_linkages_on_clean_blocks(self, linkage):
        result = agglomerate(block_matrix(), n_clusters=2, linkage=linkage)
        assert result.n_clusters == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            agglomerate(np.zeros((2, 3)), n_clusters=1)
        with pytest.raises(ValueError, match="symmetric"):
            bad = block_matrix()
            bad[0, 1] = 42.0
            agglomerate(bad, n_clusters=2)
        with pytest.raises(ValueError, match="exactly one"):
            agglomerate(block_matrix())
        with pytest.raises(ValueError, match="exactly one"):
            agglomerate(block_matrix(), n_clusters=2, max_distance=1.0)
        with pytest.raises(ValueError, match="linkage"):
            agglomerate(block_matrix(), n_clusters=2, linkage="psychic")
        with pytest.raises(ValueError, match="n_clusters"):
            agglomerate(block_matrix(), n_clusters=0)


class TestClusterTrajectories:
    def test_groups_by_route(self):
        """Three commuters on road A, two on road B."""
        t = np.arange(0.0, 100.0, 10.0)
        road_a = [
            Trajectory(t, np.column_stack([t * 10.0, np.full_like(t, dy)]), f"a{dy}")
            for dy in (0.0, 8.0, 16.0)
        ]
        road_b = [
            Trajectory(t, np.column_stack([t * 10.0, np.full_like(t, dy)]), f"b{dy}")
            for dy in (900.0, 912.0)
        ]
        result = cluster_trajectories(road_a + road_b, n_clusters=2)
        assert set(result.labels[:3]) == {0}
        assert set(result.labels[3:]) == {1}

    def test_route_metric_ignores_departure_time(self):
        """With the Hausdorff metric, staggered departures on the same
        road cluster together."""
        t = np.arange(0.0, 100.0, 10.0)
        same_road = [
            Trajectory(t + lag, np.column_stack([t * 10.0, np.zeros_like(t)]), f"l{lag}")
            for lag in (0.0, 30.0, 60.0)
        ]
        other_road = [
            Trajectory(t, np.column_stack([np.zeros_like(t), t * 10.0]), "north")
        ]
        result = cluster_trajectories(
            same_road + other_road, n_clusters=2, metric=hausdorff_distance
        )
        assert set(result.labels[:3]) == {0}
        assert result.labels[3] == 1
