"""Tests for traffic-flow analytics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import occupancy_grid, speed_over_time
from repro.trajectory import Trajectory


def constant_speed_trip(speed_ms: float, start: float = 0.0, n: int = 11) -> Trajectory:
    t = start + np.arange(n) * 10.0
    x = (t - start) * speed_ms
    return Trajectory(t, np.column_stack([x, np.zeros_like(x)]), f"v{speed_ms}")


class TestSpeedOverTime:
    def test_single_constant_trip(self):
        profile = speed_over_time([constant_speed_trip(12.0)], bin_seconds=25.0)
        measured = profile.mean_speed_ms[~np.isnan(profile.mean_speed_ms)]
        np.testing.assert_allclose(measured, 12.0)

    def test_congestion_dip_visible(self):
        """A fast trip early and a slow trip late produce a falling
        profile."""
        early = constant_speed_trip(20.0, start=0.0)
        late = constant_speed_trip(5.0, start=200.0)
        profile = speed_over_time([early, late], bin_seconds=100.0)
        valid = profile.mean_speed_ms[~np.isnan(profile.mean_speed_ms)]
        assert valid[0] == pytest.approx(20.0)
        assert valid[-1] == pytest.approx(5.0)

    def test_overlapping_trips_average(self):
        a = constant_speed_trip(10.0)
        b = constant_speed_trip(20.0)
        profile = speed_over_time([a, b], bin_seconds=50.0)
        valid = profile.mean_speed_ms[~np.isnan(profile.mean_speed_ms)]
        np.testing.assert_allclose(valid, 15.0)

    def test_empty_bins_are_nan(self):
        early = constant_speed_trip(10.0, start=0.0)
        late = constant_speed_trip(10.0, start=1000.0)
        profile = speed_over_time([early, late], bin_seconds=100.0)
        assert np.isnan(profile.mean_speed_ms[3])

    def test_bin_centers(self):
        profile = speed_over_time([constant_speed_trip(10.0)], bin_seconds=50.0)
        np.testing.assert_allclose(
            profile.bin_centers, (profile.bin_edges[:-1] + profile.bin_edges[1:]) / 2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            speed_over_time([constant_speed_trip(10.0)], bin_seconds=0.0)
        with pytest.raises(ValueError):
            speed_over_time([Trajectory.from_points([(0, 0, 0)])], bin_seconds=10.0)


class TestOdMatrix:
    def test_counts_trips_between_zones(self):
        from repro.analysis import od_matrix

        a = constant_speed_trip(10.0)          # 0 -> 1000 east
        b = constant_speed_trip(10.0).shifted(dy=5.0).with_object_id("b")
        back = Trajectory(
            a.t, a.xy[::-1].copy(), "back"
        )  # 1000 -> 0 (reverse positions)
        matrix = od_matrix([a, b, back], cell_size_m=500.0)
        assert matrix[((0, 0), (2, 0))] == 2   # a and b: west zone -> east zone
        assert matrix[((2, 0), (0, 0))] == 1   # the return trip

    def test_single_zone_trip(self):
        from repro.analysis import od_matrix

        stationary = Trajectory.from_points([(0, 5.0, 5.0), (10, 6.0, 6.0)])
        matrix = od_matrix([stationary], cell_size_m=100.0)
        assert matrix == {((0, 0), (0, 0)): 1}

    def test_validation(self):
        from repro.analysis import od_matrix

        with pytest.raises(ValueError):
            od_matrix([], cell_size_m=100.0)
        with pytest.raises(ValueError):
            od_matrix([constant_speed_trip(10.0)], cell_size_m=0.0)


class TestOccupancyGrid:
    def test_counts_distinct_objects_once_per_cell(self):
        # Two objects traverse the same corridor; one stays put.
        a = constant_speed_trip(10.0)
        b = constant_speed_trip(10.0).shifted(dy=5.0).with_object_id("b")
        stationary = Trajectory.from_points([(0, 5000.0, 5000.0), (100, 5000.0, 5000.0)])
        grid = occupancy_grid([a, b, stationary], cell_size_m=250.0)
        top_cell, top_count = grid.top_cells(1)[0]
        assert top_count == 2  # a and b, each once
        assert grid.cell_bbox(top_cell).width == 250.0

    def test_time_window_restricts(self):
        trip = constant_speed_trip(10.0)  # covers x 0..1000 over t 0..100
        full = occupancy_grid([trip], cell_size_m=100.0)
        early = occupancy_grid([trip], cell_size_m=100.0, t0=0.0, t1=30.0)
        assert len(early.counts) < len(full.counts)

    def test_compressed_trajectory_covers_same_cells(self):
        """Sampling the piecewise-linear path means a compressed straight
        run still visits every corridor cell."""
        trip = constant_speed_trip(10.0)
        compressed = trip.subset([0, len(trip) - 1])
        full = occupancy_grid([trip], cell_size_m=100.0)
        small = occupancy_grid([compressed], cell_size_m=100.0)
        assert set(small.counts) == set(full.counts)

    def test_top_cells_ordering(self):
        a = constant_speed_trip(10.0)
        b = constant_speed_trip(10.0).shifted(dy=1.0).with_object_id("b")
        grid = occupancy_grid([a, b], cell_size_m=100.0)
        counts = [count for _, count in grid.top_cells(100)]
        assert counts == sorted(counts, reverse=True)

    def test_validation(self):
        trip = constant_speed_trip(10.0)
        with pytest.raises(ValueError):
            occupancy_grid([trip], cell_size_m=0.0)
        with pytest.raises(ValueError, match="both"):
            occupancy_grid([trip], cell_size_m=100.0, t0=0.0)
        with pytest.raises(ValueError):
            occupancy_grid([], cell_size_m=100.0)
        with pytest.raises(ValueError):
            occupancy_grid([trip], cell_size_m=100.0, sample_interval_s=0.0)
