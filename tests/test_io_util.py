"""Tests for the shared durability helpers in :mod:`repro.io_util`."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.io_util import (
    ON_MALFORMED_MODES,
    crc32,
    crc32_text,
    parse_on_malformed,
    write_atomic,
    write_atomic_json,
)


class TestWriteAtomic:
    def test_writes_text(self, tmp_path):
        target = tmp_path / "out.txt"
        write_atomic(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_writes_bytes(self, tmp_path):
        target = tmp_path / "out.bin"
        write_atomic(target, b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        write_atomic(target, "new")
        assert target.read_text() == "new"

    def test_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.txt"
        write_atomic(target, "data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_non_durable_mode(self, tmp_path):
        target = tmp_path / "out.txt"
        write_atomic(target, "data", durable=False)
        assert target.read_text() == "data"

    def test_failure_leaves_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"
        target.write_text("precious")
        import os

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            write_atomic(target, "overwrite attempt")
        monkeypatch.setattr(os, "replace", real_replace)
        assert target.read_text() == "precious"


class TestWriteAtomicJson:
    def test_round_trips(self, tmp_path):
        import json

        target = tmp_path / "data.json"
        payload = {"b": [1, 2], "a": "x"}
        write_atomic_json(target, payload)
        assert json.loads(target.read_text()) == payload

    def test_ends_with_newline(self, tmp_path):
        target = tmp_path / "data.json"
        write_atomic_json(target, {"k": 1})
        assert target.read_text().endswith("\n")


class TestParseOnMalformed:
    def test_raise(self):
        assert parse_on_malformed("raise") == ("raise", None)

    def test_skip(self):
        assert parse_on_malformed("skip") == ("skip", None)

    def test_quarantine(self):
        mode, directory = parse_on_malformed("quarantine:/tmp/bad")
        assert mode == "quarantine"
        assert directory == Path("/tmp/bad")

    def test_quarantine_requires_directory(self):
        with pytest.raises(ValueError, match="directory"):
            parse_on_malformed("quarantine:")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="on_malformed"):
            parse_on_malformed("explode")

    def test_modes_constant_covers_all(self):
        assert set(ON_MALFORMED_MODES) == {"raise", "skip", "quarantine"}


class TestCrc32:
    def test_deterministic(self):
        assert crc32(b"abc") == crc32(b"abc")
        assert crc32_text("abc") == crc32(b"abc")

    def test_sensitive_to_single_bit(self):
        assert crc32(b"abc") != crc32(b"abd")

    def test_unsigned_range(self):
        assert 0 <= crc32(b"\xff" * 64) < 2**32
