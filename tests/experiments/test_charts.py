"""Tests for the ASCII series chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments import render_series_chart


class TestRenderSeriesChart:
    def test_basic_structure(self):
        text = render_series_chart(
            {"up": [(0.0, 0.0), (1.0, 1.0)], "down": [(0.0, 1.0), (1.0, 0.0)]},
            width=20,
            height=6,
            title="demo",
            x_label="t",
            y_label="v",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("v [")
        assert len([line for line in lines if line.startswith("|")]) == 6
        assert lines[-2].startswith("+")
        assert "a = up" in lines[-1]
        assert "b = down" in lines[-1]

    def test_markers_placed_at_extremes(self):
        text = render_series_chart(
            {"s": [(0.0, 0.0), (10.0, 5.0)]}, width=10, height=4
        )
        rows = [line[1:] for line in text.splitlines() if line.startswith("|")]
        # Max y -> top row, at right edge; min y -> bottom row, left edge.
        assert rows[0][-1] == "a"
        assert rows[-1][0] == "a"

    def test_collision_marker(self):
        text = render_series_chart(
            {"one": [(0.0, 0.0)], "two": [(0.0, 0.0)]}, width=10, height=4
        )
        assert "*" in text

    def test_constant_series_does_not_divide_by_zero(self):
        text = render_series_chart({"flat": [(0.0, 5.0), (1.0, 5.0)]})
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(ValueError, match="nothing"):
            render_series_chart({})
        with pytest.raises(ValueError, match="small"):
            render_series_chart({"s": [(0, 0)]}, width=3, height=3)
        with pytest.raises(ValueError, match="empty"):
            render_series_chart({"s": []})

    def test_many_series_cycle_markers(self):
        series = {f"series-{i}": [(float(i), float(i))] for i in range(30)}
        text = render_series_chart(series)
        assert "a = series-0" in text
