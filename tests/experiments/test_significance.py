"""Tests for the paired-comparison statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NOPW, OPWTR
from repro.experiments import run_sweep
from repro.experiments.harness import SweepRecord
from repro.experiments.significance import (
    bootstrap_ci,
    compare_algorithms,
    paired_differences,
)


def record(algo: str, traj: str, threshold: float, error: float) -> SweepRecord:
    return SweepRecord(
        algorithm=algo,
        threshold_m=threshold,
        trajectory_id=traj,
        n_original=100,
        n_kept=10,
        compression_percent=90.0,
        mean_sync_error_m=error,
        max_sync_error_m=error * 2,
        runtime_s=0.0,
    )


class TestPairedDifferences:
    def test_matched_pairs(self):
        a = [record("a", "t1", 30.0, 5.0), record("a", "t2", 30.0, 7.0)]
        b = [record("b", "t2", 30.0, 10.0), record("b", "t1", 30.0, 6.0)]
        np.testing.assert_allclose(paired_differences(a, b), [-1.0, -3.0])

    def test_unmatched_record_raises(self):
        a = [record("a", "t1", 30.0, 5.0)]
        b = [record("b", "t1", 40.0, 6.0)]
        with pytest.raises(ValueError, match="no matching"):
            paired_differences(a, b)

    def test_extra_record_in_b_raises(self):
        a = [record("a", "t1", 30.0, 5.0)]
        b = [record("b", "t1", 30.0, 6.0), record("b", "t2", 30.0, 6.0)]
        with pytest.raises(ValueError, match="unmatched"):
            paired_differences(a, b)

    def test_other_metric(self):
        a = [record("a", "t1", 30.0, 5.0)]
        b = [record("b", "t1", 30.0, 6.0)]
        diff = paired_differences(a, b, metric="compression_percent")
        np.testing.assert_allclose(diff, [0.0])


class TestBootstrapCi:
    def test_ci_brackets_mean_of_tight_sample(self):
        values = np.full(50, 3.0) + np.linspace(-0.01, 0.01, 50)
        low, high = bootstrap_ci(values)
        assert low <= 3.0 <= high
        assert high - low < 0.02

    def test_deterministic_under_seed(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=40)
        assert bootstrap_ci(values, seed=9) == bootstrap_ci(values, seed=9)

    def test_wider_sample_wider_ci(self):
        rng = np.random.default_rng(5)
        tight = bootstrap_ci(rng.normal(0, 0.1, size=50))
        wide = bootstrap_ci(rng.normal(0, 10.0, size=50))
        assert (wide[1] - wide[0]) > (tight[1] - tight[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]), confidence=1.5)


class TestCompareAlgorithms:
    def test_real_sweep_comparison(self, small_dataset):
        thresholds = [30.0, 60.0]
        opwtr = run_sweep(lambda e: OPWTR(epsilon=e), thresholds, small_dataset)
        nopw = run_sweep(lambda e: NOPW(epsilon=e), thresholds, small_dataset)
        comparison = compare_algorithms(opwtr, nopw)
        assert comparison.n_pairs == len(small_dataset) * len(thresholds)
        assert comparison.mean_difference < 0  # OPW-TR errs less
        assert comparison.win_fraction_a == 1.0
        assert comparison.conclusive
        assert comparison.ci_high < 0
        assert "opw-tr vs nopw" in comparison.summary()

    def test_self_comparison_inconclusive(self, small_dataset):
        sweep = run_sweep(lambda e: OPWTR(epsilon=e), [40.0], small_dataset)
        comparison = compare_algorithms(sweep, sweep)
        assert comparison.mean_difference == 0.0
        assert not comparison.conclusive
