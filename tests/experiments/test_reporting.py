"""Tests for text table rendering."""

from __future__ import annotations

import pytest

from repro.experiments import (
    AggregateRow,
    render_aggregate_rows,
    render_table,
    series_by_algorithm,
)


def make_row(algorithm: str, threshold: float, error: float = 10.0) -> AggregateRow:
    return AggregateRow(
        algorithm=algorithm,
        threshold_m=threshold,
        n_trajectories=3,
        compression_percent=75.0,
        mean_sync_error_m=error,
        max_sync_error_m=error * 3,
        runtime_s=0.01,
    )


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(["name", "value"], [("a", 1.5), ("bbbb", 22.25)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = render_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["v"], [(1.23456,)])
        assert "1.23" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [(1,)])


class TestSeriesGrouping:
    def test_grouped_and_sorted(self):
        rows = [make_row("b", 50.0), make_row("a", 40.0), make_row("a", 30.0)]
        series = series_by_algorithm(rows)
        assert list(series) == ["b", "a"]
        assert [r.threshold_m for r in series["a"]] == [30.0, 40.0]


class TestRenderAggregateRows:
    def test_contains_all_rows(self):
        rows = [make_row("ndp", 30.0), make_row("td-tr", 30.0)]
        text = render_aggregate_rows(rows, title="Fig")
        assert "ndp" in text
        assert "td-tr" in text
        assert text.splitlines()[0] == "Fig"
