"""Tests for the figure pipelines (on a reduced grid for speed).

The full-grid runs with shape assertions live in ``benchmarks/``; here we
verify the pipelines' structure and the paper's core relations on a small
dataset and a three-point threshold grid.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure_07, figure_08, figure_09, figure_10, figure_11

THRESHOLDS = (30.0, 60.0, 100.0)


@pytest.fixture(scope="module")
def fig7(small_dataset_module):
    return figure_07(small_dataset_module, THRESHOLDS)


@pytest.fixture(scope="module")
def small_dataset_module():
    from repro.datagen import TrajectoryGenerator, URBAN

    generator = TrajectoryGenerator(seed=5)
    profile = URBAN.with_length(4_000.0)
    return [generator.generate(profile, object_id=f"mini-{i}") for i in range(3)]


class TestFigureStructure:
    def test_series_and_labels(self, fig7):
        assert fig7.figure_id == "fig07"
        assert fig7.algorithms() == ["ndp", "td-tr"]
        series = fig7.series("td-tr")
        assert [row.threshold_m for row in series] == list(THRESHOLDS)

    def test_unknown_series_raises(self, fig7):
        with pytest.raises(KeyError, match="have"):
            fig7.series("quantum")

    def test_fig10_speed_labels(self, small_dataset_module):
        fig = figure_10(small_dataset_module, THRESHOLDS, (5.0, 25.0))
        assert "opw-sp(5m/s)" in fig.algorithms()
        assert "opw-sp(25m/s)" in fig.algorithms()
        assert "td-sp(5m/s)" in fig.algorithms()
        assert "opw-tr" in fig.algorithms()

    def test_fig11_has_all_headliners(self, small_dataset_module):
        fig = figure_11(small_dataset_module, THRESHOLDS, (5.0,))
        assert set(fig.algorithms()) == {
            "ndp",
            "td-tr",
            "nopw",
            "opw-tr",
            "opw-sp(5m/s)",
        }


class TestPaperRelationsOnSmallGrid:
    def test_fig7_tdtr_much_lower_error(self, fig7):
        for ndp_row, tdtr_row in zip(fig7.series("ndp"), fig7.series("td-tr")):
            assert tdtr_row.mean_sync_error_m < ndp_row.mean_sync_error_m

    def test_fig8_bopw_compresses_more(self, small_dataset_module):
        fig = figure_08(small_dataset_module, THRESHOLDS)
        for bopw_row, nopw_row in zip(fig.series("bopw"), fig.series("nopw")):
            assert bopw_row.compression_percent >= nopw_row.compression_percent - 1e-9

    def test_fig9_opwtr_lower_error(self, small_dataset_module):
        fig = figure_09(small_dataset_module, THRESHOLDS)
        for nopw_row, opwtr_row in zip(fig.series("nopw"), fig.series("opw-tr")):
            assert opwtr_row.mean_sync_error_m < nopw_row.mean_sync_error_m

    def test_fig10_sp25_close_to_opwtr(self, small_dataset_module):
        fig = figure_10(small_dataset_module, THRESHOLDS, (5.0, 25.0))
        for tr_row, sp_row in zip(fig.series("opw-tr"), fig.series("opw-sp(25m/s)")):
            assert sp_row.compression_percent <= tr_row.compression_percent + 1e-9
            assert sp_row.mean_sync_error_m <= tr_row.mean_sync_error_m + 5.0
