"""Tests for the standard evaluation dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    DATASET_SEED,
    DISTANCE_THRESHOLDS_M,
    PAPER_TABLE2,
    SPEED_THRESHOLDS_MS,
    paper_dataset,
)
from repro.trajectory import dataset_stats


class TestParameterGrid:
    def test_fifteen_thresholds_30_to_100(self):
        """The paper: 'fifteen different spatial threshold values ranging
        from 30 to 100 m'."""
        assert len(DISTANCE_THRESHOLDS_M) == 15
        assert DISTANCE_THRESHOLDS_M[0] == 30.0
        assert DISTANCE_THRESHOLDS_M[-1] == 100.0
        np.testing.assert_allclose(np.diff(DISTANCE_THRESHOLDS_M), 5.0)

    def test_three_speed_thresholds(self):
        assert SPEED_THRESHOLDS_MS == (5.0, 15.0, 25.0)


class TestPaperDataset:
    def test_ten_trajectories(self):
        assert len(paper_dataset()) == 10

    def test_deterministic_and_cached(self):
        first = paper_dataset()
        second = paper_dataset()
        assert first == second
        assert first is not second  # fresh list each call
        assert first[0] is second[0]  # cached trajectories shared

    def test_other_seed_differs(self):
        assert paper_dataset(seed=DATASET_SEED + 1) != paper_dataset()

    def test_object_ids_unique(self):
        ids = [traj.object_id for traj in paper_dataset()]
        assert len(set(ids)) == 10

    def test_statistics_in_table2_bands(self):
        """The substitution contract: aggregate statistics within ±35% of
        the paper's Table 2 means (documented in DESIGN.md)."""
        agg = dataset_stats(paper_dataset())
        ref = PAPER_TABLE2
        checks = [
            (agg.duration_mean_s, ref.duration_mean_s),
            (agg.speed_mean_kmh, ref.speed_mean_kmh),
            (agg.length_mean_km, ref.length_mean_km),
            (agg.displacement_mean_km, ref.displacement_mean_km),
            (agg.points_mean, ref.points_mean),
        ]
        for measured, expected in checks:
            assert measured == pytest.approx(expected, rel=0.35)

    def test_mix_of_short_and_long_series(self):
        """Table 2's large standard deviations: the dataset must contain
        both short and lengthy time series."""
        sizes = sorted(len(traj) for traj in paper_dataset())
        assert sizes[0] < 110
        assert sizes[-1] > 230
