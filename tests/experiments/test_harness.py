"""Tests for the sweep harness."""

from __future__ import annotations

import pytest

from repro.core import TDTR
from repro.experiments import aggregate, run_single, run_sweep


class TestRunSingle:
    def test_record_fields(self, urban_trajectory):
        record = run_single(TDTR(epsilon=40.0), urban_trajectory, 40.0)
        assert record.algorithm == "td-tr"
        assert record.threshold_m == 40.0
        assert record.trajectory_id == urban_trajectory.object_id
        assert record.n_original == len(urban_trajectory)
        assert 0 < record.n_kept <= record.n_original
        assert record.max_sync_error_m <= 40.0 + 1e-9
        assert record.runtime_s >= 0.0


class TestRunSweep:
    def test_grid_size(self, small_dataset):
        records = run_sweep(lambda eps: TDTR(epsilon=eps), [20.0, 40.0], small_dataset)
        assert len(records) == 2 * len(small_dataset)
        assert {r.threshold_m for r in records} == {20.0, 40.0}

    def test_every_trajectory_present(self, small_dataset):
        records = run_sweep(lambda eps: TDTR(epsilon=eps), [30.0], small_dataset)
        assert {r.trajectory_id for r in records} == {
            t.object_id for t in small_dataset
        }


class TestAggregate:
    def test_averages_over_trajectories(self, small_dataset):
        records = run_sweep(lambda eps: TDTR(epsilon=eps), [20.0, 40.0], small_dataset)
        rows = aggregate(records)
        assert len(rows) == 2
        for row in rows:
            assert row.n_trajectories == len(small_dataset)
            bucket = [
                r
                for r in records
                if r.threshold_m == row.threshold_m and r.algorithm == row.algorithm
            ]
            expected = sum(r.compression_percent for r in bucket) / len(bucket)
            assert row.compression_percent == pytest.approx(expected)

    def test_rows_sorted(self, small_dataset):
        records = run_sweep(lambda eps: TDTR(epsilon=eps), [40.0, 20.0, 30.0], small_dataset)
        rows = aggregate(records)
        assert [r.threshold_m for r in rows] == [20.0, 30.0, 40.0]

    def test_empty_aggregate(self):
        assert aggregate([]) == []
