"""End-to-end integration: the full pipeline in one scenario.

Generate a fleet -> corrupt it like a real logger would -> clean ->
stream through online compression into the store -> persist -> reload ->
answer the application queries -> run the analyses — asserting the
system-level contracts at every hand-off. Anything that breaks an
interface between subpackages should fail here even if every unit test
passes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import cluster_trajectories, hausdorff_distance, speed_over_time
from repro.core import OPWSP
from repro.error import evaluate_compression
from repro.geometry import BBox
from repro.storage import StreamIngestor, TrajectoryStore
from repro.streaming import StreamingOPW, merge_streams
from repro.trajectory import Trajectory, drop_speed_outliers, quality_issues
from repro.datagen import TrajectoryGenerator, URBAN

EPSILON = 35.0
SPEED_EPS = 5.0
FLEET = 4


@pytest.fixture(scope="module")
def scenario():
    """The full pipeline, executed once and inspected by every test."""
    generator = TrajectoryGenerator(seed=77)
    rng = np.random.default_rng(77)
    raw_fleet: dict[str, Trajectory] = {}
    clean_fleet: dict[str, Trajectory] = {}
    for i in range(FLEET):
        object_id = f"veh-{i}"
        trip = generator.generate(
            URBAN.with_length(5_000.0), object_id, start_time_s=float(i * 17)
        )
        # Inject one teleported fix per trip (multipath spike).
        xy = trip.xy.copy()
        victim = int(rng.integers(2, len(trip) - 2))
        xy[victim] = xy[victim] + rng.normal(0.0, 8_000.0, size=2)
        dirty = Trajectory(trip.t, xy, object_id)
        raw_fleet[object_id] = dirty
        clean_fleet[object_id] = drop_speed_outliers(dirty, max_speed_ms=60.0)

    store = TrajectoryStore(coord_resolution_m=0.1)
    ingestor = StreamIngestor(
        store,
        compressor_factory=lambda: StreamingOPW(
            EPSILON, "synchronized", max_speed_error=SPEED_EPS
        ),
    )
    feed = merge_streams({oid: iter(t) for oid, t in clean_fleet.items()})
    for object_id, fix in feed:
        ingestor.push(object_id, fix)
    records = {record.object_id: record for record in ingestor.finish_all()}
    return {
        "raw": raw_fleet,
        "clean": clean_fleet,
        "store": store,
        "records": records,
    }


class TestPipeline:
    def test_cleaning_removed_the_spikes(self, scenario):
        for object_id, dirty in scenario["raw"].items():
            cleaned = scenario["clean"][object_id]
            assert len(cleaned) == len(dirty) - 1
            assert quality_issues(cleaned, max_speed_ms=60.0) == []

    def test_streamed_selection_matches_batch(self, scenario):
        for object_id, cleaned in scenario["clean"].items():
            batch = OPWSP(max_dist_error=EPSILON, max_speed_error=SPEED_EPS).compress(cleaned)
            stored = scenario["store"].get(object_id)
            np.testing.assert_allclose(
                stored.t, cleaned.t[batch.indices], atol=1e-3
            )

    def test_error_bounds_recorded_and_sound(self, scenario):
        for object_id, cleaned in scenario["clean"].items():
            record = scenario["records"][object_id]
            assert record.sync_error_bound_m == pytest.approx(EPSILON, abs=0.1)
            report = evaluate_compression(
                cleaned, scenario["store"].get(object_id)
            )
            assert report.max_sync_error_m <= record.sync_error_bound_m + 1e-6

    def test_storage_accounting(self, scenario):
        stats = scenario["store"].stats()
        assert stats.n_objects == FLEET
        assert stats.n_raw_points == sum(len(t) for t in scenario["clean"].values())
        assert stats.byte_compression_ratio > 2.0

    def test_persistence_roundtrip(self, scenario, tmp_path):
        path = tmp_path / "fleet.store"
        scenario["store"].save(path)
        reloaded = TrajectoryStore.load(path)
        assert reloaded.object_ids() == scenario["store"].object_ids()
        for object_id in reloaded.object_ids():
            assert reloaded.get(object_id) == scenario["store"].get(object_id)
            assert reloaded.record(object_id).sync_error_bound_m == pytest.approx(
                scenario["records"][object_id].sync_error_bound_m
            )

    def test_queries_against_ground_truth(self, scenario):
        store = scenario["store"]
        for object_id, cleaned in scenario["clean"].items():
            mid_time = (cleaned.start_time + cleaned.end_time) / 2.0
            truth = cleaned.position_at(mid_time)
            answer = store.position_at(object_id, mid_time)
            assert float(np.hypot(*(truth - answer))) <= EPSILON + 0.2
            box = BBox(truth[0] - 80, truth[1] - 80, truth[0] + 80, truth[1] + 80)
            assert object_id in store.query_bbox(box, mode="possibly")

    def test_nearest_at_time(self, scenario):
        store = scenario["store"]
        some_id = sorted(scenario["clean"])[0]
        traj = scenario["clean"][some_id]
        when = (traj.start_time + traj.end_time) / 2.0
        position = traj.position_at(when)
        hits = store.nearest(float(position[0]), float(position[1]), when, k=1)
        assert hits[0][0] == some_id
        assert hits[0][1] <= EPSILON + 0.2

    def test_analyses_run_on_stored_data(self, scenario):
        store = scenario["store"]
        stored = [store.get(object_id) for object_id in store.object_ids()]
        profile = speed_over_time(stored, bin_seconds=120.0)
        assert np.nanmax(profile.mean_speed_ms) > 1.0
        result = cluster_trajectories(
            stored, max_distance=1_000.0, metric=hausdorff_distance
        )
        assert 1 <= result.n_clusters <= FLEET
