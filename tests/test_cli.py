"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.trajectory import read_csv, read_json, write_csv


@pytest.fixture
def trip_csv(tmp_path, zigzag):
    path = tmp_path / "trip.csv"
    write_csv(zigzag, path)
    return path


class TestStats:
    def test_prints_statistics(self, trip_csv, capsys):
        assert main(["stats", str(trip_csv)]) == 0
        out = capsys.readouterr().out
        assert "points" in out
        assert "19" in out
        assert "mean speed" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.csv")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unsupported_format(self, tmp_path, capsys):
        bad = tmp_path / "trip.xlsx"
        bad.write_text("whatever")
        assert main(["stats", str(bad)]) == 2
        assert "unsupported" in capsys.readouterr().err


class TestCompress:
    def test_epsilon_algorithm_roundtrip(self, trip_csv, tmp_path, capsys):
        out = tmp_path / "small.csv"
        code = main(
            ["compress", str(trip_csv), "-a", "td-tr", "-e", "30", "-o", str(out)]
        )
        assert code == 0
        compressed = read_csv(out)
        original = read_csv(trip_csv)
        assert 2 <= len(compressed) < len(original)
        text = capsys.readouterr().out
        assert "mean sync error" in text

    def test_json_output(self, trip_csv, tmp_path):
        out = tmp_path / "small.json"
        main(["compress", str(trip_csv), "-a", "ndp", "-e", "30", "-o", str(out)])
        assert json.loads(out.read_text())["points"]
        assert read_json(out).object_id

    def test_sp_algorithm_needs_speed(self, trip_csv, capsys):
        assert main(["compress", str(trip_csv), "-a", "opw-sp", "-e", "30"]) == 2
        assert "--speed" in capsys.readouterr().err

    def test_sp_algorithm_with_speed(self, trip_csv):
        assert (
            main(["compress", str(trip_csv), "-a", "opw-sp", "-e", "30", "--speed", "5"])
            == 0
        )

    def test_every_ith_needs_step(self, trip_csv, capsys):
        assert main(["compress", str(trip_csv), "-a", "every-ith"]) == 2
        assert "--step" in capsys.readouterr().err

    def test_budget_algorithm(self, trip_csv, tmp_path):
        out = tmp_path / "b.csv"
        code = main(
            ["compress", str(trip_csv), "-a", "td-tr-budget", "--budget", "5",
             "-o", str(out)]
        )
        assert code == 0
        assert len(read_csv(out)) == 5

    def test_angular_algorithm(self, trip_csv):
        assert main(["compress", str(trip_csv), "-a", "angular", "--angle", "0.5"]) == 0

    def test_total_error_budget(self, trip_csv):
        assert (
            main(["compress", str(trip_csv), "-a", "bottom-up-total-error", "-e", "10"])
            == 0
        )

    def test_missing_epsilon(self, trip_csv, capsys):
        assert main(["compress", str(trip_csv), "-a", "td-tr"]) == 2
        assert "--epsilon" in capsys.readouterr().err


class TestReport:
    def test_report_output(self, trip_csv, capsys):
        assert main(["report", str(trip_csv), "-a", "td-tr", "-e", "30"]) == 0
        out = capsys.readouterr().out
        assert "algorithm: td-tr" in out
        assert "percentiles" in out
        assert "worst moment" in out

    def test_report_needs_params(self, trip_csv, capsys):
        assert main(["report", str(trip_csv), "-a", "opw-sp", "-e", "30"]) == 2
        assert "--speed" in capsys.readouterr().err


class TestGenerate:
    def test_writes_trajectory(self, tmp_path, capsys):
        out = tmp_path / "gen.csv"
        code = main(
            ["generate", "--profile", "urban", "--seed", "4", "--length-km", "5",
             "-o", str(out)]
        )
        assert code == 0
        traj = read_csv(out)
        assert len(traj) > 10
        assert "fixes" in capsys.readouterr().out

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        for out in (a, b):
            main(["generate", "--seed", "9", "--length-km", "4", "-o", str(out)])
        assert a.read_text() == b.read_text()


class TestDataset:
    def test_writes_ten_files(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        assert main(["dataset", str(out_dir)]) == 0
        files = sorted(out_dir.glob("*.csv"))
        assert len(files) == 10
        assert "10 trajectories" in capsys.readouterr().out


class TestFigures:
    def test_quick_figure(self, capsys):
        assert main(["figures", "fig07", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out
        assert "td-tr" in out
        assert "ndp" in out

    def test_quick_figure_with_chart(self, capsys):
        assert main(["figures", "fig07", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "vs threshold" in out
        assert "a = " in out  # chart legend

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "40.85" in out  # the paper's speed mean

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])


class TestCluster:
    @pytest.fixture
    def fleet_dir(self, tmp_path):
        import numpy as np

        from repro.trajectory import Trajectory, write_csv

        t = np.arange(0.0, 100.0, 10.0)
        for name, dy in (("a1", 0.0), ("a2", 12.0), ("b1", 900.0)):
            traj = Trajectory(
                t, np.column_stack([t * 10.0, np.full_like(t, dy)]), name
            )
            write_csv(traj, tmp_path / f"{name}.csv")
        return tmp_path

    def test_cluster_directory_by_route(self, fleet_dir, capsys):
        assert main(["cluster", str(fleet_dir), "--clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 clusters" in out
        assert "a1, a2" in out

    def test_cluster_with_max_distance(self, fleet_dir, capsys):
        assert main(["cluster", str(fleet_dir), "--max-distance", "50"]) == 0
        assert "2 clusters" in capsys.readouterr().out

    def test_cluster_synchronized_metric(self, fleet_dir, capsys):
        assert (
            main(["cluster", str(fleet_dir), "--metric", "synchronized",
                  "--clusters", "2"])
            == 0
        )
        assert "synchronized" in capsys.readouterr().out

    def test_cluster_needs_two_files(self, fleet_dir, capsys):
        only = fleet_dir / "a1.csv"
        assert main(["cluster", str(only), "--clusters", "1"]) == 2
        assert "at least two" in capsys.readouterr().err

    def test_cluster_requires_stop_criterion(self, fleet_dir):
        with pytest.raises(SystemExit):
            main(["cluster", str(fleet_dir)])


class TestFlow:
    def test_flow_over_directory(self, tmp_path, capsys):
        import numpy as np

        from repro.trajectory import Trajectory, write_csv

        t = np.arange(0.0, 100.0, 10.0)
        for name, dy in (("a", 0.0), ("b", 10.0)):
            write_csv(
                Trajectory(t, np.column_stack([t * 10.0, np.full_like(t, dy)]), name),
                tmp_path / f"{name}.csv",
            )
        assert main(["flow", str(tmp_path), "--bin-seconds", "50"]) == 0
        out = capsys.readouterr().out
        assert "fleet speed profile" in out
        assert "busiest" in out
        assert "origin-destination" in out

    def test_flow_no_inputs(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["flow", str(empty)]) == 2
        assert "no trajectory files" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0

    def test_version_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestCleanExit:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys, trip_csv):
        # Ctrl-C inside any subcommand must exit with the POSIX code for
        # SIGINT and no traceback on stdout.
        from repro import cli

        def interrupted(args):
            raise KeyboardInterrupt

        parser = cli.build_parser()
        monkeypatch.setattr(
            cli, "build_parser", lambda: _with_func(parser, interrupted)
        )
        assert cli.main(["stats", str(trip_csv)]) == 130
        assert "Traceback" not in capsys.readouterr().out

    def test_broken_pipe_exits_zero(self, monkeypatch, trip_csv):
        from repro import cli

        def piped(args):
            raise BrokenPipeError

        parser = cli.build_parser()
        monkeypatch.setattr(cli, "build_parser", lambda: _with_func(parser, piped))
        assert cli.main(["stats", str(trip_csv)]) == 0


def _with_func(parser, func):
    """Rebind every subcommand of a built parser to ``func``."""
    class _Shim:
        def parse_args(self, argv):
            args = parser.parse_args(argv)
            args.func = func
            return args

    return _Shim()


class TestServeBenchCommand:
    @pytest.mark.serve
    def test_smoke_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main([
            "serve-bench", "--sessions", "4", "--fixes", "30",
            "--rejects", "1", "--batch", "5", "-o", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["results"]["equivalence"] == "batch-identical"
        assert report["results"]["rejected_sessions"] == 1
        text = capsys.readouterr().out
        assert "batch-identical" in text
        assert "p50" in text


class TestPipeline:
    @pytest.fixture
    def fleet_dir(self, tmp_path, zigzag, straight_line):
        fleet = tmp_path / "fleet"
        fleet.mkdir()
        write_csv(zigzag, fleet / "zigzag.csv")
        write_csv(straight_line, fleet / "straight.csv")
        return fleet

    def test_smoke(self, fleet_dir, capsys):
        assert main(["pipeline", str(fleet_dir), "-s", "td-tr:epsilon=30"]) == 0
        out = capsys.readouterr().out
        assert "pipeline: td-tr" in out
        assert "zigzag" in out and "straight" in out
        assert "2/2 items ok" in out

    def test_metrics_json_export(self, fleet_dir, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(
            ["pipeline", str(fleet_dir), "-s", "td-tr:epsilon=30",
             "--metrics-json", str(metrics)]
        )
        assert code == 0
        data = json.loads(metrics.read_text())
        assert data["engine"]["compressor"] == "td-tr:epsilon=30"
        assert data["run"]["n_ok"] == 2
        assert data["run"]["n_failed"] == 0
        assert data["metrics"]["counters"]["items_ok"] == 2
        assert data["failures"] == []

    def test_output_dir_writes_compressed_files(self, fleet_dir, tmp_path):
        out_dir = tmp_path / "out"
        code = main(
            ["pipeline", str(fleet_dir), "-s", "td-tr:epsilon=30",
             "-o", str(out_dir)]
        )
        assert code == 0
        compressed = read_csv(out_dir / "straight.csv")
        assert len(compressed) == 2  # a straight line compresses to its ends

    def test_skip_policy_survives_corrupt_file(self, fleet_dir, tmp_path, capsys):
        (fleet_dir / "corrupt.csv").write_text("t,x,y\nnot,a,number\n")
        metrics = tmp_path / "metrics.json"
        code = main(
            ["pipeline", str(fleet_dir), "--on-error", "skip",
             "--metrics-json", str(metrics)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "failed: corrupt" in captured.err
        data = json.loads(metrics.read_text())
        assert data["run"]["n_failed"] == 1
        assert [f["item_id"] for f in data["failures"]] == ["corrupt"]

    def test_parallel_workers(self, fleet_dir, capsys):
        assert main(["pipeline", str(fleet_dir), "-w", "2"]) == 0
        assert "2/2 items ok" in capsys.readouterr().out

    def test_invalid_spec_exits_2(self, fleet_dir, capsys):
        assert main(["pipeline", str(fleet_dir), "-s", "td-tr:oops"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_unknown_algorithm_exits_2(self, fleet_dir, capsys):
        assert main(["pipeline", str(fleet_dir), "-s", "nope:epsilon=1"]) == 2

    def test_no_inputs(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["pipeline", str(empty)]) == 2
        assert "no trajectory files" in capsys.readouterr().err


class TestSpecStrings:
    def test_compress_accepts_spec_algorithm(self, trip_csv, tmp_path):
        out = tmp_path / "out.csv"
        code = main(
            ["compress", str(trip_csv), "-a", "td-tr:epsilon=40", "-o", str(out)]
        )
        assert code == 0
        assert len(read_csv(out)) >= 2

    def test_report_accepts_spec_algorithm(self, trip_csv, capsys):
        code = main(
            ["report", str(trip_csv), "-a", "opw-sp:epsilon=30,speed=5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm: opw-sp" in out
        assert "synchronized" in out

    def test_malformed_spec_exits_2(self, trip_csv, capsys):
        assert main(["compress", str(trip_csv), "-a", "td-tr:=30"]) == 2


class TestFlowWorkers:
    def test_flow_skips_corrupt_file(self, tmp_path, capsys, zigzag):
        write_csv(zigzag, tmp_path / "good.csv")
        (tmp_path / "bad.csv").write_text("garbage")
        code = main(
            ["flow", str(tmp_path), "--on-error", "skip", "--bin-seconds", "50"]
        )
        assert code == 0
        assert "skipped bad" in capsys.readouterr().err

    def test_table2_workers_match_serial(self, capsys):
        assert main(["table2"]) == 0
        serial = capsys.readouterr().out
        assert main(["table2", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestServeArgumentValidation:
    """Bad serve flags die at the parser with a usage line, not deep in
    the server constructor with a traceback."""

    @pytest.mark.parametrize("flag,value", [
        ("--queue-size", "0"),
        ("--queue-size", "-3"),
        ("--queue-size", "ten"),
        ("--max-sessions", "0"),
        ("--idle-timeout", "0"),
        ("--idle-timeout", "-1.5"),
        ("--idle-timeout", "inf"),
        ("--idle-timeout", "nan"),
        ("--sweep-interval", "0"),
        ("--sweep-interval", "oops"),
    ])
    def test_invalid_values_are_usage_errors(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", flag, value])
        assert exit_info.value.code == 2
        assert flag in capsys.readouterr().err

    def test_valid_values_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--queue-size", "8", "--idle-timeout", "0.5",
            "--sweep-interval", "2", "--wal", "/tmp/wal",
        ])
        assert args.queue_size == 8
        assert args.idle_timeout == 0.5
        assert args.sweep_interval == 2.0
        assert args.wal == "/tmp/wal"

    def test_serve_chaos_fast_scenario_list(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve-chaos", "--fast", "--scenario", "torn-tail"]
        )
        assert args.fast is True
        assert args.scenario == ["torn-tail"]
