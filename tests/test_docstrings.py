"""Every public item carries a docstring (deliverable: documented API)."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules() -> list[str]:
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in module.name:
            continue
        names.append(module.name)
    return sorted(names)


@pytest.mark.parametrize("name", _public_modules())
def test_module_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


def _public_members(module):
    exported = getattr(module, "__all__", None)
    if exported is None:
        return []
    out = []
    for symbol in exported:
        obj = getattr(module, symbol)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if obj.__module__ == module.__name__:  # defined here, not re-exported
                out.append((symbol, obj))
    return out


@pytest.mark.parametrize("name", _public_modules())
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for symbol, obj in _public_members(module):
        assert obj.__doc__ and obj.__doc__.strip(), f"{name}.{symbol} lacks a docstring"
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr):
                    # getdoc() inherits documentation from base classes,
                    # so a documented ABC method covers its overrides.
                    doc = inspect.getdoc(getattr(obj, attr_name))
                    assert doc and doc.strip(), (
                        f"{name}.{symbol}.{attr_name} lacks a docstring"
                    )
