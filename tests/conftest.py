"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import signal

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.datagen import TrajectoryGenerator, URBAN
from repro.trajectory import Trajectory

#: Hard wall-clock ceiling for each ``serve``-marked test. The serving
#: tests drive real sockets and an event loop; a protocol bug tends to
#: show up as a hang (reader waiting on a response that never comes),
#: so a deadline beats a green-but-stuck suite.
SERVE_TEST_TIMEOUT_S = 30.0


@pytest.fixture(autouse=True)
def _serve_deadline(request: pytest.FixtureRequest):
    """SIGALRM watchdog for ``serve``-marked tests (no pytest-timeout here)."""
    if request.node.get_closest_marker("serve") is None:
        yield
        return
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - POSIX-only guard
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"serve test exceeded {SERVE_TEST_TIMEOUT_S:g}s wall-clock deadline"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, SERVE_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden regression expectations in tests/data/golden/ "
             "instead of asserting against them",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should regenerate golden files, not check them."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture
def zigzag() -> Trajectory:
    """A small deterministic trajectory with turns, stops and speed-ups.

    Nineteen points (like the paper's Fig. 1 series): a fast eastward
    run, a sharp northward turn, a stop, and a diagonal sprint.
    """
    points = [
        (0.0, 0.0, 0.0),
        (10.0, 120.0, 5.0),
        (20.0, 240.0, -4.0),
        (30.0, 355.0, 3.0),
        (40.0, 470.0, 0.0),
        (50.0, 480.0, 90.0),  # sharp left turn, slowing
        (60.0, 485.0, 180.0),
        (70.0, 488.0, 260.0),
        (80.0, 489.0, 262.0),  # stopping
        (90.0, 489.5, 262.5),  # stopped
        (100.0, 489.8, 262.8),
        (110.0, 495.0, 270.0),  # moving off
        (120.0, 540.0, 330.0),
        (130.0, 610.0, 400.0),
        (140.0, 690.0, 470.0),
        (150.0, 780.0, 545.0),
        (160.0, 870.0, 620.0),
        (170.0, 965.0, 700.0),
        (180.0, 1060.0, 775.0),
    ]
    return Trajectory.from_points(points, object_id="zigzag")


@pytest.fixture
def straight_line() -> Trajectory:
    """Points exactly on a constant-velocity line: fully compressible."""
    t = np.arange(0.0, 110.0, 10.0)
    xy = np.column_stack([t * 12.0, t * 5.0])
    return Trajectory(t, xy, object_id="straight")


@pytest.fixture(scope="session")
def urban_trajectory() -> Trajectory:
    """One realistic synthetic urban trip (deterministic)."""
    return TrajectoryGenerator(seed=11).generate(URBAN, object_id="urban-11")


@pytest.fixture(scope="session")
def small_dataset() -> list[Trajectory]:
    """Three small realistic trips for integration tests (fast)."""
    generator = TrajectoryGenerator(seed=5)
    short_urban = URBAN.with_length(4_000.0)
    return [
        generator.generate(short_urban, object_id=f"mini-{i}") for i in range(3)
    ]


# --------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------- #


@st.composite
def trajectories(
    draw: st.DrawFn,
    min_points: int = 2,
    max_points: int = 40,
    coord_range: float = 2_000.0,
) -> Trajectory:
    """Random valid trajectories: increasing times, bounded coordinates."""
    n = draw(st.integers(min_points, max_points))
    gaps = draw(
        st.lists(
            st.floats(0.5, 60.0, allow_nan=False, allow_infinity=False),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    start = draw(st.floats(-1e5, 1e5, allow_nan=False, allow_infinity=False))
    t = np.concatenate([[start], start + np.cumsum(gaps)]) if n > 1 else np.array([start])
    coords = draw(
        st.lists(
            st.tuples(
                st.floats(-coord_range, coord_range, allow_nan=False),
                st.floats(-coord_range, coord_range, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        )
    )
    return Trajectory(t, np.asarray(coords, dtype=float))


@st.composite
def vectors2(draw: st.DrawFn, magnitude: float = 1_000.0) -> np.ndarray:
    """Random finite 2-vectors."""
    x = draw(st.floats(-magnitude, magnitude, allow_nan=False))
    y = draw(st.floats(-magnitude, magnitude, allow_nan=False))
    return np.array([x, y])
