"""pytest-facing surface of the fault-injection harness.

The scenarios themselves live in :mod:`repro.serve.chaos` so the
``repro serve-chaos`` CLI entrypoint can run them without importing the
test tree; this module re-exports them for the test suite and holds the
pytest-specific glue (which scenarios are subprocess-heavy and belong
behind the ``slow`` marker).

Run them all: ``pytest -m chaos`` (add ``-m "chaos or slow"`` semantics
via ``-m "chaos" --override-ini addopts=''`` to include ``sigkill``, or
use ``repro serve-chaos``).
"""

from __future__ import annotations

from repro.serve.chaos import (
    SCENARIOS,
    ScenarioResult,
    make_fixes,
    reference_selection,
    run_chaos,
    run_scenario,
)

__all__ = [
    "SCENARIOS",
    "FAST_SCENARIOS",
    "SLOW_SCENARIOS",
    "ScenarioResult",
    "make_fixes",
    "reference_selection",
    "run_chaos",
    "run_scenario",
]

#: Scenarios that spawn real server subprocesses (``slow``-marked):
#: ``sigkill`` murders a single-process server, ``worker-kill`` murders
#: one shard of a router-fronted worker fleet.
SLOW_SCENARIOS = ("sigkill", "worker-kill")

#: In-process scenarios: fast enough for every CI run.
FAST_SCENARIOS = tuple(
    name for name in SCENARIOS if name not in SLOW_SCENARIOS
)
