"""HashRing and WorkerPool unit tests (no sockets, no subprocesses).

The Hypothesis suite proves the two properties the sharded tier leans
on: every object id routes to exactly one live worker, and a membership
change (worker added or removed) only remaps keys on the changed
worker's arcs — everything else keeps its shard, which is what lets one
worker recover its WAL while the rest of the fleet serves untouched.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ServeError
from repro.serve.pool import (
    DEFAULT_REPLICAS,
    HashRing,
    WorkerPool,
    partition_path,
)

#: Small replica count keeps each Hypothesis example cheap; the
#: properties under test are replica-count-independent.
RING_REPLICAS = 16

node_sets = st.lists(
    st.sampled_from([f"worker-{i}" for i in range(8)]),
    min_size=1, max_size=8, unique=True,
)
key_sets = st.lists(
    st.text(min_size=1, max_size=24), min_size=1, max_size=100, unique=True
)


class TestRingProperties:
    @settings(deadline=None)
    @given(nodes=node_sets, keys=key_sets)
    def test_every_key_routes_to_exactly_one_live_node(self, nodes, keys):
        ring = HashRing(nodes, replicas=RING_REPLICAS)
        for key in keys:
            owner = ring.node_for(key)
            assert owner in ring.nodes
            # Deterministic: the same key never flaps between owners.
            assert ring.node_for(key) == owner

    @settings(deadline=None)
    @given(nodes=node_sets.filter(lambda ns: len(ns) >= 2), keys=key_sets)
    def test_removal_only_remaps_the_victims_keys(self, nodes, keys):
        ring = HashRing(nodes, replicas=RING_REPLICAS)
        before = {key: ring.node_for(key) for key in keys}
        victim = nodes[0]
        ring.remove(victim)
        for key in keys:
            if before[key] == victim:
                assert ring.node_for(key) != victim
            else:
                # The load-bearing property: survivors keep every key.
                assert ring.node_for(key) == before[key]

    @settings(deadline=None)
    @given(nodes=node_sets.filter(lambda ns: "newcomer" not in ns),
           keys=key_sets)
    def test_addition_only_steals_keys_for_the_new_node(self, nodes, keys):
        ring = HashRing(nodes, replicas=RING_REPLICAS)
        before = {key: ring.node_for(key) for key in keys}
        ring.add("newcomer")
        for key in keys:
            after = ring.node_for(key)
            assert after == before[key] or after == "newcomer"

    @settings(deadline=None)
    @given(nodes=node_sets, keys=key_sets)
    def test_add_then_remove_round_trips_the_mapping(self, nodes, keys):
        ring = HashRing(nodes, replicas=RING_REPLICAS)
        before = {key: ring.node_for(key) for key in keys}
        ring.add("transient")
        ring.remove("transient")
        assert {key: ring.node_for(key) for key in keys} == before

    @settings(deadline=None)
    @given(nodes=node_sets, keys=key_sets, seed=st.randoms())
    def test_mapping_independent_of_insertion_order(self, nodes, keys, seed):
        shuffled = list(nodes)
        seed.shuffle(shuffled)
        one = HashRing(nodes, replicas=RING_REPLICAS)
        two = HashRing(shuffled, replicas=RING_REPLICAS)
        for key in keys:
            assert one.node_for(key) == two.node_for(key)


class TestRingEdges:
    def test_empty_ring_raises_unavailable(self):
        ring = HashRing()
        with pytest.raises(ServeError) as err:
            ring.node_for("anything")
        assert err.value.code == "unavailable"

    def test_duplicate_and_unknown_nodes_refuse(self):
        ring = HashRing(["worker-0"])
        with pytest.raises(ValueError):
            ring.add("worker-0")
        with pytest.raises(ValueError):
            ring.remove("ghost")
        with pytest.raises(ValueError):
            ring.add("")

    def test_bad_replica_count_refuses(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_default_replicas_balance_within_reason(self):
        """10k synthetic object ids across 4 workers: no shard may hold
        less than 15% or more than 35% of the keys (even split = 25%)."""
        ring = HashRing([f"worker-{i}" for i in range(4)],
                        replicas=DEFAULT_REPLICAS)
        counts = {name: 0 for name in ring.nodes}
        n = 10_000
        for i in range(n):
            counts[ring.node_for(f"obj-{i}")] += 1
        assert sum(counts.values()) == n
        for name, count in counts.items():
            assert 0.15 <= count / n <= 0.35, (name, counts)


class TestPartitionPath:
    def test_partition_sits_next_to_the_merged_file(self, tmp_path):
        merged = tmp_path / "fleet.rsto"
        part = partition_path(merged, "worker-2")
        assert part == tmp_path / "fleet.rsto.worker-2"
        assert part.parent == merged.parent

    def test_accepts_strings(self):
        assert partition_path("fleet.rsto", "worker-0") == \
            Path("fleet.rsto.worker-0")


class TestWorkerPoolLayout:
    """Construction-time invariants — nothing is spawned here."""

    def test_shared_nothing_layout(self, tmp_path):
        pool = WorkerPool(
            3, wal_dir=tmp_path / "wal", store_path=tmp_path / "fleet.rsto"
        )
        assert pool.worker_names == ["worker-0", "worker-1", "worker-2"]
        wal_dirs = {h.wal_dir for h in pool.handles}
        stores = {h.store_path for h in pool.handles}
        assert len(wal_dirs) == 3 and len(stores) == 3  # fully disjoint
        for handle in pool.handles:
            assert handle.wal_dir == tmp_path / "wal" / handle.name
            assert handle.store_path == partition_path(
                tmp_path / "fleet.rsto", handle.name
            )
            assert not handle.alive
            assert not handle.ready.is_set()

    def test_handle_for_agrees_with_the_ring(self, tmp_path):
        pool = WorkerPool(4)
        for i in range(200):
            sid = f"obj-{i}"
            assert pool.handle_for(sid).name == pool.ring.node_for(sid)

    def test_zero_workers_refuses(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
