"""Socket-level tests of the ingestion server: one real TCP round trip
per request against a live :class:`TrajectoryServer`.

The headline guarantee is E2E equivalence — fixes streamed through the
wire produce exactly the batch algorithm's selection — plus the service
behaviours a unit test can't see: global sessions across reconnects,
protocol error responses, pipelined backpressure, persistence and
restart-resume, and the background idle sweeper.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.registry import make_compressor
from repro.exceptions import ServeError
from repro.serve.protocol import MAX_LINE_BYTES, encode_message
from repro.storage.store import TrajectoryStore
from repro.types import Fix

from tests.serve.harness import (
    connected,
    fixes_of,
    run_async,
    running_server,
    stream_session,
)

pytestmark = pytest.mark.serve


class TestEndToEndEquivalence:
    @pytest.mark.parametrize(
        "spec",
        [
            "opw-tr:epsilon=35",
            "opw-sp:epsilon=35,max_speed_error=4",
            "nopw:epsilon=35",
        ],
    )
    def test_served_stream_matches_batch(self, urban_trajectory, spec):
        fixes = fixes_of(urban_trajectory)

        async def scenario():
            async with running_server() as server:
                return await stream_session(
                    server, "urban", spec, fixes, chunk=25
                )

        retained = run_async(scenario())
        indices = make_compressor(spec).compress(urban_trajectory).indices
        expected = [fixes[i] for i in indices]
        # Identical fixes, identical order — JSON floats round-trip exactly.
        assert retained == expected

    def test_session_survives_reconnect(self, zigzag):
        fixes = fixes_of(zigzag)
        half = len(fixes) // 2

        async def scenario():
            async with running_server() as server:
                retained = []
                async with connected(server) as first:
                    await first.open("z", "opw-tr:epsilon=30")
                    retained.extend(await first.append("z", fixes[:half]))
                # The connection is gone; the session is not.
                async with connected(server) as second:
                    retained.extend(await second.append("z", fixes[half:]))
                    summary = await second.close_session("z")
                retained.extend(summary["retained"])
                return retained

        retained = run_async(scenario())
        indices = make_compressor("opw-tr:epsilon=30").compress(zigzag).indices
        assert retained == [fixes[i] for i in indices]


class TestProtocolErrors:
    def test_error_codes_over_the_wire(self, zigzag):
        async def scenario():
            codes = {}
            async with running_server(max_sessions=1) as server:
                async with connected(server) as client:
                    await client.open("a", "opw-tr:epsilon=30")
                    with pytest.raises(ServeError) as err:
                        await client.open("a", "opw-tr:epsilon=30")
                    codes["duplicate"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.open("b", "opw-tr:epsilon=30")
                    codes["rejected"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.append("ghost", [Fix(0.0, 0.0, 0.0)])
                    codes["unknown"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.request(
                            {"op": "append", "session": "a",
                             "fixes": [[0.0, 0.0]]}
                        )
                    codes["bad-fix"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.request({"op": "warp", "session": "a"})
                    codes["unknown-op"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.open("", "opw-tr:epsilon=30")
                    codes["bad-id"] = err.value.code
            return codes

        codes = run_async(scenario())
        assert codes == {
            "duplicate": "duplicate-session",
            "rejected": "rejected",
            "unknown": "unknown-session",
            "bad-fix": "bad-fix",
            "unknown-op": "bad-request",
            "bad-id": "bad-request",
        }

    def test_bad_json_line(self):
        async def scenario():
            async with running_server() as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"{this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return response

        response = run_async(scenario())
        assert response["ok"] is False
        assert response["code"] == "bad-json"

    def test_out_of_order_reports_partial_retained(self):
        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("s", "opw-tr:epsilon=10")
                    # Third fix rewinds time: the response must carry the
                    # error AND whatever the first two already decided.
                    response_error = None
                    try:
                        await client.request({
                            "op": "append", "session": "s",
                            "fixes": [[0.0, 0.0, 0.0], [1.0, 5.0, 0.0],
                                      [0.5, 9.0, 0.0]],
                        })
                    except ServeError as exc:
                        response_error = exc
                    # The two good fixes landed; the session still works.
                    retained = await client.append("s", [Fix(2.0, 10.0, 0.0)])
                    summary = await client.close_session("s")
                    return response_error, retained, summary

        error, _, summary = run_async(scenario())
        assert error is not None and error.code == "out-of-order"
        assert summary["stored"]["n_raw_points"] == 3  # bad fix not counted

    def test_oversized_line_is_refused(self):
        async def scenario():
            async with running_server() as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port, limit=MAX_LINE_BYTES
                )
                writer.write(b"x" * (MAX_LINE_BYTES + 100) + b"\n")
                await writer.drain()
                line = await reader.readline()
                response = json.loads(line) if line else None
                eof = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return response, eof

        response, eof = run_async(scenario())
        assert response is not None and response["ok"] is False
        assert response["code"] == "bad-request"
        assert eof == b""  # the server hung up: the stream lost line sync


class TestBackpressure:
    def test_pipelined_requests_all_answered_in_order(self, zigzag):
        """queue_size=1 forces the reader to block on every queued line;
        TCP flow control, not buffering, absorbs a pipelining client."""
        fixes = fixes_of(zigzag)

        async def scenario():
            async with running_server(queue_size=1) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port, limit=MAX_LINE_BYTES
                )
                writer.write(encode_message(
                    {"op": "open", "session": "p", "spec": "opw-tr:epsilon=30"}
                ))
                for fix in fixes:
                    writer.write(encode_message(
                        {"op": "append", "session": "p",
                         "fix": [fix.t, fix.x, fix.y]}
                    ))
                writer.write(encode_message({"op": "close", "session": "p"}))
                await writer.drain()
                responses = [
                    json.loads(await reader.readline())
                    for _ in range(len(fixes) + 2)
                ]
                writer.close()
                await writer.wait_closed()
                return responses

        responses = run_async(scenario())
        assert all(r["ok"] for r in responses)
        assert responses[0]["op"] == "open"
        assert responses[-1]["op"] == "close"
        retained = [
            Fix(*triple)
            for r in responses[1:]
            for triple in r.get("retained", [])
        ]
        indices = make_compressor("opw-tr:epsilon=30").compress(zigzag).indices
        assert retained == [fixes[i] for i in indices]


class TestPersistenceAndStats:
    def test_store_file_round_trip_and_restart_resume(self, zigzag, tmp_path):
        store_path = tmp_path / "fleet.rsto"
        fixes = fixes_of(zigzag)

        async def first_run():
            async with running_server(
                store_path=store_path, durable=False
            ) as server:
                await stream_session(
                    server, "z", "opw-tr:epsilon=30", fixes, chunk=5
                )

        async def second_run():
            async with running_server(
                store_path=store_path, durable=False
            ) as server:
                async with connected(server) as client:
                    flush = await client.flush()
                    stats = await client.stats()
            return flush, stats

        run_async(first_run())
        indices = make_compressor("opw-tr:epsilon=30").compress(zigzag).indices
        stored = TrajectoryStore.load(store_path).get("z")
        assert list(stored.t) == [fixes[i].t for i in indices]

        flush, stats = run_async(second_run())  # restart resumes the data
        assert flush["path"] == str(store_path)
        assert flush["n_objects"] == 1
        assert stats["stored_objects"] == 1

    def test_stats_verb_reports_every_lifecycle_counter(self, zigzag):
        """Drive opens, a rejection, an eviction and a flush, then check
        each shows up in the ``stats`` payload."""
        fixes = fixes_of(zigzag)

        async def scenario():
            async with running_server(
                max_sessions=2, idle_timeout_s=0.05, sweep_interval_s=0.02
            ) as server:
                async with connected(server) as client:
                    await client.open("kept", "opw-tr:epsilon=30")
                    await client.open("idle", "opw-tr:epsilon=30")
                    await client.append("idle", fixes[:4])
                    with pytest.raises(ServeError) as err:
                        await client.open("extra", "opw-tr:epsilon=30")
                    assert err.value.code == "rejected"
                    live_before = (await client.stats())["live_sessions"]
                    # Only "idle" has data; keep "kept" warm while the
                    # sweeper takes the idle one.
                    for round_no in range(10):
                        await client.append(
                            "kept", [Fix(float(round_no), 0.0, 0.0)]
                        )
                        await asyncio.sleep(0.03)
                        if "idle" not in server.manager:
                            break
                    await client.append("kept", fixes[-2:])  # later timestamps
                    await client.close_session("kept")
                    stats = await client.stats()
                return live_before, stats

        live_before, stats = run_async(scenario())
        assert live_before == 2
        assert stats["live_sessions"] == 0
        assert stats["sessions_opened"] == 2
        assert stats["sessions_rejected"] == 1
        assert stats["sessions_evicted"] == 1
        assert stats["sessions_flushed"] == 2  # the evicted one + the close
        assert stats["stored_objects"] == 2
        assert stats["protocol_version"] == 3
        assert stats["connections_opened"] >= 1
        assert stats["uptime_s"] >= 0.0
        assert stats["append_latency_ms"]["count"] > 0


class TestStatsObservability:
    def test_stats_carries_the_live_metrics_registry(self, zigzag, tmp_path):
        """STATS now exposes the full obs registry: counters, gauges,
        timers and histograms — including storage flush metrics — and
        the payload renders as Prometheus text."""
        from repro.obs import render_prometheus

        fixes = fixes_of(zigzag)
        store_path = tmp_path / "obs.rsto"

        async def scenario():
            async with running_server(
                store_path=store_path, durable=False
            ) as server:
                await stream_session(
                    server, "obj-a", "opw-tr:epsilon=30", fixes, chunk=5
                )
                async with connected(server) as client:
                    return await client.stats()

        stats = run_async(scenario())
        metrics = stats["metrics"]
        assert set(metrics) == {"counters", "gauges", "timers", "histograms"}
        assert metrics["counters"]["fixes_in"] == len(fixes)
        assert metrics["counters"]["sessions_flushed"] == 1
        assert metrics["counters"]["fixes_flushed"] > 0
        assert metrics["counters"]["flushed_bytes"] > 0
        # The server's registry is threaded into its TrajectoryStore.
        assert metrics["counters"]["store_saves"] >= 1
        assert metrics["counters"]["store_saved_bytes"] > 0
        assert metrics["timers"]["flush_s"]["count"] == 1
        hist = metrics["histograms"]["append_latency_ms"]
        assert hist["count"] == stats["append_latency_ms"]["count"]
        assert sum(b["count"] for b in hist["buckets"]) + hist["overflow"] \
            == hist["count"]
        # Idle server: every queued line was consumed.
        assert stats["queue_depth"] == 0.0
        text = render_prometheus(metrics)
        assert "repro_fixes_in_total" in text
        assert 'repro_append_latency_ms_bucket{le="+Inf"}' in text

    def test_queue_depth_gauge_returns_to_zero_after_bursts(self, zigzag):
        fixes = fixes_of(zigzag)

        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("burst", "opw-tr:epsilon=30")
                    for start in range(0, len(fixes), 3):
                        await client.append("burst", fixes[start:start + 3])
                    return await client.stats()

        stats = run_async(scenario())
        assert stats["queue_depth"] == 0.0
        assert stats["metrics"]["gauges"]["queue_depth"] == 0.0


class TestMidBatchDisconnect:
    def test_socket_death_between_frames_keeps_the_applied_prefix(self):
        """A connection dying mid-stream loses frames, never applied state.

        The client fires one complete append frame plus the first half
        of a second (no newline) and drops the socket. The complete
        frame must be applied; the torn frame must vanish without
        desynchronising the session, and a reconnect resumes exactly
        after the applied prefix.
        """
        from repro.serve.protocol import encode_message

        fixes = [Fix(float(i), float(i * 3 % 7), 0.0) for i in range(20)]

        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("s", "opw-tr:epsilon=10")
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                whole = encode_message({
                    "op": "append", "session": "s", "seq": 1,
                    "fixes_flat": [v for f in fixes[:10] for v in f],
                })
                torn = encode_message({
                    "op": "append", "session": "s", "seq": 2,
                    "fixes_flat": [v for f in fixes[10:] for v in f],
                })
                writer.write(whole + torn[: len(torn) // 2])  # no newline
                await writer.drain()
                # The complete frame's response proves it was applied.
                response = json.loads(await reader.readline())
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

                async with connected(server) as again:
                    resumed = await again.resume("s")
                    # Torn frame gone: seq 2 is still free and appending
                    # it now continues the stream seamlessly.
                    retained = await again.append("s", fixes[10:], seq=2)
                    summary = await again.close_session("s")
                return response, resumed, retained, summary

        response, resumed, retained, summary = run_async(scenario())
        assert response["ok"] is True and response["seq"] == 1
        assert resumed["seq"] == 1
        assert resumed["fixes_in"] == 10  # the torn frame applied nothing
        assert summary["stored"]["n_raw_points"] == 20
