"""The load generator behind ``repro serve-bench``: a small real run."""

from __future__ import annotations

import json

import pytest

from repro.serve.bench import make_workload, run_bench

pytestmark = pytest.mark.serve


class TestWorkload:
    def test_deterministic_and_well_formed(self):
        a = make_workload(3, 10, seed=9)
        b = make_workload(3, 10, seed=9)
        assert a == b
        assert [object_id for object_id, _ in a] == [
            "bench-0000", "bench-0001", "bench-0002"
        ]
        for _, fixes in a:
            assert len(fixes) == 10
            assert [f.t for f in fixes] == sorted({f.t for f in fixes})


class TestRunBench:
    def test_small_run_writes_report(self, tmp_path):
        output = tmp_path / "bench.json"
        report = run_bench(
            sessions=6, fixes_per_session=40, rejects=2,
            batch=4, output=output,
        )
        results = report["results"]
        assert results["equivalence"] == "batch-identical"
        assert results["rejected_sessions"] == 2
        assert results["appends"] == 6 * 10  # 40 fixes / batch of 4
        assert results["fixes_total"] == 240
        assert results["p50_append_ms"] <= results["p99_append_ms"]
        assert results["fixes_per_sec"] > 0
        assert report["server_stats"]["sessions_flushed"] == 6
        assert report["server_stats"]["sessions_rejected"] == 2
        # The report landed on disk, byte-identical to the return value.
        assert json.loads(output.read_text()) == report

    def test_rejects_degenerate_configuration(self):
        with pytest.raises(ValueError):
            run_bench(sessions=0, output=None)
        with pytest.raises(ValueError):
            run_bench(sessions=1, fixes_per_session=1, output=None)

    def test_failure_still_writes_partial_report(self, tmp_path, monkeypatch):
        """A diverging session raises, but the report must land on disk
        first with ``failed: true`` so CI never uploads an empty artifact."""
        import repro.serve.bench as bench_mod
        from repro.exceptions import ServeError

        def wrong_expectation(spec, fixes):
            return fixes[:1]  # guaranteed equivalence mismatch

        monkeypatch.setattr(bench_mod, "_expected_retained", wrong_expectation)
        output = tmp_path / "failed.json"
        with pytest.raises(ServeError) as err:
            run_bench(
                sessions=3, fixes_per_session=30, rejects=0,
                batch=5, output=output,
            )
        assert err.value.code == "internal"
        report = json.loads(output.read_text())
        assert report["failed"] is True
        assert len(report["failures"]) == 3
        assert report["results"]["equivalence"] == "failed"
        # The partial report still carries the latency results gathered
        # before the failure was detected.
        assert report["results"]["appends"] == 3 * 6
