"""Sharded serve-tier tests: the consistent-hash router over a worker
fleet.

Two layers. The fast half exercises the router's pure logic — merged
``stats`` payloads and the drain-time partition-store merge — without
spawning anything. The ``slow``-marked half drives real ``repro serve``
worker subprocesses through a live router: session routing and the
drain/merge endgame, protocol-v2 seq semantics (stale-seq ``resume``
after a worker is murdered and respawned, ``bad-seq`` on a gap,
``duplicate: true`` dedup across a router-mediated reconnect), and the
per-shard backpressure responses.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.exceptions import ServeError
from repro.serve.chaos import SPEC, make_fixes, pick_shard_sessions
from repro.serve.pool import WorkerPool
from repro.serve.protocol import encode_message
from repro.serve.router import ServeRouter, merge_partition_stores
from repro.serve.pool import partition_path
from repro.storage.store import TrajectoryStore
from repro.trajectory import Trajectory
from repro.types import Fix

from tests.serve.harness import (
    connected,
    run_async,
    running_router,
    stream_session,
)

pytestmark = pytest.mark.serve


def _worker_metrics(fixes_in: int) -> dict:
    return {"counters": {"fixes_in": fixes_in}, "gauges": {},
            "timers": {}, "histograms": {}}


def _shard_payload(fixes_in: int, *, wal_failed: bool = False) -> dict:
    return {
        "live_sessions": 1,
        "fixes_in": fixes_in,
        "wal": {"failed": wal_failed},
        "metrics": _worker_metrics(fixes_in),
    }


def _stored_points(store: TrajectoryStore, object_id: str) -> list[Fix]:
    trajectory = store.get(object_id)
    return [Fix(float(t), float(x), float(y))
            for t, x, y in zip(trajectory.t, trajectory.x, trajectory.y)]


class TestMergedStatsPayload:
    """ServeRouter.stats() as a pure merge over worker payloads."""

    def _router(self) -> ServeRouter:
        return ServeRouter(WorkerPool(2))

    def test_lifecycle_counters_sum_and_shards_pass_through(self):
        payload = self._router().stats(
            {"worker-0": _shard_payload(10), "worker-1": _shard_payload(5)},
            [],
        )
        assert payload["role"] == "router"
        assert payload["protocol_version"] >= 2
        assert payload["live_sessions"] == 2
        assert payload["fixes_in"] == 15
        # Each worker's full payload survives under its shard name.
        assert payload["shards"]["worker-1"]["fixes_in"] == 5
        assert payload["wal"]["failed"] is False
        counters = payload["metrics"]["counters"]
        assert counters["fixes_in"] == 15  # fleet aggregate
        assert counters["shard.worker-0.fixes_in"] == 10  # per-shard label

    def test_any_failed_shard_wal_fails_the_fleet(self):
        payload = self._router().stats(
            {
                "worker-0": _shard_payload(1),
                "worker-1": _shard_payload(1, wal_failed=True),
            },
            [],
        )
        assert payload["wal"]["failed"] is True
        assert payload["wal"]["shards"]["worker-0"]["failed"] is False

    def test_unreachable_shard_is_conservatively_failed(self):
        """A worker that answered nothing might hold un-flushed acks:
        the fleet ``wal.failed`` flag must go conservative so the
        durable client's lost-ack heuristic never assumes durability."""
        payload = self._router().stats(
            {"worker-0": _shard_payload(1)}, ["worker-1"]
        )
        assert payload["shards_unavailable"] == ["worker-1"]
        assert payload["wal"]["failed"] is True


class TestMergePartitionStores:
    """The drain endgame, run over hand-written partition files."""

    @staticmethod
    def _write_partition(pool: WorkerPool, name: str, object_ids) -> None:
        handle = next(h for h in pool.handles if h.name == name)
        store = TrajectoryStore()
        for i, object_id in enumerate(object_ids):
            store.insert(
                Trajectory.from_points(
                    [(0.0, float(i), 0.0), (1.0, float(i) + 1.0, 2.0)]
                ),
                object_id=object_id,
            )
        assert handle.store_path is not None
        store.save(handle.store_path, durable=False)

    def test_union_of_disjoint_partitions(self, tmp_path):
        pool = WorkerPool(2, store_path=tmp_path / "fleet.rsto")
        self._write_partition(pool, "worker-0", ["a", "b"])
        self._write_partition(pool, "worker-1", ["c"])
        merged_path = tmp_path / "merged.rsto"
        result = merge_partition_stores(pool, merged_path, durable=False)
        assert result["n_objects"] == 3
        assert result["partitions"] == {"worker-0": 2, "worker-1": 1}
        merged = TrajectoryStore.load(merged_path)
        assert sorted(merged.object_ids()) == ["a", "b", "c"]
        # Adopted blobs are verbatim: the merged copy decodes identically.
        partition = TrajectoryStore.load(
            partition_path(tmp_path / "fleet.rsto", "worker-0")
        )
        assert _stored_points(merged, "a") == _stored_points(partition, "a")

    def test_missing_partition_file_counts_zero(self, tmp_path):
        pool = WorkerPool(2, store_path=tmp_path / "fleet.rsto")
        self._write_partition(pool, "worker-0", ["only"])
        result = merge_partition_stores(
            pool, tmp_path / "merged.rsto", durable=False
        )
        assert result["partitions"] == {"worker-0": 1, "worker-1": 0}

    def test_cross_partition_duplicate_is_a_ring_violation(self, tmp_path):
        pool = WorkerPool(2, store_path=tmp_path / "fleet.rsto")
        self._write_partition(pool, "worker-0", ["dup"])
        self._write_partition(pool, "worker-1", ["dup"])
        with pytest.raises(ServeError) as err:
            merge_partition_stores(pool, tmp_path / "merged.rsto",
                                   durable=False)
        assert err.value.code == "storage"
        # replace=True is the explicit escape hatch (last shard wins).
        result = merge_partition_stores(
            pool, tmp_path / "merged.rsto", durable=False, replace=True
        )
        assert result["n_objects"] == 1


@pytest.mark.slow
class TestFleetIntegration:
    """Real worker subprocesses behind a live router."""

    def test_sessions_route_stream_and_merge(self, tmp_path):
        n_fixes, chunk = 80, 10

        async def scenario():
            async with running_router(tmp_path, workers=2) as router:
                owners = pick_shard_sessions(router.pool, per_shard=1)
                streams = {}
                for i, sid in enumerate(owners):
                    fixes = make_fixes(n_fixes, 100 + i)
                    retained = await stream_session(
                        router, sid, SPEC, fixes, chunk
                    )
                    streams[sid] = retained
                async with connected(router) as client:
                    stats = await client.stats()
                drained = await router.drain()
                return owners, streams, stats, drained

        owners, streams, stats, drained = run_async(scenario())
        # Both shards really served (the ids were pinned per shard).
        assert set(owners.values()) == {"worker-0", "worker-1"}
        assert stats["role"] == "router"
        assert stats["fixes_in"] == 2 * n_fixes
        for name in ("worker-0", "worker-1"):
            assert stats["shards"][name]["shard"] == name
            assert f"shard.{name}.fixes_in" in stats["metrics"]["counters"]
        assert stats["wal"]["failed"] is False
        assert stats["router"]["requests_proxied"] > 0
        # Graceful drain: every worker flushed and exited clean, and the
        # partition merge produced one store holding every session.
        assert set(drained["workers"].values()) == {0}
        assert drained["merged"]["n_objects"] == len(owners)
        merged = TrajectoryStore.load(tmp_path / "fleet.rsto")
        for sid, retained in streams.items():
            reference = TrajectoryStore()
            reference.insert(
                Trajectory.from_points([(f.t, f.x, f.y) for f in retained]),
                object_id=sid,
            )
            assert _stored_points(merged, sid) == _stored_points(
                reference, sid
            )

    def test_seq_semantics_survive_worker_murder(self, tmp_path):
        """Protocol v2 through a respawn: ``resume`` reports the WAL-
        recovered seq, a stale re-send dedups, a gap is ``bad-seq``."""
        fixes = make_fixes(40, 5)

        async def scenario():
            async with running_router(tmp_path, workers=2) as router:
                owners = pick_shard_sessions(router.pool, per_shard=1)
                sid, owner = next(iter(owners.items()))
                handle = router.pool.handle_for(sid)
                outcomes = {}
                async with connected(router) as client:
                    await client.open(sid, SPEC)
                    for k in range(3):
                        await client.append(
                            sid, fixes[k * 10 : (k + 1) * 10], seq=k + 1
                        )
                    router.pool.kill(owner)  # SIGKILL, mid-session
                    # Wait until the monitor respawned it over its WAL.
                    while not (handle.restarts >= 1 and handle.ready.is_set()):
                        await asyncio.sleep(0.05)
                    # Stale-seq resume after the restart: the respawn
                    # replayed the WAL, so the acked prefix is all there.
                    resumed = await client.resume(sid)
                    outcomes["resumed"] = resumed
                    # Re-sending the last acked batch (stale seq) must
                    # replay the cached ack, not apply twice.
                    dup = await client.append_response(
                        sid, fixes[20:30], seq=3
                    )
                    outcomes["duplicate"] = dup.get("duplicate")
                    # A gap mid-stream is refused before any state moves.
                    try:
                        await client.append(sid, fixes[30:40], seq=5)
                        outcomes["gap"] = None
                    except ServeError as exc:
                        outcomes["gap"] = exc.code
                    await client.append(sid, fixes[30:40], seq=4)
                    outcomes["summary"] = await client.close_session(sid)
                return outcomes

        outcomes = run_async(scenario())
        assert outcomes["resumed"]["seq"] == 3
        assert outcomes["resumed"]["fixes_in"] == 30
        assert outcomes["duplicate"] is True
        assert outcomes["gap"] == "bad-seq"
        assert outcomes["summary"]["stored"]["n_raw_points"] == 40

    def test_duplicate_dedup_across_router_reconnect(self, tmp_path):
        """The lost-ack window, router-mediated: an append frame whose
        ack died with the connection is re-sent after reconnecting and
        answered ``duplicate: true`` by the owning worker."""
        fixes = make_fixes(20, 3)

        async def scenario():
            async with running_router(tmp_path, workers=2) as router:
                owners = pick_shard_sessions(router.pool, per_shard=1)
                sid = next(iter(owners))
                async with connected(router) as client:
                    await client.open(sid, SPEC)
                    await client.append(sid, fixes[:10], seq=1)
                # Fire the second batch and slam the connection shut
                # before the ack can come back.
                reader, writer = await asyncio.open_connection(
                    router.host, router.port
                )
                flat = [v for fix in fixes[10:] for v in fix]
                writer.write(encode_message({
                    "op": "append", "session": sid, "seq": 2,
                    "fixes_flat": flat,
                }))
                await writer.drain()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
                async with connected(router) as again:
                    # The worker applies the orphan frame asynchronously;
                    # poll resume (idempotent) until it shows up.
                    deadline = time.monotonic() + 5.0
                    resumed = await again.resume(sid)
                    while resumed["seq"] < 2 and time.monotonic() < deadline:
                        await asyncio.sleep(0.02)
                        resumed = await again.resume(sid)
                    response = await again.append_response(
                        sid, fixes[10:], seq=2
                    )
                    summary = await again.close_session(sid)
                return resumed, response, summary

        resumed, response, summary = run_async(scenario())
        assert resumed["seq"] == 2  # the un-acked frame was applied
        assert response.get("duplicate") is True  # re-send dedup'd
        assert summary["stored"]["n_raw_points"] == 20  # exactly once

    def test_backpressure_and_rejection_codes(self, tmp_path):
        async def scenario():
            async with running_router(
                tmp_path, workers=2, shed_inflight=1
            ) as router:
                owners = pick_shard_sessions(router.pool, per_shard=1)
                sid, owner = next(iter(owners.items()))
                handle = router.pool.handle_for(sid)
                codes = {}
                async with connected(router) as client:
                    await client.open(sid, SPEC)
                    # A drowning shard sheds; its neighbour keeps serving.
                    gauge = router.metrics.gauge(f"shard_inflight.{owner}")
                    gauge.inc()
                    try:
                        await client.resume(sid)
                    except ServeError as exc:
                        codes["shed"] = exc.code
                    other = next(s for s, o in owners.items() if o != owner)
                    await client.open(other, SPEC)  # unaffected shard
                    gauge.dec()
                    # A shard that stays down past the acquire deadline.
                    router.acquire_timeout_s = 0.2
                    handle.ready.clear()
                    try:
                        await client.resume(sid)
                    except ServeError as exc:
                        codes["down"] = exc.code
                    handle.ready.set()
                    router.acquire_timeout_s = 15.0
                    # A draining router refuses new session work.
                    router._draining = True
                    try:
                        await client.resume(sid)
                    except ServeError as exc:
                        codes["draining"] = exc.code
                    router._draining = False
                    # Router-level protocol errors.
                    try:
                        await client.request({"op": "warp", "session": sid})
                    except ServeError as exc:
                        codes["unknown-op"] = exc.code
                    try:
                        await client.request(
                            {"op": "open", "session": "", "spec": SPEC}
                        )
                    except ServeError as exc:
                        codes["bad-id"] = exc.code
                    stats = await client.stats()
                return codes, stats

        codes, stats = run_async(scenario())
        assert codes == {
            "shed": "rejected",
            "down": "unavailable",
            "draining": "rejected",
            "unknown-op": "bad-request",
            "bad-id": "bad-request",
        }
        assert stats["router"]["requests_shed"] >= 1
