"""Event-loop and process harness for the serving tests.

pytest-asyncio is not part of this project's toolchain, so socket tests
wrap their coroutine in :func:`run_async`: a fresh event loop per test
plus an :func:`asyncio.wait_for` deadline that fires *before* the
suite-level SIGALRM watchdog, turning a hung protocol exchange into an
ordinary test failure with a stack trace.

Beyond the loop plumbing this module holds the shared test vocabulary —
:func:`fixes_of` / :func:`stream_session` for driving a session over the
wire, :func:`running_server` / :func:`running_router` for in-process
servers and sharded fleets, and :func:`spawned_server` for tests that
need a real ``repro serve`` subprocess they can murder (guaranteed
teardown even when the test fails mid-kill).
"""

from __future__ import annotations

import asyncio
import contextlib
from pathlib import Path

from repro.serve.chaos import free_port, spawn_server
from repro.serve.client import ServeClient
from repro.serve.pool import WorkerPool
from repro.serve.router import ServeRouter
from repro.serve.server import TrajectoryServer
from repro.types import Fix

#: Inner deadline; the conftest SIGALRM watchdog sits above it at 30 s.
HARNESS_TIMEOUT_S = 20.0


def fixes_of(traj) -> list[Fix]:
    """A trajectory's points as the wire-level ``Fix`` stream."""
    return [Fix(float(t), float(x), float(y))
            for t, x, y in zip(traj.t, traj.x, traj.y)]


async def stream_session(server, object_id, spec, fixes, chunk) -> list[Fix]:
    """Open, append in chunks, close; returns the full retained stream.

    ``server`` is anything with ``host``/``port`` — a
    :class:`TrajectoryServer` or a :class:`ServeRouter` work alike.
    """
    retained: list[Fix] = []
    async with connected(server) as client:
        await client.open(object_id, spec)
        for start in range(0, len(fixes), chunk):
            retained.extend(
                await client.append(object_id, fixes[start : start + chunk])
            )
        summary = await client.close_session(object_id)
        retained.extend(summary["retained"])
    return retained


def run_async(coro):
    """Run ``coro`` on a fresh loop with the harness deadline applied."""

    async def _bounded():
        return await asyncio.wait_for(coro, timeout=HARNESS_TIMEOUT_S)

    return asyncio.run(_bounded())


@contextlib.asynccontextmanager
async def running_server(**kwargs):
    """A started :class:`TrajectoryServer` on an ephemeral port."""
    kwargs.setdefault("port", 0)
    server = TrajectoryServer(**kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


@contextlib.asynccontextmanager
async def connected(server):
    """A :class:`ServeClient` connected to anything with host/port."""
    client = await ServeClient.connect(server.host, server.port)
    try:
        yield client
    finally:
        await client.aclose()


@contextlib.asynccontextmanager
async def running_router(tmp_path: Path, workers: int = 2, **kwargs):
    """A started :class:`ServeRouter` over ``workers`` real worker
    subprocesses, with per-shard WAL dirs and store partitions under
    ``tmp_path``; hard-stopped (fleet SIGKILL) on exit unless the test
    drained it first.

    Pool-level kwargs (``max_sessions``, ``idle_timeout_s``, ...) and
    router-level kwargs (``shed_inflight``, ``acquire_timeout_s``) are
    split automatically.
    """
    router_keys = {"shed_inflight", "acquire_timeout_s", "metrics"}
    router_kwargs = {k: kwargs.pop(k) for k in list(kwargs) if k in router_keys}
    kwargs.setdefault("idle_timeout_s", 3600.0)
    kwargs.setdefault("sweep_interval_s", 3600.0)
    store_path = tmp_path / "fleet.rsto"
    pool = WorkerPool(
        workers, wal_dir=tmp_path / "wal", store_path=store_path, **kwargs
    )
    router = ServeRouter(pool, store_path=store_path, **router_kwargs)
    await router.start()
    try:
        yield router
    finally:
        await router.stop()


@contextlib.contextmanager
def spawned_server(tmp_path: Path, port: "int | None" = None):
    """A real ``repro serve`` subprocess on ``port`` (default: ephemeral),
    journalling under ``tmp_path``; yields ``(process, port, wal_dir,
    store_path)`` and guarantees the process is dead on exit.

    The spawn blocks until the child's ``serving on`` banner, i.e. until
    WAL replay finished and the socket is bound.
    """
    port = free_port() if port is None else port
    wal_dir, store_path = tmp_path / "wal", tmp_path / "server.rsto"
    process = spawn_server(port, wal_dir, store_path)
    try:
        yield process, port, wal_dir, store_path
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30.0)
