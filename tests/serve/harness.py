"""Event-loop harness for the serving tests.

pytest-asyncio is not part of this project's toolchain, so socket tests
wrap their coroutine in :func:`run_async`: a fresh event loop per test
plus an :func:`asyncio.wait_for` deadline that fires *before* the
suite-level SIGALRM watchdog, turning a hung protocol exchange into an
ordinary test failure with a stack trace.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.serve.client import ServeClient
from repro.serve.server import TrajectoryServer

#: Inner deadline; the conftest SIGALRM watchdog sits above it at 30 s.
HARNESS_TIMEOUT_S = 20.0


def run_async(coro):
    """Run ``coro`` on a fresh loop with the harness deadline applied."""

    async def _bounded():
        return await asyncio.wait_for(coro, timeout=HARNESS_TIMEOUT_S)

    return asyncio.run(_bounded())


@contextlib.asynccontextmanager
async def running_server(**kwargs):
    """A started :class:`TrajectoryServer` on an ephemeral port."""
    kwargs.setdefault("port", 0)
    server = TrajectoryServer(**kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


@contextlib.asynccontextmanager
async def connected(server: TrajectoryServer):
    """A :class:`ServeClient` connected to ``server``."""
    client = await ServeClient.connect(server.host, server.port)
    try:
        yield client
    finally:
        await client.aclose()
