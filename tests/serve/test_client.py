"""Client-side durability behaviour: timeouts, reconnects, idempotence.

The server-side contract (sequence numbers, dedup, WAL recovery) is
tested in ``test_server.py`` and the chaos harness; this file exercises
the client half — the per-request deadline, the retained prefix carried
on append errors, and :class:`DurableServeClient`'s redial + resume +
re-send loop against a real server restart.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ServeError
from repro.serve.client import DurableServeClient, ServeClient
from repro.serve.server import TrajectoryServer
from repro.types import Fix

from tests.serve.harness import connected, run_async, running_server

pytestmark = pytest.mark.serve


def walk(n: int, t0: float = 0.0) -> list[Fix]:
    return [Fix(t0 + i, float(i * 7 % 13), float(i * 5 % 11)) for i in range(n)]


class TestRequestTimeout:
    def test_unresponsive_server_times_out_and_breaks_the_connection(self):
        async def scenario():
            async def black_hole(reader, writer):
                await asyncio.sleep(3600)

            server = await asyncio.start_server(black_hole, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = await ServeClient.connect(
                    "127.0.0.1", port, timeout=0.1
                )
                with pytest.raises(ServeError) as err:
                    await client.request({"op": "stats"})
                broken = client.broken
                await client.aclose()
                return err.value.code, broken
            finally:
                server.close()
                await server.wait_closed()

        code, broken = run_async(scenario())
        assert code == "timeout"
        # A late response would desynchronise request/response pairing;
        # the connection must not be reused.
        assert broken is True

    def test_append_error_carries_the_retained_prefix(self):
        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("s", "opw-tr:epsilon=10")
                    try:
                        await client.append(
                            "s",
                            [Fix(0.0, 0.0, 0.0), Fix(1.0, 50.0, 0.0),
                             Fix(0.5, 60.0, 0.0)],  # time rewinds
                        )
                    except ServeError as exc:
                        return exc
            return None

        error = run_async(scenario())
        assert error is not None and error.code == "out-of-order"
        # The accepted prefix's decisions ride the error as Fix values.
        assert error.retained and error.retained[0] == Fix(0.0, 0.0, 0.0)


class TestSequenceNumbers:
    def test_resend_same_seq_replays_cached_ack(self):
        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("s", "opw-tr:epsilon=10")
                    first = await client.append_response(
                        "s", walk(5), seq=1
                    )
                    replay = await client.append_response(
                        "s", walk(5), seq=1
                    )
                    return first, replay, server.manager.get("s").n_fixes_in

        first, replay, n_in = run_async(scenario())
        assert "duplicate" not in first
        assert replay["duplicate"] is True
        assert replay["retained"] == first["retained"]
        assert n_in == 5  # applied once, not twice

    def test_gap_is_rejected_with_bad_seq(self):
        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("s", "opw-tr:epsilon=10")
                    await client.append("s", walk(3), seq=1)
                    with pytest.raises(ServeError) as err:
                        await client.append("s", walk(3, t0=10.0), seq=5)
                    return err.value.code

        assert run_async(scenario()) == "bad-seq"

    def test_resume_reports_last_acked_seq(self):
        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("s", "nopw:epsilon=15")
                    await client.append("s", walk(4), seq=1)
                    await client.append("s", walk(4, t0=10.0), seq=2)
                async with connected(server) as fresh:
                    return await fresh.resume("s")

        resumed = run_async(scenario())
        assert resumed["seq"] == 2
        assert resumed["spec"] == "nopw:epsilon=15"
        assert resumed["recovered"] is False
        assert resumed["fixes_in"] == 8


class TestDurableClient:
    def test_survives_server_restart_with_wal(self, tmp_path):
        """Stop the server mid-stream, restart over the same WAL, finish.

        The durable client redials with backoff, resumes, and the final
        stored object holds every fix exactly once.
        """

        async def scenario():
            wal_dir = tmp_path / "wal"
            store_path = tmp_path / "client.rsto"
            first = TrajectoryServer(
                port=0, wal_dir=wal_dir, store_path=store_path
            )
            await first.start()
            port = first.port
            client = DurableServeClient(
                "127.0.0.1", port, timeout=5.0, max_retries=20,
                backoff_base_s=0.01, backoff_max_s=0.05,
            )
            fixes = walk(30)
            async with client:
                await client.open("obj", "opw-tr:epsilon=10")
                await client.append("obj", fixes[:10])
                # Hard stop: sessions stay in the WAL, not the store.
                first.abort()
                second = TrajectoryServer(
                    port=port, wal_dir=wal_dir, store_path=store_path
                )
                await second.start()
                try:
                    await client.append("obj", fixes[10:20])
                    await client.append("obj", fixes[20:])
                    summary = await client.close_session("obj")
                    session_stats = await client.stats()
                finally:
                    await second.stop()
            return client.reconnects, summary, session_stats

        reconnects, summary, stats = run_async(scenario())
        assert reconnects >= 1
        assert summary["stored"] is not None
        assert summary["stored"]["n_raw_points"] == 30  # nothing lost/doubled
        assert stats["sessions_recovered"] == 1

    def test_open_tolerates_duplicate_session_by_resuming(self):
        async def scenario():
            async with running_server() as server:
                async with connected(server) as plain:
                    await plain.open("obj", "opw-tr:epsilon=10")
                    await plain.append("obj", walk(5), seq=1)
                client = DurableServeClient(
                    server.host, server.port, timeout=5.0,
                    backoff_base_s=0.01,
                )
                async with client:
                    response = await client.open("obj", "opw-tr:epsilon=10")
                    # Sequence numbering continues from the server's
                    # acknowledged state, not from scratch.
                    retained = await client.append("obj", walk(5, t0=10.0))
                    return response, retained is not None

        response, appended = run_async(scenario())
        assert response["seq"] == 1  # the resume response
        assert appended

    def test_close_ack_lost_is_tolerated_only_on_durable_servers(
        self, monkeypatch
    ):
        """``unknown-session`` on a retried close means "the close
        landed" only when the server promises durability (healthy WAL).
        A WAL-less server that crash-restarted between the attempts has
        genuinely lost the session, and the client must not report a
        clean close over lost data."""

        class ScriptedClient:
            def __init__(self, script):
                self._script = list(script)
                self.broken = False

            async def request(self, message):
                action = self._script.pop(0)
                if isinstance(action, ServeError):
                    if action.code in ("connection-closed", "timeout"):
                        self.broken = True
                    raise action
                return action

            async def aclose(self):
                self.broken = True

        def scripted(stats_payload):
            connections = [
                # Attempt 1: the close is sent but its ack is lost.
                ScriptedClient(
                    [ServeError("ack lost", code="connection-closed")]
                ),
                # Attempt 2: the session is gone; the durability probe
                # then reads the server's stats on the same connection.
                ScriptedClient([
                    ServeError("gone", code="unknown-session"),
                    {"ok": True, "op": "stats", "stats": stats_payload},
                ]),
            ]

            async def fake_ensure(self):
                if self._client is None or self._client.broken:
                    self._client = connections.pop(0)
                return self._client

            return fake_ensure

        async def close_against(stats_payload):
            monkeypatch.setattr(
                DurableServeClient, "_ensure_connected",
                scripted(stats_payload),
            )
            client = DurableServeClient("127.0.0.1", 1, backoff_base_s=0.0)
            client._sessions["obj"] = {"spec": "opw-tr:epsilon=10", "seq": 3}
            return await client.close_session("obj")

        durable = run_async(close_against({"wal": {"failed": False}}))
        assert durable == {"retained": [], "stored": None, "ack_lost": True}

        with pytest.raises(ServeError) as err:
            run_async(close_against({}))  # no WAL: ambiguity surfaces
        assert err.value.code == "unknown-session"

        with pytest.raises(ServeError) as err:
            run_async(close_against({"wal": {"failed": True}}))
        assert err.value.code == "unknown-session"

    def test_append_before_open_is_refused(self):
        async def scenario():
            async with running_server() as server:
                client = DurableServeClient(server.host, server.port)
                async with client:
                    with pytest.raises(ServeError) as err:
                        await client.append("ghost", walk(2))
                    return err.value.code

        assert run_async(scenario()) == "unknown-session"
