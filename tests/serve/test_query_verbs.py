"""The serve read path: QUERY and SUMMARIES over a live socket.

Covers the query-after-ack consistency contract (acked fixes are
queryable immediately, live sessions supersede stored records of the
same id), the three query kinds against a single server, the error
codes, the fleet-merged counters — and the same verbs scatter-gathered
through a sharded :class:`ServeRouter`, where merged answers must be
indistinguishable from a single server's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.storage.store import TrajectoryStore
from repro.trajectory import Trajectory
from repro.types import Fix

from tests.serve.harness import (
    connected,
    run_async,
    running_router,
    running_server,
)

pytestmark = pytest.mark.serve

RAW_SPEC = "nopw:epsilon=0.001"  # effectively lossless: keeps every fix


def _line(object_id: str, t0: float, n: int, x0: float, y0: float,
          vx: float = 10.0, vy: float = 4.0) -> Trajectory:
    t = t0 + 10.0 * np.arange(n, dtype=float)
    xy = np.column_stack([x0 + vx * (t - t0), y0 + vy * (t - t0)])
    return Trajectory(t, xy, object_id)


def _fixes(traj: Trajectory) -> list[Fix]:
    return [Fix(float(t), float(x), float(y))
            for t, x, y in zip(traj.t, traj.x, traj.y)]


def _seeded_store() -> TrajectoryStore:
    store = TrajectoryStore(summary_partition_points=4)
    store.insert(_line("stored-east", 0.0, 12, 1000.0, 0.0, vx=12.0, vy=0.0))
    store.insert(_line("stored-north", 0.0, 12, -800.0, -800.0, vx=0.0, vy=9.0))
    return store


class TestSingleServerQueries:
    def test_stored_position_matches_the_store(self):
        store = _seeded_store()
        expected = store.get("stored-east").position_at(35.0)

        async def scenario():
            async with running_server(store=store) as server:
                async with connected(server) as client:
                    return await client.query_position("stored-east", 35.0)

        result = run_async(scenario())
        assert (result["x"], result["y"]) == (
            float(expected[0]), float(expected[1])
        )
        assert result["error_bound_m"] == store.record(
            "stored-east"
        ).sync_error_bound_m

    def test_acked_fixes_are_queryable_immediately(self, zigzag):
        """Query-after-ack: a position between two just-acked fixes is
        answered from the live session, before any close or flush."""
        fixes = _fixes(zigzag)

        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("zig", RAW_SPEC)
                    await client.append("zig", fixes[:6])
                    response = await client.request({
                        "op": "query", "query": "position",
                        "object": "zig", "t": 25.0,
                    })
                    return response

        response = run_async(scenario())
        assert response["source"] == "live"
        expected = zigzag.position_at(25.0)
        assert (response["result"]["x"], response["result"]["y"]) == (
            float(expected[0]), float(expected[1])
        )

    def test_live_session_supersedes_stored_record(self, zigzag):
        """An id with both a stored record and a live session answers
        from the session — the newer data wins."""
        store = TrajectoryStore(summary_partition_points=4)
        store.insert(_line("zig", 0.0, 5, 90_000.0, 90_000.0))
        fixes = _fixes(zigzag)

        async def scenario():
            async with running_server(store=store, replace=True) as server:
                async with connected(server) as client:
                    await client.open("zig", RAW_SPEC)
                    await client.append("zig", fixes)
                    return await client.request({
                        "op": "query", "query": "position",
                        "object": "zig", "t": 10.0,
                    })

        response = run_async(scenario())
        assert response["source"] == "live"
        expected = zigzag.position_at(10.0)
        assert response["result"]["x"] == float(expected[0])

    def test_window_merges_live_and_stored(self, zigzag):
        fixes = _fixes(zigzag)  # zigzag lives near the origin

        async def scenario():
            async with running_server(store=_seeded_store()) as server:
                async with connected(server) as client:
                    await client.open("zig", RAW_SPEC)
                    await client.append("zig", fixes)
                    everywhere = await client.query_window(
                        0.0, 200.0, bbox=[-2000.0, -2000.0, 2000.0, 2000.0]
                    )
                    live_only = await client.query_window(
                        0.0, 200.0, bbox=[400.0, -50.0, 520.0, 300.0]
                    )
                    return everywhere, live_only

        everywhere, live_only = run_async(scenario())
        assert everywhere == ["stored-east", "stored-north", "zig"]
        assert live_only == ["zig"]

    def test_nearest_ranks_live_against_stored(self, zigzag):
        store = _seeded_store()
        fixes = _fixes(zigzag)

        async def scenario():
            async with running_server(store=store) as server:
                async with connected(server) as client:
                    await client.open("zig", RAW_SPEC)
                    await client.append("zig", fixes)
                    return await client.query_nearest(0.0, 0.0, 30.0, k=3)

        results = run_async(scenario())
        assert [r["object"] for r in results] == [
            "zig", "stored-north", "stored-east"
        ]
        assert results[0]["source"] == "live"
        assert results[1]["source"] == "stored"
        assert [r["distance_m"] for r in results] == sorted(
            r["distance_m"] for r in results
        )

    def test_closed_session_answers_from_the_store(self, zigzag):
        fixes = _fixes(zigzag)

        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("zig", RAW_SPEC)
                    await client.append("zig", fixes)
                    await client.close_session("zig")
                    return await client.request({
                        "op": "query", "query": "position",
                        "object": "zig", "t": 25.0,
                    })

        response = run_async(scenario())
        assert response["source"] == "stored"
        expected = zigzag.position_at(25.0)
        # The nopw spec keeps every fix; codec quantization is the only
        # difference between live and stored answers.
        assert response["result"]["x"] == pytest.approx(
            float(expected[0]), abs=0.02
        )

    def test_summaries_cover_stored_and_live(self, zigzag):
        async def scenario():
            async with running_server(store=_seeded_store()) as server:
                async with connected(server) as client:
                    await client.open("zig", RAW_SPEC)
                    await client.append("zig", _fixes(zigzag))
                    all_of_them = await client.summaries()
                    one = await client.summaries("stored-east")
                    return all_of_them, one

        all_of_them, one = run_async(scenario())
        assert sorted(all_of_them["objects"]) == ["stored-east", "stored-north"]
        assert all_of_them["live_sessions"] == ["zig"]
        assert all_of_them["config"]["partition_points"] == 4
        entry = one["objects"]["stored-east"]
        assert entry["n_points"] == 12
        assert sum(p["n"] for p in entry["partitions"]) == 12

    def test_error_codes(self):
        async def scenario():
            codes = {}
            async with running_server(store=_seeded_store()) as server:
                async with connected(server) as client:
                    with pytest.raises(ServeError) as err:
                        await client.query_position("ghost", 0.0)
                    codes["unknown-object"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.query_position("stored-east", 1e9)
                    codes["outside-interval"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.summaries("ghost")
                    codes["unknown-summary"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.request({"op": "query", "query": "warp"})
                    codes["bad-kind"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.request({
                            "op": "query", "query": "position",
                            "object": "stored-east", "t": "noon",
                        })
                    codes["bad-time"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.query_window(10.0, 0.0)
                    codes["empty-window"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.request({
                            "op": "query", "query": "nearest",
                            "x": 0.0, "y": 0.0, "t": 0.0, "k": 0,
                        })
                    codes["bad-k"] = err.value.code
                    with pytest.raises(ServeError) as err:
                        await client.request({
                            "op": "query", "query": "window",
                            "t0": 0.0, "t1": 1.0, "bbox": [1, 2, 3],
                        })
                    codes["bad-bbox"] = err.value.code
            return codes

        assert run_async(scenario()) == {
            "unknown-object": "not-found",
            "outside-interval": "not-found",
            "unknown-summary": "not-found",
            "bad-kind": "bad-request",
            "bad-time": "bad-request",
            "empty-window": "bad-request",
            "bad-k": "bad-request",
            "bad-bbox": "bad-request",
        }

    def test_stats_surface_query_counters(self):
        async def scenario():
            async with running_server(store=_seeded_store()) as server:
                async with connected(server) as client:
                    await client.query_position("stored-east", 10.0)
                    await client.query_window(0.0, 100.0)
                    await client.query_nearest(0.0, 0.0, 10.0)
                    return await client.stats()

        stats = run_async(scenario())
        assert stats["queries"] == 3
        assert stats["query_decoded_records"] >= 1
        assert stats["query_decoded_bytes"] > 0
        assert 0.0 <= stats["query_prune_ratio"] <= 1.0
        assert stats["metrics"]["counters"]["queries_position"] == 1


class TestRouterQueries:
    """The same verbs through a 2-worker sharded fleet."""

    def _populate(self, n: int = 5):
        """n objects spread across shards, each at its own origin."""
        return {
            f"obj-{i}": _line(f"obj-{i}", 0.0, 8, i * 1000.0, i * 1000.0)
            for i in range(n)
        }

    def test_position_routes_by_object(self, tmp_path):
        objects = self._populate()

        async def scenario():
            async with running_router(tmp_path) as router:
                async with connected(router) as client:
                    for key, traj in objects.items():
                        await client.open(key, RAW_SPEC)
                        await client.append(key, _fixes(traj))
                    out = {}
                    for key, traj in objects.items():
                        result = await client.query_position(key, 35.0)
                        expected = traj.position_at(35.0)
                        out[key] = (
                            result["x"] == float(expected[0])
                            and result["y"] == float(expected[1])
                        )
                    return out

        assert all(run_async(scenario()).values())

    def test_window_fans_out_and_merges_sorted(self, tmp_path):
        objects = self._populate()

        async def scenario():
            async with running_router(tmp_path) as router:
                async with connected(router) as client:
                    for key, traj in objects.items():
                        await client.open(key, RAW_SPEC)
                        await client.append(key, _fixes(traj))
                        await client.close_session(key)
                    all_of_them = await client.query_window(0.0, 100.0)
                    boxed = await client.query_window(
                        0.0, 100.0,
                        bbox=[1500.0, 1500.0, 3500.0, 3500.0],
                    )
                    return all_of_them, boxed

        all_of_them, boxed = run_async(scenario())
        assert all_of_them == sorted(objects)
        assert boxed == ["obj-2", "obj-3"]

    def test_nearest_merges_shard_answers_into_one_ranking(self, tmp_path):
        objects = self._populate()

        async def scenario():
            async with running_router(tmp_path) as router:
                async with connected(router) as client:
                    for key, traj in objects.items():
                        await client.open(key, RAW_SPEC)
                        await client.append(key, _fixes(traj))
                    return await client.query_nearest(
                        2100.0, 2100.0, 35.0, k=3
                    )

        results = run_async(scenario())
        assert [r["object"] for r in results] == ["obj-2", "obj-1", "obj-3"]
        assert [r["distance_m"] for r in results] == sorted(
            r["distance_m"] for r in results
        )

    def test_summaries_merge_across_the_fleet(self, tmp_path):
        objects = self._populate(4)

        async def scenario():
            async with running_router(tmp_path) as router:
                async with connected(router) as client:
                    for key, traj in objects.items():
                        await client.open(key, RAW_SPEC)
                        await client.append(key, _fixes(traj))
                    live = await client.summaries()
                    for key in objects:
                        await client.close_session(key)
                    stored = await client.summaries()
                    one = await client.summaries("obj-1")
                    return live, stored, one

        live, stored, one = run_async(scenario())
        assert sorted(live["live_sessions"]) == sorted(objects)
        assert sorted(stored["objects"]) == sorted(objects)
        assert stored["config"] is not None
        assert list(one["objects"]) == ["obj-1"]

    def test_shard_errors_propagate_not_found(self, tmp_path):
        async def scenario():
            async with running_router(tmp_path) as router:
                async with connected(router) as client:
                    with pytest.raises(ServeError) as err:
                        await client.query_position("ghost", 0.0)
                    return err.value.code

        assert run_async(scenario()) == "not-found"

    def test_router_stats_sum_query_counters(self, tmp_path):
        objects = self._populate(3)

        async def scenario():
            async with running_router(tmp_path) as router:
                async with connected(router) as client:
                    for key, traj in objects.items():
                        await client.open(key, RAW_SPEC)
                        await client.append(key, _fixes(traj))
                    for key in objects:
                        await client.query_position(key, 35.0)
                    await client.query_window(0.0, 100.0)
                    return await client.stats()

        stats = run_async(scenario())
        # position x3 + fan-out window (counted once per worker).
        assert stats["queries"] >= 3 + 1
        assert len(stats["shards"]) == 2
