"""SessionManager unit tests: admission, LRU eviction, flush, counters.

These run entirely in-process with an injected fake clock — no sockets,
no sleeps — so the resource policies (admission control, idle eviction,
flush-on-evict) are tested deterministically.
"""

from __future__ import annotations

import pytest

from repro.core import OPWTR
from repro.exceptions import ServeError
from repro.serve.session import SessionManager
from repro.storage.store import TrajectoryStore
from repro.streaming import available_online_compressors
from repro.types import Fix

from tests.serve.harness import fixes_of


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make_manager(clock: FakeClock, **kwargs) -> SessionManager:
    kwargs.setdefault("max_sessions", 4)
    kwargs.setdefault("idle_timeout_s", 10.0)
    return SessionManager(TrajectoryStore(), clock=clock, **kwargs)


class TestLifecycle:
    def test_streamed_close_matches_batch(self, clock, zigzag):
        manager = make_manager(clock)
        manager.open("z", "opw-tr:epsilon=30")
        retained = []
        for fix in fixes_of(zigzag):
            retained.extend(manager.append("z", fix))
        record, tail = manager.close("z")
        retained.extend(tail)

        expected = zigzag.t[OPWTR(epsilon=30.0).compress(zigzag).indices]
        assert [f.t for f in retained] == list(expected)
        assert record is not None
        assert record.n_raw_points == len(zigzag)
        assert record.n_stored_points == len(expected)
        # The compressor's epsilon plus the codec's quantization slack.
        assert 30.0 <= record.sync_error_bound_m < 30.1
        assert list(manager.store.get("z").t) == [f.t for f in retained]
        assert "z" not in manager

    def test_close_without_fixes_stores_nothing(self, clock):
        manager = make_manager(clock)
        manager.open("empty", "nopw:epsilon=5")
        record, tail = manager.close("empty")
        assert record is None
        assert tail == []
        assert len(manager.store) == 0
        assert manager.stats()["sessions_flushed"] == 0

    def test_unknown_session(self, clock):
        manager = make_manager(clock)
        with pytest.raises(ServeError) as err:
            manager.append("ghost", Fix(0.0, 0.0, 0.0))
        assert err.value.code == "unknown-session"
        with pytest.raises(ServeError):
            manager.close("ghost")

    def test_out_of_order_keeps_session_usable(self, clock):
        manager = make_manager(clock)
        manager.open("s", "opw-tr:epsilon=10")
        manager.append("s", Fix(5.0, 0.0, 0.0))
        with pytest.raises(ServeError) as err:
            manager.append("s", Fix(5.0, 1.0, 1.0))  # not strictly later
        assert err.value.code == "out-of-order"
        # The rejected fix left no trace: the session keeps accepting.
        manager.append("s", Fix(6.0, 1.0, 1.0))
        record, _ = manager.close("s")
        assert record.n_raw_points == 2


class TestOpenValidation:
    @pytest.mark.parametrize("bad_id", [None, "", 7, ["x"]])
    def test_bad_session_id(self, clock, bad_id):
        manager = make_manager(clock)
        with pytest.raises(ServeError) as err:
            manager.open(bad_id, "nopw:epsilon=5")
        assert err.value.code == "bad-request"

    @pytest.mark.parametrize("bad_spec", [None, "", 3.5])
    def test_bad_spec_type(self, clock, bad_spec):
        manager = make_manager(clock)
        with pytest.raises(ServeError) as err:
            manager.open("s", bad_spec)
        assert err.value.code == "bad-request"

    @pytest.mark.parametrize(
        "spec", ["td-tr:epsilon=5", "no-such-algo:epsilon=5", "nopw", "nopw:bogus=1"]
    )
    def test_unusable_spec(self, clock, spec):
        manager = make_manager(clock)
        with pytest.raises(ServeError) as err:
            manager.open("s", spec)
        assert err.value.code == "bad-spec"
        assert "s" not in manager  # nothing half-admitted

    def test_duplicate_session(self, clock):
        manager = make_manager(clock)
        manager.open("dup", "nopw:epsilon=5")
        with pytest.raises(ServeError) as err:
            manager.open("dup", "nopw:epsilon=5")
        assert err.value.code == "duplicate-session"


class TestAdmissionAndEviction:
    def test_rejects_when_full(self, clock):
        manager = make_manager(clock, max_sessions=2)
        manager.open("a", "nopw:epsilon=5")
        manager.open("b", "nopw:epsilon=5")
        with pytest.raises(ServeError) as err:
            manager.open("c", "nopw:epsilon=5")
        assert err.value.code == "rejected"
        assert manager.stats()["sessions_rejected"] == 1
        assert len(manager) == 2

    def test_full_open_reclaims_idle_capacity(self, clock):
        manager = make_manager(clock, max_sessions=2, idle_timeout_s=10.0)
        manager.open("old", "nopw:epsilon=5")
        manager.append("old", Fix(0.0, 0.0, 0.0))
        manager.append("old", Fix(1.0, 5.0, 0.0))
        clock.advance(11.0)
        manager.open("fresh", "nopw:epsilon=5")
        # At the limit, but "old" is idle: opening evicts it instead of
        # rejecting, and eviction flushes (not drops) its data.
        manager.open("new", "nopw:epsilon=5")
        assert "old" not in manager
        assert "old" in manager.store
        stats = manager.stats()
        assert stats["sessions_evicted"] == 1
        assert stats["sessions_rejected"] == 0

    def test_evict_idle_is_lru_ordered(self, clock):
        manager = make_manager(clock, idle_timeout_s=10.0)
        for name in ("a", "b", "c"):
            manager.open(name, "nopw:epsilon=5")
            manager.append(name, Fix(0.0, 0.0, 0.0))
            manager.append(name, Fix(1.0, 5.0, 0.0))
            clock.advance(4.0)
        # Activity order is a (12s idle), b (8s), c (4s); touch "a" so
        # it becomes most recent and "b" becomes the oldest.
        manager.append("a", Fix(2.0, 6.0, 1.0))
        clock.advance(9.0)  # idle: b=17s, c=13s, a=9s
        assert manager.evict_idle() == ["b", "c"]
        assert manager.live_session_ids == ["a"]
        assert "b" in manager.store and "c" in manager.store

    def test_eviction_flushes_like_close(self, clock, zigzag):
        manager = make_manager(clock, idle_timeout_s=1.0)
        manager.open("z", "opw-tr:epsilon=30")
        for fix in fixes_of(zigzag):
            manager.append("z", fix)
        clock.advance(2.0)
        assert manager.evict_idle() == ["z"]
        expected = zigzag.t[OPWTR(epsilon=30.0).compress(zigzag).indices]
        assert list(manager.store.get("z").t) == list(expected)

    def test_storage_conflict_maps_to_storage_code(self, clock):
        manager = make_manager(clock)  # replace defaults to False
        for attempt in range(2):
            manager.open("same", "nopw:epsilon=5")
            manager.append("same", Fix(0.0, 0.0, 0.0))
            manager.append("same", Fix(1.0, 5.0, float(attempt)))
            if attempt == 0:
                manager.close("same")
            else:
                with pytest.raises(ServeError) as err:
                    manager.close("same")
                assert err.value.code == "storage"
        assert "same" not in manager  # the window is gone either way


def _spec_for(name: str) -> str:
    if name in ("squish", "sttrace"):
        return f"{name}:budget=6"
    spec = f"{name}:epsilon=30"
    if name == "opw-sp":
        spec += ",speed=5"
    return spec


class TestOnlineAlgorithms:
    """Every registered online algorithm serves end-to-end."""

    @pytest.mark.parametrize("name", sorted(available_online_compressors()))
    def test_full_session_lifecycle(self, clock, name, zigzag):
        manager = make_manager(clock)
        manager.open("s", _spec_for(name))
        net: dict[float, Fix] = {}
        for fix in fixes_of(zigzag):
            outcome = manager.append_batch("s", [fix])
            for point in outcome.retained:
                net[point.t] = point
            for point in outcome.evicted:  # budget compressors retract
                del net[point.t]
        record, tail = manager.close("s")
        for point in tail:
            net[point.t] = point
        retained = [net[t] for t in sorted(net)]

        assert record is not None
        assert record.n_raw_points == len(zigzag)
        assert record.n_stored_points == len(retained)
        # Endpoints always survive; everything stored round-trips.
        assert retained[0].t == zigzag.t[0]
        assert retained[-1].t == zigzag.t[-1]
        assert list(manager.store.get("s").t) == [f.t for f in retained]

    @pytest.mark.parametrize("name", ["operb", "cised", "opw-tr"])
    def test_sync_bound_recorded(self, clock, name, zigzag):
        manager = make_manager(clock)
        manager.open("s", _spec_for(name))
        for fix in fixes_of(zigzag):
            manager.append("s", fix)
        record, _ = manager.close("s")
        # The compressor's epsilon plus the codec's quantization slack.
        assert 30.0 <= record.sync_error_bound_m < 30.1

    def test_summary_reports_algorithm_and_state(self, clock):
        manager = make_manager(clock)
        session = manager.open("s", "operb:epsilon=30")
        manager.append("s", Fix(0.0, 0.0, 0.0))
        manager.append("s", Fix(1.0, 5.0, 0.0))
        summary = session.summary(clock.now)
        assert summary["algorithm"] == "operb"
        assert 0 < summary["state_size"] <= 10

    def test_stats_break_down_by_algorithm(self, clock):
        manager = make_manager(clock)
        manager.open("a", "operb:epsilon=30")
        manager.open("b", "cised:epsilon=30")
        for i in range(5):
            manager.append("a", Fix(float(i), float(i), 0.0))
        manager.append("b", Fix(0.0, 0.0, 0.0))
        by_algo = manager.stats()["fixes_in_by_algorithm"]
        assert by_algo == {"operb": 5, "cised": 1}


class TestDurabilityAndStats:
    def test_flush_persists_store_file(self, clock, tmp_path):
        store_path = tmp_path / "serve.rsto"
        manager = SessionManager(
            TrajectoryStore(), clock=clock, store_path=store_path, durable=False
        )
        manager.open("p", "nopw:epsilon=5")
        manager.append("p", Fix(0.0, 0.0, 0.0))
        manager.append("p", Fix(1.0, 10.0, 0.0))
        manager.close("p")
        assert store_path.exists()
        reloaded = TrajectoryStore.load(store_path)
        assert "p" in reloaded
        assert list(reloaded.get("p").t) == [0.0, 1.0]

    def test_stats_counters(self, clock, zigzag):
        manager = make_manager(clock, max_sessions=1, idle_timeout_s=10.0)
        manager.open("z", "opw-tr:epsilon=30")
        for fix in fixes_of(zigzag):
            manager.append("z", fix)
        with pytest.raises(ServeError):
            manager.open("extra", "nopw:epsilon=5")  # rejected: z is active
        manager.close("z")
        stats = manager.stats()
        assert stats["live_sessions"] == 0
        assert stats["sessions_opened"] == 1
        assert stats["sessions_rejected"] == 1
        assert stats["sessions_flushed"] == 1
        assert stats["fixes_in"] == len(zigzag)
        n_batch = len(OPWTR(epsilon=30.0).compress(zigzag).indices)
        assert stats["fixes_flushed"] == n_batch
        assert stats["fixes_retained"] <= n_batch  # rest came in the close tail
        assert stats["stored_objects"] == 1

    def test_invalid_configuration(self, clock):
        with pytest.raises(ValueError):
            make_manager(clock, max_sessions=0)
        with pytest.raises(ValueError):
            make_manager(clock, idle_timeout_s=0.0)


class TestEvictFailureDiagnostics:
    def test_swallowed_evict_flush_failures_are_recorded(self, clock, zigzag):
        """The idle sweep must not hide why a session's data was lost."""
        manager = make_manager(clock, max_sessions=8)
        points = fixes_of(zigzag)
        # Pre-store the id so the eviction flush collides (replace=False).
        manager.open("dup", "opw-tr:epsilon=30")
        manager.append_many("dup", points)
        manager.close("dup")
        manager.open("dup", "opw-tr:epsilon=30")
        manager.append_many("dup", points)
        clock.advance(60.0)
        evicted = manager.evict_idle()

        assert evicted == ["dup"]
        assert manager.metrics.counter("evict_flush_failures").value == 1
        failures = manager.stats()["last_evict_failures"]
        assert len(failures) == 1
        assert failures[0]["session"] == "dup"
        assert "ServeError" in failures[0]["error"]

    def test_failure_list_is_bounded(self, clock):
        from repro.serve.session import MAX_RECORDED_FAILURES

        manager = make_manager(clock)
        for i in range(MAX_RECORDED_FAILURES + 9):
            manager._record_failure(
                manager.last_evict_failures, f"s{i:03d}", ValueError("boom")
            )
        assert len(manager.last_evict_failures) == MAX_RECORDED_FAILURES
        # Oldest entries are the ones dropped.
        assert manager.last_evict_failures[0]["session"] == "s009"


class TestSequencedAppends:
    def test_append_batch_assigns_and_tracks_seq(self, clock, zigzag):
        manager = make_manager(clock)
        manager.open("z", "opw-tr:epsilon=30")
        points = fixes_of(zigzag)
        first = manager.append_batch("z", points[:4])
        second = manager.append_batch("z", points[4:8])
        assert (first.seq, second.seq) == (1, 2)
        assert manager.get("z").last_seq == 2

    def test_old_duplicate_returns_empty_outcome(self, clock, zigzag):
        manager = make_manager(clock)
        manager.open("z", "opw-tr:epsilon=30")
        points = fixes_of(zigzag)
        manager.append_batch("z", points[:4], seq=1)
        manager.append_batch("z", points[4:8], seq=2)
        stale = manager.append_batch("z", points[:4], seq=1)
        assert stale.duplicate is True
        assert stale.retained == [] and stale.accepted == 0
        assert manager.get("z").n_fixes_in == 8  # nothing re-applied


class TestManagerWithWal:
    def test_lifecycle_is_journaled_and_truncated(self, clock, tmp_path, zigzag):
        from repro.serve.wal import WalWriter, scan_wal

        wal = WalWriter(tmp_path / "wal", durable=False)
        manager = make_manager(clock, wal=wal)
        points = fixes_of(zigzag)
        manager.open("z", "opw-tr:epsilon=30")
        manager.append_many("z", points)
        wal.commit_sync()
        assert scan_wal(tmp_path / "wal").live_sessions["z"].n_fixes == len(points)

        manager.close("z")
        wal.commit_sync()
        wal.close()
        # The flush marker killed the session's WAL records.
        assert not scan_wal(tmp_path / "wal").live_sessions

    def test_recover_rebuilds_exact_state(self, clock, tmp_path, zigzag):
        from repro.serve.wal import WalWriter

        points = fixes_of(zigzag)
        wal = WalWriter(tmp_path / "wal", durable=False)
        manager = make_manager(clock, wal=wal)
        manager.open("z", "opw-tr:epsilon=30")
        manager.append_many("z", points[:6])
        wal.commit_sync()
        wal.close()  # crash: nothing flushed

        wal2 = WalWriter(tmp_path / "wal", durable=False)
        recovered = SessionManager(
            TrajectoryStore(), clock=clock, wal=wal2
        )
        outcome = recovered.recover()
        assert outcome["sessions"] == 1 and outcome["fixes"] == 6
        session = recovered.get("z")
        assert session.recovered is True
        assert session.n_fixes_in == 6
        # Replay is deterministic: continuing the session produces the
        # same downstream decisions an uninterrupted run would.
        recovered.append_many("z", points[6:])
        record, _ = recovered.close("z")
        uninterrupted = make_manager(clock)
        uninterrupted.open("z", "opw-tr:epsilon=30")
        uninterrupted.append_many("z", points)
        expected, _ = uninterrupted.close("z")
        assert record.n_stored_points == expected.n_stored_points

    def test_unrecoverable_spec_is_reported_not_fatal(self, clock, tmp_path):
        from repro.serve.wal import WalWriter

        wal = WalWriter(tmp_path / "wal", durable=False)
        wal.stage_open("bad", "no-such-algorithm:epsilon=1")
        wal.stage_open("good", "opw-tr:epsilon=30")
        wal.stage_append("good", 1, [Fix(0.0, 0.0, 0.0)])
        wal.commit_sync()
        wal.close()

        manager = SessionManager(
            TrajectoryStore(),
            clock=clock,
            wal=WalWriter(tmp_path / "wal", durable=False),
        )
        outcome = manager.recover()
        assert outcome == {
            "sessions": 1, "fixes": 1, "failed": 1, "dropped_lines": 0
        }
        assert "good" in manager and "bad" not in manager
        failures = manager.stats()["last_recovery_failures"]
        assert failures and failures[0]["session"] == "bad"
