"""Budget compressors through the serve tier.

The pieces PR-level acceptance pins: append acknowledgements carry
evictions, WAL recovery replays *through* evictions and renegotiations
bit-identically, degraded admission renegotiates live sessions down
instead of rejecting, and the wire protocol exposes all of it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.serve.session import SessionManager
from repro.serve.wal import WalWriter, scan_wal
from repro.storage.store import TrajectoryStore
from repro.types import Fix

from tests.serve.harness import connected, run_async, running_server


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make_manager(clock: FakeClock, **kwargs) -> SessionManager:
    kwargs.setdefault("max_sessions", 4)
    kwargs.setdefault("idle_timeout_s", 10.0)
    return SessionManager(TrajectoryStore(), clock=clock, **kwargs)


def walk(n: int, seed: int = 5) -> list[Fix]:
    rng = np.random.default_rng(seed)
    xy = np.cumsum(rng.normal(0.0, 10.0, size=(n, 2)), axis=0)
    return [Fix(float(i), float(xy[i, 0]), float(xy[i, 1])) for i in range(n)]


def compressor_state(session) -> tuple:
    """Everything that defines a budget session's compressor state."""
    comp = session.compressor
    return (
        comp.budget,
        comp.buffer_snapshot(),
        comp.n_evicted,
        comp.eviction_log,
    )


class TestBudgetSessions:
    def test_acknowledgements_carry_evictions(self, clock):
        manager = make_manager(clock)
        manager.open("s", "squish:budget=5")
        points = walk(20)
        net: dict[float, Fix] = {}
        for start in range(0, 20, 4):
            outcome = manager.append_batch("s", points[start : start + 4])
            for fix in outcome.retained:
                net[fix.t] = fix
            for fix in outcome.evicted:
                del net[fix.t]
            assert len(net) <= 5
        session = manager.get("s")
        assert session.n_evicted == 15
        # The client-side net state equals the session's builder.
        assert sorted(net) == list(session.builder.build().t)

    def test_stored_record_respects_the_budget(self, clock):
        manager = make_manager(clock)
        manager.open("s", "sttrace:budget=6")
        manager.append_many("s", walk(40))
        record, _ = manager.close("s")
        assert record.n_stored_points <= 6

    def test_eviction_counters_by_algorithm(self, clock):
        manager = make_manager(clock)
        manager.open("a", "squish:budget=4")
        manager.open("b", "opw-tr:epsilon=30")
        manager.append_many("a", walk(12))
        manager.append_many("b", walk(12, seed=6))
        stats = manager.stats()
        assert stats["fixes_evicted"] == 8
        assert stats["fixes_evicted_by_algorithm"] == {"squish": 8}

    def test_duplicate_replay_returns_cached_evictions(self, clock):
        manager = make_manager(clock)
        manager.open("s", "squish:budget=4")
        points = walk(10)
        first = manager.append_batch("s", points, seq=1)
        assert first.evicted
        again = manager.append_batch("s", points, seq=1)
        assert again.duplicate is True
        assert again.evicted == first.evicted
        assert again.retained == first.retained


class TestRenegotiation:
    def test_renegotiate_shrinks_and_reports(self, clock):
        manager = make_manager(clock)
        manager.open("s", "squish:budget=20")
        manager.append_many("s", walk(20))
        evicted = manager.renegotiate_session("s", 8)
        assert len(evicted) == 12
        session = manager.get("s")
        assert session.budget == 8
        assert session.budget_renegotiations == 1
        assert len(session.builder) == 8
        # The evictions the client has not seen ride the next ack.
        outcome = manager.append_batch("s", walk(22, seed=9)[20:])
        assert set(evicted) <= set(outcome.evicted)
        assert not manager.get("s").unreported_evictions

    def test_threshold_sessions_cannot_renegotiate(self, clock):
        manager = make_manager(clock)
        manager.open("t", "opw-tr:epsilon=30")
        with pytest.raises(ServeError) as err:
            manager.renegotiate_session("t", 10)
        assert err.value.code == "bad-request"

    def test_renegotiate_is_wal_logged_before_apply(self, clock, tmp_path):
        wal = WalWriter(tmp_path / "wal", durable=False)
        manager = make_manager(clock, wal=wal)
        manager.open("s", "squish:budget=10")
        manager.append_many("s", walk(10))
        manager.renegotiate_session("s", 4)
        wal.commit_sync()
        wal.close()
        ops = scan_wal(tmp_path / "wal").live_sessions["s"].ops
        assert ("r", 4) in ops
        # Ordering preserved: the renegotiation sits after the append.
        assert [op[0] for op in ops] == ["a", "r"]


class TestDegradedAdmission:
    def test_over_limit_open_renegotiates_instead_of_rejecting(self, clock):
        manager = make_manager(
            clock, max_sessions=2, degrade_budget_floor=2,
        )
        manager.open("a", "squish:budget=20")
        manager.open("b", "sttrace:budget=20")
        manager.append_many("a", walk(20))
        manager.append_many("b", walk(20, seed=6))
        session = manager.open("c", "squish:budget=20")
        assert session is manager.get("c")
        assert manager.get("a").budget == 10
        assert manager.get("b").budget == 10
        stats = manager.stats()
        assert stats["sessions_admitted_degraded"] == 1
        assert stats["sessions_renegotiated"] == 2
        assert stats["budget_renegotiations"] == 2

    def test_budgets_never_fall_below_the_floor(self, clock):
        manager = make_manager(
            clock, max_sessions=1, degrade_budget_floor=5,
            degrade_budget_factor=0.5,
        )
        manager.open("a", "squish:budget=8")
        manager.open("b", "squish:budget=8")
        assert manager.get("a").budget == 5  # not 4: clamped to the floor

    def test_without_the_policy_opens_are_rejected(self, clock):
        manager = make_manager(clock, max_sessions=1)
        manager.open("a", "squish:budget=20")
        with pytest.raises(ServeError) as err:
            manager.open("b", "squish:budget=20")
        assert err.value.code == "rejected"

    def test_threshold_only_fleet_still_rejects(self, clock):
        manager = make_manager(
            clock, max_sessions=1, degrade_budget_floor=2,
        )
        manager.open("a", "opw-tr:epsilon=30")
        with pytest.raises(ServeError) as err:
            manager.open("b", "opw-tr:epsilon=30")
        assert err.value.code == "rejected"

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            make_manager(clock, degrade_budget_floor=1)
        with pytest.raises(ValueError):
            make_manager(clock, degrade_budget_floor=4, degrade_budget_factor=1.5)


class TestWalReplayThroughEviction:
    def test_recovery_replays_evictions_bit_identically(self, clock, tmp_path):
        points = walk(30)
        wal = WalWriter(tmp_path / "wal", durable=False)
        manager = make_manager(clock, wal=wal)
        manager.open("s", "squish:budget=6")
        manager.append_many("s", points)
        pre_crash = compressor_state(manager.get("s"))
        pre_builder = list(manager.get("s").builder.build().t)
        wal.commit_sync()
        wal.close()  # crash: nothing flushed

        recovered = SessionManager(
            TrajectoryStore(), clock=clock,
            wal=WalWriter(tmp_path / "wal", durable=False),
        )
        outcome = recovered.recover()
        assert outcome["sessions"] == 1
        session = recovered.get("s")
        assert session.recovered is True
        assert compressor_state(session) == pre_crash
        assert list(session.builder.build().t) == pre_builder
        assert session.n_evicted == 24

    def test_recovery_replays_through_a_renegotiation(self, clock, tmp_path):
        points = walk(40)
        wal = WalWriter(tmp_path / "wal", durable=False)
        manager = make_manager(clock, wal=wal)
        manager.open("s", "sttrace:budget=20")
        manager.append_batch("s", points[:20])
        manager.renegotiate_session("s", 8)
        manager.append_batch("s", points[20:])
        pre_crash = compressor_state(manager.get("s"))
        wal.commit_sync()
        wal.close()

        recovered = SessionManager(
            TrajectoryStore(), clock=clock,
            wal=WalWriter(tmp_path / "wal", durable=False),
        )
        recovered.recover()
        session = recovered.get("s")
        assert compressor_state(session) == pre_crash
        assert session.budget == 8
        # Continuing after recovery matches an uninterrupted run.
        more = [Fix(40.0 + float(i), float(i), 0.0) for i in range(5)]
        recovered.append_batch("s", more)
        uninterrupted = make_manager(clock)
        uninterrupted.open("s", "sttrace:budget=20")
        uninterrupted.append_batch("s", points[:20])
        uninterrupted.renegotiate_session("s", 8)
        uninterrupted.append_batch("s", points[20:])
        uninterrupted.append_batch("s", more)
        assert compressor_state(session) == compressor_state(
            uninterrupted.get("s")
        )

    def test_unreported_evictions_survive_recovery(self, clock, tmp_path):
        """At-least-once: renegotiation evictions not yet acked to the
        client are re-queued by replay and ride the next ack."""
        wal = WalWriter(tmp_path / "wal", durable=False)
        manager = make_manager(clock, wal=wal)
        manager.open("s", "squish:budget=10")
        manager.append_many("s", walk(10))
        evicted = manager.renegotiate_session("s", 4)
        assert len(evicted) == 6
        wal.commit_sync()
        wal.close()  # crash before any append acked the evictions

        recovered = SessionManager(
            TrajectoryStore(), clock=clock,
            wal=WalWriter(tmp_path / "wal", durable=False),
        )
        recovered.recover()
        outcome = recovered.append_batch(
            "s", [Fix(10.0, 0.0, 0.0)]
        )
        assert set(evicted) <= set(outcome.evicted)


@pytest.mark.serve
class TestBudgetOverTheWire:
    def test_append_response_carries_evictions(self):
        points = walk(30)

        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("w", "squish:budget=5")
                    net: dict[float, Fix] = {}
                    for start in range(0, 30, 5):
                        kept, gone = await client.append_events(
                            "w", points[start : start + 5]
                        )
                        for fix in kept:
                            net[fix.t] = fix
                        for fix in gone:
                            del net[fix.t]
                        assert len(net) <= 5
                    summary = await client.close_session("w")
                    return net, summary

        net, summary = run_async(scenario())
        assert len(net) == 5
        assert summary["stored"]["n_stored_points"] == 5
        assert summary["stored"]["n_raw_points"] == 30

    def test_threshold_responses_stay_unchanged(self):
        """No ``evicted`` key on threshold-compressor responses — the
        wire format of existing clients is untouched."""
        points = walk(12)

        async def scenario():
            async with running_server() as server:
                async with connected(server) as client:
                    await client.open("t", "opw-tr:epsilon=30")
                    response = await client.request(
                        {
                            "op": "append",
                            "session": "t",
                            "fixes": [[f.t, f.x, f.y] for f in points],
                        }
                    )
                    return response

        response = run_async(scenario())
        assert "evicted" not in response
        assert "n_evicted" not in response

    def test_resume_reports_the_budget(self):
        points = walk(20)

        async def scenario():
            async with running_server() as server:
                async with connected(server) as first:
                    await first.open("r", "sttrace:budget=6")
                    await first.append("r", points[:10])
                async with connected(server) as second:
                    return await second.resume("r")

        resumed = run_async(scenario())
        assert resumed["budget"] == 6
