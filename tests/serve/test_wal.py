"""Unit tests of the serve tier's write-ahead log.

Covers the contract pieces the chaos scenarios lean on: group commit
durability and coalescing, segment liveness/truncation, torn-tail
recovery, sticky failure, and the scan's demultiplexing of a shared log
back into per-session replay streams.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import WalError
from repro.serve.faults import Fault, FaultInjector
from repro.serve.wal import WalWriter, scan_wal
from repro.types import Fix


def fixes(*triples):
    return [Fix(*t) for t in triples]


class TestStageAndCommit:
    def test_committed_records_survive_a_rescan(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "opw-tr:epsilon=10")
        wal.stage_append("a", 1, fixes((0.0, 1.5, 2.5), (1.0, 3.0, 4.0)))
        wal.stage_append("a", 2, fixes((2.0, 5.0, 6.0)))
        wal.commit_sync()
        wal.close()

        scan = scan_wal(tmp_path)
        assert list(scan.live_sessions) == ["a"]
        session = scan.live_sessions["a"]
        assert session.spec == "opw-tr:epsilon=10"
        assert [seq for seq, _ in session.appends] == [1, 2]
        # Floats round-trip exactly through the JSON log lines.
        assert session.appends[0][1] == fixes((0.0, 1.5, 2.5), (1.0, 3.0, 4.0))
        assert session.last_seq == 2
        assert session.n_fixes == 3

    def test_uncommitted_records_are_not_on_disk(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        assert wal.pending_records == 1
        assert scan_wal(tmp_path).records == 0
        wal.commit_sync()
        assert wal.pending_records == 0
        assert scan_wal(tmp_path).records == 1

    def test_commit_with_nothing_staged_is_a_noop(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.commit_sync()
        assert wal.stats()["commits"] == 0

    def test_group_commit_coalesces_concurrent_committers(self, tmp_path):
        async def scenario():
            wal = WalWriter(tmp_path, durable=False)
            for i in range(8):
                wal.stage_append("a", i + 1, fixes((float(i), 0.0, 0.0)))
            await asyncio.gather(*(wal.commit() for _ in range(8)))
            return wal.stats()

        stats = asyncio.run(scenario())
        assert stats["committed_records"] == 8
        # One writer takes the lock and flushes the whole group; the
        # other seven find their records already durable.
        assert stats["commits"] == 1

    def test_flushed_marker_truncates_the_segment(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False, segment_bytes=1)
        wal.stage_open("a", "spec")
        wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        wal.commit_sync()  # tiny segment_bytes: rotates after this commit
        wal.stage_flushed("a")
        wal.commit_sync()
        wal.close()
        assert not scan_wal(tmp_path).live_sessions
        # The flushed session's segments are deleted outright.
        assert list(tmp_path.glob("seg-*.wal")) == []

    def test_dead_segments_are_dropped_at_startup(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.stage_flushed("a")
        wal.commit_sync()
        wal.close()
        assert list(tmp_path.glob("seg-*.wal"))  # flushed, but still on disk
        WalWriter(tmp_path, durable=False).close()
        assert list(tmp_path.glob("seg-*.wal")) == []


class TestRecoveryEdges:
    def test_torn_tail_is_dropped_and_counted(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        wal.commit_sync()
        wal.close()
        segment = next(iter(tmp_path.glob("seg-*.wal")))
        with segment.open("ab") as handle:
            handle.write(b'00000000 {"k":"a","s":"a","q":2')  # torn mid-write

        scan = scan_wal(tmp_path)
        assert scan.dropped_lines == 1
        assert scan.live_sessions["a"].last_seq == 1

    def test_damage_mid_log_discards_everything_after(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.commit_sync()
        wal.close()
        segment = next(iter(tmp_path.glob("seg-*.wal")))
        good = segment.read_bytes()
        segment.write_bytes(good + b"garbage line\n" + good)

        scan = scan_wal(tmp_path)
        # The intact prefix survives; damaged line + everything after is
        # dropped (those bytes postdate the last acknowledged fsync).
        assert scan.records == 1
        assert scan.dropped_lines == 2

    def test_missing_directory_recovers_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "never-created")
        assert not scan.sessions and scan.records == 0

    def test_reopened_id_after_flush_recovers_fresh_session(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec-one")
        wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        wal.stage_flushed("a")
        wal.stage_open("a", "spec-two")
        wal.stage_append("a", 1, fixes((5.0, 1.0, 1.0)))
        wal.commit_sync()
        wal.close()

        scan = scan_wal(tmp_path)
        session = scan.live_sessions["a"]
        assert session.spec == "spec-two"
        assert session.n_fixes == 1


class TestStickyFailure:
    def test_fsync_failure_poisons_the_writer(self, tmp_path):
        faults = FaultInjector().set(
            "wal.fsync", Fault(at=1, error=OSError("no space"), once=False)
        )
        wal = WalWriter(tmp_path, durable=False, faults=faults)
        wal.stage_open("a", "spec")
        with pytest.raises(WalError):
            wal.commit_sync()
        assert wal.failed is not None
        assert wal.dirty_sessions() == {"a"}
        # Sticky: staging refuses too, so nothing can be acked again.
        with pytest.raises(WalError):
            wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        assert wal.stats()["failed"] is True
        assert wal.stats()["commit_failures"] == 1

    def test_fault_fires_on_the_configured_commit(self, tmp_path):
        faults = FaultInjector().set(
            "wal.fsync", Fault(at=3, error=OSError("late failure"), once=False)
        )
        wal = WalWriter(tmp_path, durable=False, faults=faults)
        for seq in (1, 2):
            wal.stage_append("a", seq, fixes((float(seq), 0.0, 0.0)))
            wal.commit_sync()  # commits 1 and 2 succeed
        wal.stage_append("a", 3, fixes((3.0, 0.0, 0.0)))
        with pytest.raises(WalError):
            wal.commit_sync()
        # Only the first two batches are durable (no open record staged
        # here, so the scan sees appends without a session: count lines).
        assert faults.get("wal.fsync").triggered == 1


class TestSegmentRotation:
    def test_rotation_keeps_live_sessions_replayable(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False, segment_bytes=128)
        wal.stage_open("a", "spec")
        wal.commit_sync()
        for seq in range(1, 8):
            wal.stage_append("a", seq, fixes((float(seq), 1.0, 2.0)))
            wal.commit_sync()
        wal.close()
        assert len(list(tmp_path.glob("seg-*.wal"))) > 1  # actually rotated

        scan = scan_wal(tmp_path)
        session = scan.live_sessions["a"]
        assert [seq for seq, _ in session.appends] == list(range(1, 8))
