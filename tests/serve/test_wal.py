"""Unit tests of the serve tier's write-ahead log.

Covers the contract pieces the chaos scenarios lean on: group commit
durability and coalescing, segment liveness/truncation, torn-tail
recovery, sticky failure, and the scan's demultiplexing of a shared log
back into per-session replay streams.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exceptions import WalError
from repro.io_util import encode_crc_line
from repro.serve.faults import Fault, FaultInjector
from repro.serve.wal import WalWriter, scan_wal
from repro.types import Fix


def fixes(*triples):
    return [Fix(*t) for t in triples]


class TestStageAndCommit:
    def test_committed_records_survive_a_rescan(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "opw-tr:epsilon=10")
        wal.stage_append("a", 1, fixes((0.0, 1.5, 2.5), (1.0, 3.0, 4.0)))
        wal.stage_append("a", 2, fixes((2.0, 5.0, 6.0)))
        wal.commit_sync()
        wal.close()

        scan = scan_wal(tmp_path)
        assert list(scan.live_sessions) == ["a"]
        session = scan.live_sessions["a"]
        assert session.spec == "opw-tr:epsilon=10"
        assert [seq for seq, _ in session.appends] == [1, 2]
        # Floats round-trip exactly through the JSON log lines.
        assert session.appends[0][1] == fixes((0.0, 1.5, 2.5), (1.0, 3.0, 4.0))
        assert session.last_seq == 2
        assert session.n_fixes == 3

    def test_uncommitted_records_are_not_on_disk(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        assert wal.pending_records == 1
        assert scan_wal(tmp_path).records == 0
        wal.commit_sync()
        assert wal.pending_records == 0
        assert scan_wal(tmp_path).records == 1

    def test_commit_with_nothing_staged_is_a_noop(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.commit_sync()
        assert wal.stats()["commits"] == 0

    def test_group_commit_coalesces_concurrent_committers(self, tmp_path):
        async def scenario():
            wal = WalWriter(tmp_path, durable=False)
            for i in range(8):
                wal.stage_append("a", i + 1, fixes((float(i), 0.0, 0.0)))
            await asyncio.gather(*(wal.commit() for _ in range(8)))
            return wal.stats()

        stats = asyncio.run(scenario())
        assert stats["committed_records"] == 8
        # One writer takes the lock and flushes the whole group; the
        # other seven find their records already durable.
        assert stats["commits"] == 1

    def test_flushed_marker_truncates_the_segment(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False, segment_bytes=1)
        wal.stage_open("a", "spec")
        wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        wal.commit_sync()  # tiny segment_bytes: rotates after this commit
        wal.stage_flushed("a")
        wal.commit_sync()
        wal.close()
        assert not scan_wal(tmp_path).live_sessions
        # The flushed session's segments are deleted outright.
        assert list(tmp_path.glob("seg-*.wal")) == []

    def test_dead_segments_are_dropped_at_startup(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.stage_flushed("a")
        wal.commit_sync()
        wal.close()
        assert list(tmp_path.glob("seg-*.wal"))  # flushed, but still on disk
        WalWriter(tmp_path, durable=False).close()
        assert list(tmp_path.glob("seg-*.wal")) == []


class TestRecoveryEdges:
    def test_torn_tail_is_dropped_and_counted(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        wal.commit_sync()
        wal.close()
        segment = next(iter(tmp_path.glob("seg-*.wal")))
        with segment.open("ab") as handle:
            handle.write(b'00000000 {"k":"a","s":"a","q":2')  # torn mid-write

        scan = scan_wal(tmp_path)
        assert scan.dropped_lines == 1
        assert scan.live_sessions["a"].last_seq == 1

    def test_damage_mid_log_discards_everything_after(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.commit_sync()
        wal.close()
        segment = next(iter(tmp_path.glob("seg-*.wal")))
        good = segment.read_bytes()
        segment.write_bytes(good + b"garbage line\n" + good)

        scan = scan_wal(tmp_path)
        # The intact prefix survives; damaged line + everything after is
        # dropped (those bytes postdate the last acknowledged fsync).
        assert scan.records == 1
        assert scan.dropped_lines == 2

    def test_torn_tail_is_truncated_by_the_next_writer(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        wal.commit_sync()
        wal.close()
        segment = next(iter(tmp_path.glob("seg-*.wal")))
        intact = segment.read_bytes()
        with segment.open("ab") as handle:
            handle.write(b'00000000 {"k":"a","s":"a","q":2')

        recovered = WalWriter(tmp_path, durable=False)
        assert recovered.recovered.dropped_lines == 1
        recovered.close()
        # The damaged bytes are physically gone, not merely ignored.
        assert segment.read_bytes() == intact
        assert scan_wal(tmp_path).dropped_lines == 0

    def test_acked_records_survive_a_second_restart_after_torn_tail(
        self, tmp_path
    ):
        """The REVIEW high-severity case: damage + new acks + crash again.

        Without startup truncation the second scan rediscovers the torn
        line in the old segment and discards the newer segment's
        acknowledged records wholesale.
        """
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        wal.commit_sync()
        wal.close()
        segment = next(iter(tmp_path.glob("seg-*.wal")))
        with segment.open("ab") as handle:
            handle.write(b'00000000 {"k":"a","s":"a","q":2')

        second = WalWriter(tmp_path, durable=False)  # restart one
        assert second.recovered.live_sessions["a"].last_seq == 1
        second.stage_append("a", 2, fixes((1.0, 1.0, 1.0)))
        second.commit_sync()  # acknowledged into a newer segment
        second.close()

        third = WalWriter(tmp_path, durable=False)  # restart two
        session = third.recovered.live_sessions["a"]
        assert [seq for seq, _ in session.appends] == [1, 2]
        assert third.recovered.dropped_lines == 0
        third.close()

    def test_valid_crc_but_invalid_record_is_damage(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        wal.commit_sync()
        wal.close()
        segment = next(iter(tmp_path.glob("seg-*.wal")))
        bad = json.dumps({"k": "a", "s": "a", "q": "not-an-int", "f": "x"})
        tail = json.dumps(
            {"k": "a", "s": "a", "q": 2, "f": [2.0, 5.0, 5.0]}
        )
        with segment.open("a") as handle:
            handle.write(encode_crc_line(bad))
            handle.write(encode_crc_line(tail))

        scan = scan_wal(tmp_path)
        # Corruption stops the scan — the structurally valid append
        # after it must NOT be applied over a silently dropped batch.
        assert scan.dropped_lines == 2
        assert scan.live_sessions["a"].last_seq == 1

    def test_non_utf8_tail_is_damage_not_a_crash(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        wal.commit_sync()
        wal.close()
        segment = next(iter(tmp_path.glob("seg-*.wal")))
        with segment.open("ab") as handle:
            handle.write(b"\xff\xfe torn binary tail")

        scan = scan_wal(tmp_path)
        assert scan.dropped_lines == 1
        assert list(scan.live_sessions) == ["a"]

    def test_missing_directory_recovers_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "never-created")
        assert not scan.sessions and scan.records == 0

    def test_reopened_id_after_flush_recovers_fresh_session(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec-one")
        wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        wal.stage_flushed("a")
        wal.stage_open("a", "spec-two")
        wal.stage_append("a", 1, fixes((5.0, 1.0, 1.0)))
        wal.commit_sync()
        wal.close()

        scan = scan_wal(tmp_path)
        session = scan.live_sessions["a"]
        assert session.spec == "spec-two"
        assert session.n_fixes == 1


class TestStickyFailure:
    def test_fsync_failure_poisons_the_writer(self, tmp_path):
        faults = FaultInjector().set(
            "wal.fsync", Fault(at=1, error=OSError("no space"), once=False)
        )
        wal = WalWriter(tmp_path, durable=False, faults=faults)
        wal.stage_open("a", "spec")
        with pytest.raises(WalError):
            wal.commit_sync()
        assert wal.failed is not None
        assert wal.dirty_sessions() == {"a"}
        # Sticky: staging refuses too, so nothing can be acked again.
        with pytest.raises(WalError):
            wal.stage_append("a", 1, fixes((0.0, 0.0, 0.0)))
        assert wal.stats()["failed"] is True
        assert wal.stats()["commit_failures"] == 1

    def test_sessions_staged_during_a_commit_stay_dirty(self, tmp_path):
        """A record staged while the group write is in flight is not
        durable yet; its session must survive the commit's dirty-set
        bookkeeping or a later failed commit would not discard it."""
        wal = WalWriter(tmp_path, durable=False)
        wal.stage_open("a", "spec")
        original = wal._encode_and_write

        def write_then_stage(group):
            written = original(group)
            # Simulates an append arriving while the executor write of
            # the committing group is still in flight.
            wal.stage_open("b", "spec")
            return written

        wal._encode_and_write = write_then_stage
        wal.commit_sync()
        wal._encode_and_write = original

        assert wal.dirty_sessions() == {"b"}
        assert wal.pending_records == 1
        wal.commit_sync()
        assert wal.dirty_sessions() == set()
        assert wal.pending_records == 0
        wal.close()

    def test_committer_parked_behind_a_poison_refuses_to_write(self, tmp_path):
        """Both concurrent committers must fail when the lock holder
        poisons the log; the parked one must not write afterwards or
        mark the lost records committed."""

        async def scenario():
            faults = FaultInjector().set(
                "wal.fsync", Fault(at=1, error=OSError("boom"), once=True)
            )
            wal = WalWriter(tmp_path, durable=False, faults=faults)
            wal.stage_open("a", "spec")
            results = await asyncio.gather(
                wal.commit(), wal.commit(), return_exceptions=True
            )
            return wal, results

        wal, results = asyncio.run(scenario())
        assert all(isinstance(r, WalError) for r in results), results
        # The single-shot fault would let a second write succeed; the
        # parked committer must never have attempted one.
        assert wal.stats()["committed_records"] == 0
        assert wal.stats()["commits"] == 0
        assert wal.dirty_sessions() == {"a"}

    def test_fault_fires_on_the_configured_commit(self, tmp_path):
        faults = FaultInjector().set(
            "wal.fsync", Fault(at=3, error=OSError("late failure"), once=False)
        )
        wal = WalWriter(tmp_path, durable=False, faults=faults)
        for seq in (1, 2):
            wal.stage_append("a", seq, fixes((float(seq), 0.0, 0.0)))
            wal.commit_sync()  # commits 1 and 2 succeed
        wal.stage_append("a", 3, fixes((3.0, 0.0, 0.0)))
        with pytest.raises(WalError):
            wal.commit_sync()
        # Only the first two batches are durable (no open record staged
        # here, so the scan sees appends without a session: count lines).
        assert faults.get("wal.fsync").triggered == 1


class TestSegmentRotation:
    def test_rotation_keeps_live_sessions_replayable(self, tmp_path):
        wal = WalWriter(tmp_path, durable=False, segment_bytes=128)
        wal.stage_open("a", "spec")
        wal.commit_sync()
        for seq in range(1, 8):
            wal.stage_append("a", seq, fixes((float(seq), 1.0, 2.0)))
            wal.commit_sync()
        wal.close()
        assert len(list(tmp_path.glob("seg-*.wal"))) > 1  # actually rotated

        scan = scan_wal(tmp_path)
        session = scan.live_sessions["a"]
        assert [seq for seq, _ in session.appends] == list(range(1, 8))
