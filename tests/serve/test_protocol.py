"""Unit tests for the NDJSON wire protocol helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ServeError
from repro.serve import protocol
from repro.types import Fix


class TestEncodeDecode:
    def test_round_trip(self):
        message = {"op": "append", "session": "a", "fixes": [[0.0, 1.5, -2.25]]}
        line = protocol.encode_message(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode_line(line) == message

    def test_float_round_trip_is_exact(self):
        # repr-based float JSON makes the wire loss-free; the served/batch
        # equivalence guarantee rests on this.
        values = [0.1, 1.0 / 3.0, 1e-17, 123456.789012345, -9.87654321e12]
        line = protocol.encode_message({"v": values})
        assert protocol.decode_line(line)["v"] == values

    def test_non_finite_floats_refused(self):
        with pytest.raises(ValueError):
            protocol.encode_message({"v": float("nan")})

    def test_bad_json_has_code(self):
        with pytest.raises(ServeError) as err:
            protocol.decode_line(b"{nope\n")
        assert err.value.code == "bad-json"

    def test_non_object_has_code(self):
        with pytest.raises(ServeError) as err:
            protocol.decode_line(b"[1,2,3]\n")
        assert err.value.code == "bad-request"


class TestParseFix:
    def test_valid_triple(self):
        assert protocol.parse_fix([1.0, 2.0, 3.0]) == Fix(1.0, 2.0, 3.0)

    def test_accepts_integers(self):
        assert protocol.parse_fix([1, 2, 3]) == Fix(1.0, 2.0, 3.0)

    @pytest.mark.parametrize(
        "bad",
        [
            [1.0, 2.0],
            [1.0, 2.0, 3.0, 4.0],
            "txy",
            {"t": 1, "x": 2, "y": 3},
            [1.0, "x", 3.0],
            [float("inf"), 0.0, 0.0],
            [0.0, float("nan"), 0.0],
            None,
            7,
        ],
    )
    def test_invalid_fix_has_code(self, bad):
        with pytest.raises(ServeError) as err:
            protocol.parse_fix(bad)
        assert err.value.code == "bad-fix"

    def test_render_is_parse_inverse(self):
        fixes = [Fix(0.0, 0.5, -1.25), Fix(1.0, 2.0, 3.0)]
        assert [protocol.parse_fix(w) for w in protocol.render_fixes(fixes)] == fixes


class TestResponses:
    def test_ok_response_echoes_session(self):
        response = protocol.ok_response("open", "s1", spec="nopw:epsilon=5")
        assert response["ok"] is True
        assert response["op"] == "open"
        assert response["session"] == "s1"
        assert response["spec"] == "nopw:epsilon=5"

    def test_error_response_carries_known_code(self):
        response = protocol.error_response("append", "bad-fix", "boom", "s1")
        assert response["ok"] is False
        assert response["code"] in protocol.ERROR_CODES
        assert response["error"] == "boom"

    def test_all_server_codes_are_catalogued(self):
        # The catalogue is the client's contract; keep it closed.
        assert set(protocol.ERROR_CODES) >= {
            "bad-json", "bad-request", "bad-spec", "bad-fix", "rejected",
            "duplicate-session", "unknown-session", "out-of-order",
            "storage", "internal",
        }
