"""The crash-safety acceptance tests, driven by the chaos harness.

Each test runs one scripted disaster and asserts the durability
contract: the acknowledged prefix of every session is recovered
byte-identical to an uninterrupted run (see :mod:`repro.serve.chaos`
for the exact assertion). The ``sigkill`` scenario spawns real
``repro serve`` subprocesses and is additionally ``slow``-marked.
"""

from __future__ import annotations

import pytest

from tests.serve.chaos import FAST_SCENARIOS, SLOW_SCENARIOS, run_scenario

pytestmark = [pytest.mark.serve, pytest.mark.chaos]


@pytest.mark.parametrize("scenario", FAST_SCENARIOS)
@pytest.mark.parametrize("seed", [7, 23])
def test_fast_scenario_recovers_acked_prefix(scenario, seed):
    result = run_scenario(scenario, seed=seed, n_fixes=100)
    assert result.passed, f"{scenario} (seed {seed}): {result.detail}"
    # The window invariant is part of the harness; re-assert the numbers
    # it reported are coherent so a silently-degenerate run (0 fixes
    # acked, trivially 'recovered') cannot pass.
    assert result.detail["acked_raw"] > 0
    assert (
        result.detail["acked_raw"]
        <= result.detail["recovered_raw"]
        <= result.detail["sent_raw"]
    )


def test_fsync_failure_refuses_instead_of_lying():
    """The specific wal-failure behaviours beyond prefix recovery."""
    result = run_scenario("fsync-fail", seed=11, n_fixes=100)
    assert result.passed, result.detail
    assert result.detail["failure_code"] == "wal-failure"
    # Something real was rejected: the acked prefix stops strictly
    # before everything that was sent.
    assert result.detail["acked_raw"] < 100


def test_torn_tail_is_counted_not_fatal():
    result = run_scenario("torn-tail", seed=11, n_fixes=100)
    assert result.passed, result.detail
    assert result.detail["dropped_lines"] >= 1
    # The first recovery truncated the damage out of the segment, so the
    # second crash-restart inside the scenario rediscovered none of it.
    assert result.detail["dropped_lines_second_restart"] == 0


def test_disconnect_resend_is_deduplicated():
    result = run_scenario("disconnect", seed=11, n_fixes=100)
    assert result.passed, result.detail
    assert result.detail["duplicates_replayed"] == 1


@pytest.mark.slow
@pytest.mark.parametrize("scenario", SLOW_SCENARIOS)
def test_process_murder_recovers_acked_prefix(scenario):
    result = run_scenario(scenario, seed=7, n_fixes=100)
    assert result.passed, result.detail
    if scenario == "sigkill":
        # Single server: the client must have actually redialled.
        assert result.detail["reconnects"] >= 1
    else:  # worker-kill: the fleet absorbed the murder
        assert result.detail["respawns"] >= 1
        assert set(result.detail["worker_exit_codes"].values()) == {0}
        # Both shards held sessions, so the kill provably hit live state
        # while the surviving shard kept serving.
        assert set(result.detail["owners"].values()) == {
            "worker-0", "worker-1"
        }
