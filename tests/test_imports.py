"""Every module imports cleanly and exports what it declares."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro


def _walk_modules() -> list[str]:
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return sorted(names)


@pytest.mark.parametrize("name", _walk_modules())
def test_module_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", _walk_modules())
def test_declared_exports_exist(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_no_duplicate_all_entries():
    for name in _walk_modules():
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", None)
        if exported is not None:
            assert len(exported) == len(set(exported)), name


def test_package_count_matches_design():
    """DESIGN.md's inventory: these subpackages exist (and only these)."""
    subpackages = {
        name.split(".")[1]
        for name in _walk_modules()
        if name.count(".") == 1
        and not name.endswith(("cli", "__main__", "exceptions", "types", "io_util"))
    }
    assert subpackages == {
        "analysis",
        "core",
        "datagen",
        "error",
        "experiments",
        "geometry",
        "obs",
        "pipeline",
        "query",
        "serve",
        "storage",
        "streaming",
        "trajectory",
    }
