"""Tests for the batch pipeline subsystem."""
