"""Tests for the fault-isolated serial/parallel executor."""

from __future__ import annotations

import pytest

from repro.exceptions import PipelineError
from repro.pipeline.executor import (
    FailurePolicy,
    ItemFailure,
    ItemSuccess,
    execute,
    summarize_traceback,
)


def _square(x):
    """Module-level so it pickles into worker processes."""
    return x * x


def _fail_on_odd(x):
    """Module-level task that rejects odd payloads."""
    if x % 2:
        raise ValueError(f"odd payload {x}")
    return x


class _FlakyOnce:
    """Serial-only helper: fails each payload's first attempt."""

    def __init__(self):
        self.seen = set()

    def __call__(self, x):
        if x not in self.seen:
            self.seen.add(x)
            raise RuntimeError(f"transient {x}")
        return x


class TestFailurePolicy:
    @pytest.mark.parametrize(
        ("text", "mode", "retries"),
        [
            ("raise", "raise", 0),
            ("skip", "skip", 0),
            ("retry", "retry", 1),
            ("retry(3)", "retry", 3),
            ("retry:2", "retry", 2),
            ("  SKIP ", "skip", 0),
        ],
    )
    def test_parse_valid(self, text, mode, retries):
        policy = FailurePolicy.parse(text)
        assert (policy.mode, policy.retries) == (mode, retries)

    def test_parse_passes_policies_through(self):
        policy = FailurePolicy("retry", 2)
        assert FailurePolicy.parse(policy) is policy

    @pytest.mark.parametrize("text", ["explode", "retry(-1)", "retry()", ""])
    def test_parse_invalid(self, text):
        with pytest.raises(PipelineError, match="unknown failure policy"):
            FailurePolicy.parse(text)

    def test_unknown_mode_rejected_at_construction(self):
        with pytest.raises(PipelineError, match="unknown failure mode"):
            FailurePolicy("explode")

    def test_attempts(self):
        assert FailurePolicy("raise").attempts == 1
        assert FailurePolicy("skip").attempts == 1
        assert FailurePolicy("retry", 2).attempts == 3

    def test_str_round_trips(self):
        for text in ("raise", "skip", "retry(2)"):
            assert str(FailurePolicy.parse(text)) == text


class TestExecute:
    def test_serial_results_in_input_order(self):
        items = [(f"id-{i}", i) for i in range(7)]
        outcomes = execute(_square, items, workers=0)
        assert all(isinstance(o, ItemSuccess) for o in outcomes)
        assert [o.value for o in outcomes] == [i * i for i in range(7)]
        assert [o.item_id for o in outcomes] == [f"id-{i}" for i in range(7)]

    def test_parallel_matches_serial_and_preserves_order(self):
        items = [(f"id-{i}", i) for i in range(23)]
        serial = execute(_square, items, workers=0)
        parallel = execute(_square, items, workers=3, chunk_size=4)
        assert [o.value for o in parallel] == [o.value for o in serial]
        assert [o.index for o in parallel] == list(range(23))

    def test_raise_policy_propagates_original_exception(self):
        items = [("a", 2), ("b", 3), ("c", 4)]
        with pytest.raises(ValueError, match="odd payload 3"):
            execute(_fail_on_odd, items, policy="raise")

    def test_raise_policy_propagates_from_workers(self):
        items = [("a", 2), ("b", 3), ("c", 4)]
        with pytest.raises(ValueError, match="odd payload 3"):
            execute(_fail_on_odd, items, workers=2, policy="raise")

    def test_skip_policy_records_structured_failures(self):
        items = [(f"id-{i}", i) for i in range(6)]
        outcomes = execute(_fail_on_odd, items, policy="skip")
        failures = [o for o in outcomes if not o.ok]
        assert len(failures) == 3
        failure = failures[0]
        assert isinstance(failure, ItemFailure)
        assert failure.item_id == "id-1"
        assert failure.error_type == "ValueError"
        assert "odd payload 1" in failure.message
        assert "_fail_on_odd" in failure.traceback_summary
        assert failure.attempts == 1
        # successes keep their values and original positions
        assert [o.value for o in outcomes if o.ok] == [0, 2, 4]

    def test_skip_policy_in_parallel(self):
        items = [(f"id-{i}", i) for i in range(10)]
        outcomes = execute(_fail_on_odd, items, workers=2, policy="skip")
        assert [o.ok for o in outcomes] == [i % 2 == 0 for i in range(10)]

    def test_retry_policy_succeeds_on_second_attempt(self):
        items = [("a", 1), ("b", 2)]
        outcomes = execute(_FlakyOnce(), items, policy="retry(2)")
        assert all(o.ok for o in outcomes)
        assert [o.attempts for o in outcomes] == [2, 2]

    def test_retry_policy_exhausts_then_records_failure(self):
        outcomes = execute(_fail_on_odd, [("a", 1)], policy="retry(2)")
        (failure,) = outcomes
        assert not failure.ok
        assert failure.attempts == 3

    def test_failure_to_dict_is_json_ready(self):
        (failure,) = execute(_fail_on_odd, [("a", 1)], policy="skip")
        data = failure.to_dict()
        assert data["item_id"] == "a"
        assert data["error_type"] == "ValueError"
        assert data["index"] == 0
        assert data["attempts"] == 1

    def test_empty_input(self):
        assert execute(_square, []) == []


class TestSummarizeTraceback:
    def test_includes_type_message_and_frames(self):
        try:
            _fail_on_odd(7)
        except ValueError as exc:
            summary = summarize_traceback(exc)
        assert summary.startswith("ValueError: odd payload 7")
        assert "_fail_on_odd" in summary

    def test_exception_without_traceback(self):
        summary = summarize_traceback(RuntimeError("bare"))
        assert summary == "RuntimeError: bare"
