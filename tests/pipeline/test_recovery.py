"""Tests for retry backoff, malformed-input handling, and resumable runs."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import CheckpointError, PipelineError, TrajectoryError
from repro.pipeline import executor as executor_module
from repro.pipeline.checkpoint import JOURNAL_NAME, RunCheckpoint
from repro.pipeline.engine import BatchEngine, load_fleet
from repro.pipeline.executor import (
    FailurePolicy,
    MalformedItemError,
    execute,
)
from repro.obs import Registry
from repro.trajectory import Trajectory
from repro.trajectory.io import write_csv


@pytest.fixture
def csv_fleet_dir(tmp_path) -> Path:
    rng = np.random.default_rng(3)
    directory = tmp_path / "fleet"
    directory.mkdir()
    for i in range(4):
        t = np.arange(80, dtype=float) * 10.0
        xy = np.cumsum(rng.normal(0.0, 30.0, size=(80, 2)), axis=0)
        write_csv(
            Trajectory(t, xy, object_id=f"walk-{i}"), directory / f"walk-{i}.csv"
        )
    return directory


class TestRetryBackoff:
    def test_parse_backoff_spec(self):
        policy = FailurePolicy.parse("retry(3,backoff=0.1)")
        assert policy.mode == "retry"
        assert policy.retries == 3
        assert policy.backoff == 0.1

    def test_str_round_trips(self):
        for spec in ["retry(3,backoff=0.1)", "retry(2)", "skip"]:
            assert str(FailurePolicy.parse(spec)) == spec

    def test_negative_backoff_rejected(self):
        with pytest.raises(PipelineError, match="backoff"):
            FailurePolicy("retry", 2, -1.0)

    def test_no_delay_without_backoff(self):
        policy = FailurePolicy.parse("retry(3)")
        assert policy.retry_delay("item", 2) == 0.0

    def test_no_delay_before_first_attempt(self):
        policy = FailurePolicy.parse("retry(3,backoff=0.1)")
        assert policy.retry_delay("item", 1) == 0.0

    def test_delay_deterministic_and_jittered(self):
        policy = FailurePolicy.parse("retry(5,backoff=0.1)")
        d2 = policy.retry_delay("item-a", 2)
        assert d2 == policy.retry_delay("item-a", 2)
        assert 0.05 <= d2 < 0.15  # base 0.1, jitter in [0.5, 1.5)
        assert policy.retry_delay("item-b", 2) != d2

    def test_delay_doubles_per_attempt(self):
        policy = FailurePolicy.parse("retry(5,backoff=0.2)")
        for attempt in (3, 4, 5):
            lower = 0.2 * 2 ** (attempt - 2) * 0.5
            upper = 0.2 * 2 ** (attempt - 2) * 1.5
            assert lower <= policy.retry_delay("x", attempt) < upper

    def test_execute_sleeps_the_policy_schedule(self, monkeypatch):
        slept: list[float] = []
        monkeypatch.setattr(executor_module, "_sleep", slept.append)

        def always_fails(_payload):
            raise RuntimeError("nope")

        policy = FailurePolicy.parse("retry(2,backoff=0.1)")
        outcomes = execute(always_fails, [("it", 0)], policy=policy)
        assert not outcomes[0].ok and outcomes[0].attempts == 3
        assert slept == [policy.retry_delay("it", 2), policy.retry_delay("it", 3)]

    def test_execute_does_not_sleep_after_success(self, monkeypatch):
        slept: list[float] = []
        monkeypatch.setattr(executor_module, "_sleep", slept.append)
        policy = FailurePolicy.parse("retry(3,backoff=0.5)")
        outcomes = execute(lambda payload: payload, [("it", 42)], policy=policy)
        assert outcomes[0].ok and slept == []


class TestMalformedModes:
    @staticmethod
    def _bad_input(_payload):
        raise MalformedItemError("unreadable input")

    def test_defer_follows_policy(self):
        outcomes = execute(self._bad_input, [("a", 0)], policy="skip")
        assert not outcomes[0].ok

    def test_defer_raise_policy_propagates(self):
        with pytest.raises(MalformedItemError):
            execute(self._bad_input, [("a", 0)], policy="raise")

    def test_raise_mode_overrides_skip_policy(self):
        with pytest.raises(MalformedItemError):
            execute(
                self._bad_input, [("a", 0)], policy="skip", malformed_mode="raise"
            )

    def test_isolate_never_retries(self):
        calls: list[str] = []

        def bad(_payload):
            calls.append("call")
            raise MalformedItemError("bad bytes")

        outcomes = execute(
            bad, [("a", 0)], policy="retry(5)", malformed_mode="isolate"
        )
        assert not outcomes[0].ok
        assert outcomes[0].malformed
        assert calls == ["call"]  # malformed input is not retried

    def test_isolate_never_aborts(self):
        outcomes = execute(
            self._bad_input, [("a", 0)], policy="raise", malformed_mode="isolate"
        )
        assert not outcomes[0].ok and outcomes[0].malformed


class TestEngineQuarantine:
    def test_skip_malformed_file(self, csv_fleet_dir):
        (csv_fleet_dir / "broken.csv").write_text("t,x,y\nno,numbers,here\n")
        engine = BatchEngine("td-tr:epsilon=30", on_malformed="skip")
        run = engine.run(csv_fleet_dir)
        assert len(run.failures) == 1
        assert len(run.results) == 4
        assert (csv_fleet_dir / "broken.csv").exists()  # skip leaves it

    def test_quarantine_moves_file_with_reason(self, csv_fleet_dir, tmp_path):
        (csv_fleet_dir / "broken.csv").write_text("t,x,y\nno,numbers,here\n")
        bad_dir = tmp_path / "bad"
        engine = BatchEngine(
            "td-tr:epsilon=30", on_malformed=f"quarantine:{bad_dir}"
        )
        metrics = Registry()
        run = engine.run(csv_fleet_dir, metrics=metrics)
        assert run.n_quarantined == 1
        assert not (csv_fleet_dir / "broken.csv").exists()
        assert (bad_dir / "broken.csv").exists()
        reason = json.loads((bad_dir / "broken.csv.reason.json").read_text())
        assert reason["item_id"] == "broken"
        assert "TrajectoryError" in reason["error_type"]
        assert metrics.counter("items_quarantined").value == 1

    def test_quarantine_collision_gets_suffix(self, csv_fleet_dir, tmp_path):
        bad_dir = tmp_path / "bad"
        bad_dir.mkdir()
        (bad_dir / "broken.csv").write_text("already here")
        (csv_fleet_dir / "broken.csv").write_text("t,x,y\nno,numbers,here\n")
        engine = BatchEngine(
            "td-tr:epsilon=30", on_malformed=f"quarantine:{bad_dir}"
        )
        run = engine.run(csv_fleet_dir)
        assert run.n_quarantined == 1
        assert (bad_dir / "broken.1.csv").exists()
        assert (bad_dir / "broken.csv").read_text() == "already here"

    def test_default_still_raises(self, csv_fleet_dir):
        (csv_fleet_dir / "broken.csv").write_text("t,x,y\nno,numbers,here\n")
        engine = BatchEngine("td-tr:epsilon=30")
        with pytest.raises(TrajectoryError):
            engine.run(csv_fleet_dir)

    def test_invalid_policy_rejected_at_construction(self):
        with pytest.raises(PipelineError, match="on_malformed"):
            BatchEngine("td-tr:epsilon=30", on_malformed="explode")

    def test_load_fleet_quarantine(self, csv_fleet_dir, tmp_path):
        (csv_fleet_dir / "broken.csv").write_text("t,x,y\nno,numbers,here\n")
        bad_dir = tmp_path / "bad"
        fleet, failures = load_fleet(
            csv_fleet_dir, on_error="skip", on_malformed=f"quarantine:{bad_dir}"
        )
        assert len(fleet) == 4
        assert len(failures) == 1
        assert failures[0].quarantined_to == str(bad_dir / "broken.csv")
        assert (bad_dir / "broken.csv").exists()


class TestResume:
    def test_full_rerun_resumes_everything(self, csv_fleet_dir, tmp_path):
        engine = BatchEngine("td-tr:epsilon=30")
        ck = tmp_path / "ck"
        first = engine.run(csv_fleet_dir, checkpoint=ck)
        metrics = Registry()
        second = engine.run(csv_fleet_dir, checkpoint=ck, metrics=metrics)
        assert second.items_resumed == 4
        assert metrics.counter("items_resumed").value == 4
        for a, b in zip(first.results, second.results):
            assert a.item_id == b.item_id
            assert a.index == b.index
            assert (a.indices == b.indices).all()

    def test_partial_journal_reruns_the_rest(self, csv_fleet_dir, tmp_path):
        engine = BatchEngine("td-tr:epsilon=30")
        ck = tmp_path / "ck"
        first = engine.run(csv_fleet_dir, checkpoint=ck)
        journal = ck / JOURNAL_NAME
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:2]))
        second = engine.run(csv_fleet_dir, checkpoint=ck)
        assert second.items_resumed == 2
        for a, b in zip(first.results, second.results):
            assert a.item_id == b.item_id
            assert (a.indices == b.indices).all()
        # the journal is complete again after the resumed run
        assert len(journal.read_text().splitlines()) == 4

    def test_torn_journal_tail_tolerated(self, csv_fleet_dir, tmp_path):
        engine = BatchEngine("td-tr:epsilon=30")
        ck = tmp_path / "ck"
        engine.run(csv_fleet_dir, checkpoint=ck)
        journal = ck / JOURNAL_NAME
        text = journal.read_text()
        journal.write_text(text[:-7])  # crash mid-append of the last line
        second = engine.run(csv_fleet_dir, checkpoint=ck)
        assert second.items_resumed == 3
        assert len(second.results) == 4

    def test_mismatched_config_fails_loudly(self, csv_fleet_dir, tmp_path):
        ck = tmp_path / "ck"
        BatchEngine("td-tr:epsilon=30").run(csv_fleet_dir, checkpoint=ck)
        with pytest.raises(CheckpointError, match="compressor"):
            BatchEngine("td-tr:epsilon=15").run(csv_fleet_dir, checkpoint=ck)

    def test_mismatched_items_fails_loudly(self, csv_fleet_dir, tmp_path):
        ck = tmp_path / "ck"
        engine = BatchEngine("td-tr:epsilon=30")
        engine.run(csv_fleet_dir, checkpoint=ck)
        (csv_fleet_dir / "walk-0.csv").unlink()
        with pytest.raises(CheckpointError, match="item_ids"):
            engine.run(csv_fleet_dir, checkpoint=ck)

    def test_journal_entry_for_unknown_item_rejected(self, csv_fleet_dir, tmp_path):
        ck = tmp_path / "ck"
        engine = BatchEngine("td-tr:epsilon=30")
        engine.run(csv_fleet_dir, checkpoint=ck)
        manifest = json.loads((ck / "manifest.json").read_text())
        with RunCheckpoint.open(ck, {k: v for k, v in manifest.items() if k != "format"}) as handle:
            handle.record({"index": 99, "ok": True, "item_id": "ghost"})
        with pytest.raises(CheckpointError, match="99"):
            engine.run(csv_fleet_dir, checkpoint=ck)

    def test_checkpoint_with_failures_resumes_failures_too(
        self, csv_fleet_dir, tmp_path
    ):
        (csv_fleet_dir / "broken.csv").write_text("t,x,y\nno,numbers,here\n")
        engine = BatchEngine("td-tr:epsilon=30", on_error="skip", on_malformed="skip")
        ck = tmp_path / "ck"
        first = engine.run(csv_fleet_dir, checkpoint=ck)
        assert len(first.failures) == 1
        second = engine.run(csv_fleet_dir, checkpoint=ck)
        assert second.items_resumed == 5
        assert len(second.failures) == 1
        assert second.failures[0].item_id == "broken"
