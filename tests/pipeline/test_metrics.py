"""Tests for the metrics shim: instruments now live in repro.obs."""

from __future__ import annotations

import json

import pytest

from repro.obs import Registry
from repro.pipeline.metrics import DEFAULT_BUCKETS, Counter, Histogram, Metrics, Timer


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("items")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("items").inc(-1)


class TestTimer:
    def test_observe_tracks_count_total_max(self):
        timer = Timer("compress_s")
        timer.observe(0.2)
        timer.observe(0.6)
        assert timer.count == 2
        assert timer.total_s == pytest.approx(0.8)
        assert timer.max_s == pytest.approx(0.6)
        assert timer.mean_s == pytest.approx(0.4)

    def test_empty_timer_mean_is_zero(self):
        assert Timer("idle").mean_s == 0.0

    def test_context_manager_records_one_observation(self):
        timer = Timer("block")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total_s >= 0.0

    def test_to_dict_round_trips_through_json(self):
        timer = Timer("t")
        timer.observe(1.5)
        data = json.loads(json.dumps(timer.to_dict()))
        assert data == {"count": 1, "total_s": 1.5, "mean_s": 1.5, "max_s": 1.5}


class TestHistogram:
    def test_values_land_in_inclusive_upper_bound_buckets(self):
        hist = Histogram("points", buckets=[10, 100])
        hist.observe(5)
        hist.observe(10)  # inclusive: still the first bucket
        hist.observe(99)
        hist.observe(500)  # beyond the last bound -> overflow
        data = hist.to_dict()
        assert data["buckets"] == [
            {"le": 10.0, "count": 2},
            {"le": 100.0, "count": 1},
        ]
        assert data["overflow"] == 1
        assert data["count"] == 4
        assert data["min"] == 5.0
        assert data["max"] == 500.0
        assert data["mean"] == pytest.approx((5 + 10 + 99 + 500) / 4)

    def test_empty_histogram_exports_null_extrema(self):
        data = Histogram("empty").to_dict()
        assert data["count"] == 0
        assert data["min"] is None and data["max"] is None
        assert len(data["buckets"]) == len(DEFAULT_BUCKETS)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("bad", buckets=[10, 5])


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        metrics = Registry()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.timer("b") is metrics.timer("b")
        assert metrics.histogram("c") is metrics.histogram("c")

    def test_to_dict_groups_by_instrument_kind(self):
        metrics = Registry()
        metrics.counter("items").inc(3)
        metrics.timer("run_s").observe(0.1)
        metrics.histogram("sizes").observe(42)
        data = json.loads(json.dumps(metrics.to_dict()))
        assert data["counters"] == {"items": 3}
        assert data["timers"]["run_s"]["count"] == 1
        assert data["histograms"]["sizes"]["count"] == 1

    def test_aggregation_totals_match_observations(self):
        """Per-item samples aggregate to exact run totals."""
        metrics = Registry()
        sizes = [100, 250, 7, 1810]
        for size in sizes:
            metrics.counter("points_in").inc(size)
            metrics.histogram("points_in").observe(size)
        assert metrics.counter("points_in").value == sum(sizes)
        hist = metrics.histogram("points_in").to_dict()
        assert hist["count"] == len(sizes)
        assert hist["sum"] == pytest.approx(sum(sizes))
        in_buckets = sum(b["count"] for b in hist["buckets"]) + hist["overflow"]
        assert in_buckets == len(sizes)


class TestDeprecatedMetricsShim:
    def test_metrics_warns_but_keeps_working(self):
        with pytest.deprecated_call(match="repro.obs.Registry"):
            metrics = Metrics()
        assert isinstance(metrics, Registry)
        metrics.counter("still_works").inc()
        assert metrics.to_dict()["counters"] == {"still_works": 1}

    def test_registry_does_not_warn(self, recwarn):
        Registry().counter("quiet").inc()
        assert not [w for w in recwarn if w.category is DeprecationWarning]
