"""Tests for the batch compression engine and fleet normalization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import OPWTR, TDTR, Compressor
from repro.exceptions import PipelineError
from repro.pipeline.engine import BatchEngine, iter_fleet, load_fleet
from repro.obs import Registry
from repro.trajectory import Trajectory
from repro.trajectory.io import write_csv


class ExplodingCompressor(Compressor):
    """Module-level (hence picklable) compressor failing on marked ids."""

    name = "exploding"

    def __init__(self, *, fail_ids=()):
        self.fail_ids = frozenset(fail_ids)

    def select_indices(self, traj):
        if traj.object_id in self.fail_ids:
            raise RuntimeError(f"injected failure for {traj.object_id}")
        return np.array([0, len(traj) - 1])


def _random_walk_fleet(n=50, points=120, seed=7) -> list[Trajectory]:
    rng = np.random.default_rng(seed)
    fleet = []
    for i in range(n):
        t = np.arange(points, dtype=float) * 10.0
        xy = np.cumsum(rng.normal(0.0, 25.0, size=(points, 2)), axis=0)
        fleet.append(Trajectory(t, xy, object_id=f"walk-{i:02d}"))
    return fleet


@pytest.fixture(scope="module")
def fleet() -> list[Trajectory]:
    return _random_walk_fleet()


class TestIterFleet:
    def test_list_of_trajectories(self, fleet):
        items = list(iter_fleet(fleet[:3]))
        assert [item_id for item_id, _ in items] == [
            "walk-00", "walk-01", "walk-02",
        ]

    def test_anonymous_items_get_index_ids(self):
        traj = Trajectory(np.array([0.0, 1.0]), np.zeros((2, 2)))
        (item,) = list(iter_fleet([traj]))
        assert item[0] == "item-00000"

    def test_directory_sorted_by_filename(self, tmp_path, fleet):
        for traj in (fleet[2], fleet[0], fleet[1]):
            write_csv(traj, tmp_path / f"{traj.object_id}.csv")
        (tmp_path / "notes.txt").write_text("ignored")
        items = list(iter_fleet(tmp_path))
        assert [item_id for item_id, _ in items] == [
            "walk-00", "walk-01", "walk-02",
        ]

    def test_id_payload_pairs(self, fleet):
        items = list(iter_fleet([("mine", fleet[0])]))
        assert items == [("mine", fleet[0])]

    def test_bare_trajectory_rejected(self, fleet):
        with pytest.raises(PipelineError, match="not a fleet"):
            list(iter_fleet(fleet[0]))

    def test_unsupported_entry_rejected(self):
        with pytest.raises(PipelineError, match="fleet entry 0"):
            list(iter_fleet([42]))


class TestBatchEngine:
    def test_spec_string_engine_runs(self, fleet):
        run = BatchEngine("td-tr:epsilon=30").run(fleet[:5])
        assert run.n_items == 5
        assert not run.failures
        for item in run.results:
            assert item.indices[0] == 0
            assert item.indices[-1] == item.n_original - 1
            assert item.mean_sync_error_m is not None

    def test_parallel_matches_serial_exactly(self, fleet):
        """Acceptance: workers=4 selects byte-identical retained indices."""
        serial = BatchEngine("td-tr:epsilon=30").run(fleet)
        parallel = BatchEngine("td-tr:epsilon=30", workers=4).run(fleet)
        assert [r.item_id for r in serial.results] == [
            r.item_id for r in parallel.results
        ]
        for left, right in zip(serial.results, parallel.results):
            assert np.array_equal(left.indices, right.indices)

    def test_parallel_works_with_compressor_instance(self, fleet):
        serial = BatchEngine(OPWTR(epsilon=40.0)).run(fleet[:10])
        parallel = BatchEngine(OPWTR(epsilon=40.0), workers=3).run(fleet[:10])
        for left, right in zip(serial.results, parallel.results):
            assert np.array_equal(left.indices, right.indices)

    def test_invalid_spec_fails_at_construction(self):
        with pytest.raises(KeyError, match="available"):
            BatchEngine("no-such-algo:epsilon=1")
        with pytest.raises(TypeError):
            BatchEngine("td-tr:bogus=1")
        with pytest.raises(PipelineError, match="compressor must be"):
            BatchEngine(42)

    def test_invalid_evaluate_mode_rejected(self):
        with pytest.raises(PipelineError, match="evaluate"):
            BatchEngine("td-tr:epsilon=30", evaluate="sometimes")

    def test_evaluate_modes(self, fleet):
        none = BatchEngine("td-tr:epsilon=30", evaluate="none").run(fleet[:2])
        assert all(r.mean_sync_error_m is None for r in none.results)
        assert all(r.report is None for r in none.results)
        full = BatchEngine("td-tr:epsilon=30", evaluate="full").run(fleet[:2])
        for item in full.results:
            assert item.report is not None
            assert item.report.n_original == item.n_original

    def test_raise_policy_aborts_with_original_error(self, fleet):
        engine = BatchEngine(ExplodingCompressor(fail_ids=["walk-03"]))
        with pytest.raises(RuntimeError, match="injected failure for walk-03"):
            engine.run(fleet[:6])

    def test_skip_policy_isolates_one_bad_item(self, fleet, tmp_path):
        """Acceptance: a fleet with one corrupt member completes under
        on_error="skip" with exactly one ItemFailure in the metrics JSON."""
        engine = BatchEngine(
            ExplodingCompressor(fail_ids=["walk-03"]), on_error="skip"
        )
        run = engine.run(fleet[:6])
        assert len(run.results) == 5
        (failure,) = run.failures
        assert failure.item_id == "walk-03"
        assert failure.error_type == "RuntimeError"

        out = tmp_path / "metrics.json"
        run.write_metrics_json(out)
        data = json.loads(out.read_text())
        assert data["run"]["n_failed"] == 1
        assert len(data["failures"]) == 1
        assert data["failures"][0]["item_id"] == "walk-03"
        assert data["metrics"]["counters"]["items_failed"] == 1

    def test_retry_policy_counts_attempts(self, fleet):
        engine = BatchEngine(
            ExplodingCompressor(fail_ids=["walk-01"]), on_error="retry(2)"
        )
        run = engine.run(fleet[:3])
        (failure,) = run.failures
        assert failure.attempts == 3
        assert all(item.attempts == 1 for item in run.results)
        assert run.metrics.counter("attempts").value == 2 + 3

    def test_metrics_aggregation_totals(self, fleet):
        run = BatchEngine("td-tr:epsilon=30").run(fleet[:8])
        data = run.metrics_dict()
        assert data["run"]["points_in"] == sum(len(t) for t in fleet[:8])
        assert data["run"]["points_in"] == data["metrics"]["counters"]["points_in"]
        assert data["run"]["points_kept"] == sum(r.n_kept for r in run.results)
        assert data["metrics"]["counters"]["items_ok"] == 8
        assert data["metrics"]["histograms"]["points_in"]["count"] == 8
        assert data["metrics"]["timers"]["compress_s"]["count"] == 8
        json.dumps(data)  # the whole document must be JSON-serializable

    def test_external_metrics_registry_accumulates_across_runs(self, fleet):
        metrics = Registry()
        engine = BatchEngine("td-tr:epsilon=30")
        engine.run(fleet[:2], metrics=metrics)
        engine.run(fleet[2:4], metrics=metrics)
        assert metrics.counter("items_ok").value == 4

    def test_directory_fleet_with_corrupt_file(self, tmp_path, fleet):
        for traj in fleet[:3]:
            write_csv(traj, tmp_path / f"{traj.object_id}.csv")
        (tmp_path / "corrupt.csv").write_text("t,x,y\nnot,a,number\n")
        run = BatchEngine("td-tr:epsilon=30", on_error="skip").run(tmp_path)
        assert len(run.results) == 3
        (failure,) = run.failures
        assert failure.item_id == "corrupt"

    def test_store_source(self, fleet):
        from repro.storage import TrajectoryStore

        store = TrajectoryStore()
        for traj in fleet[:4]:
            store.insert(traj)
        run = BatchEngine("td-tr:epsilon=30").run(store)
        assert sorted(r.item_id for r in run.results) == [
            t.object_id for t in fleet[:4]
        ]

    def test_summary_mentions_compressor_and_counts(self, fleet):
        run = BatchEngine("td-tr:epsilon=30").run(fleet[:4])
        text = run.summary()
        assert "td-tr" in text
        assert "4/4 items ok" in text

    def test_compressor_name_property(self):
        assert BatchEngine("td-tr:epsilon=30").compressor_name == "td-tr"
        assert BatchEngine(TDTR(epsilon=30.0)).compressor_name == "td-tr"


class TestLoadFleet:
    def test_loads_directory_and_skips_corrupt(self, tmp_path, fleet):
        for traj in fleet[:3]:
            write_csv(traj, tmp_path / f"{traj.object_id}.csv")
        (tmp_path / "bad.csv").write_text("garbage")
        loaded, failures = load_fleet(tmp_path, on_error="skip")
        assert [t.object_id for t in loaded] == ["walk-00", "walk-01", "walk-02"]
        assert [f.item_id for f in failures] == ["bad"]

    def test_raise_policy_propagates(self, tmp_path):
        (tmp_path / "bad.csv").write_text("garbage")
        with pytest.raises(Exception):
            load_fleet(tmp_path, on_error="raise")
