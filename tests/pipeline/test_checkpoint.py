"""Tests for the checkpoint manifest + journal layer."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import CheckpointError
from repro.io_util import crc32_text
from repro.pipeline.checkpoint import (
    JOURNAL_NAME,
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    RunCheckpoint,
    read_manifest,
)

MANIFEST = {
    "compressor": "td-tr:epsilon=30",
    "on_error": "skip",
    "evaluate": "sync",
    "on_malformed": None,
    "item_ids": ["a", "b", "c"],
}


class TestManifest:
    def test_fresh_open_writes_manifest(self, tmp_path):
        ck = RunCheckpoint.open(tmp_path / "ck", MANIFEST)
        ck.close()
        stored = json.loads((tmp_path / "ck" / MANIFEST_NAME).read_text())
        assert stored["format"] == MANIFEST_FORMAT
        assert stored["compressor"] == "td-tr:epsilon=30"
        assert stored["item_ids"] == ["a", "b", "c"]

    def test_reopen_same_manifest_is_fine(self, tmp_path):
        RunCheckpoint.open(tmp_path / "ck", MANIFEST).close()
        RunCheckpoint.open(tmp_path / "ck", MANIFEST).close()

    def test_reopen_different_config_raises(self, tmp_path):
        RunCheckpoint.open(tmp_path / "ck", MANIFEST).close()
        changed = dict(MANIFEST, compressor="dp:epsilon=10", on_error="raise")
        with pytest.raises(CheckpointError, match="compressor, on_error"):
            RunCheckpoint.open(tmp_path / "ck", changed)

    def test_reopen_different_items_raises(self, tmp_path):
        RunCheckpoint.open(tmp_path / "ck", MANIFEST).close()
        changed = dict(MANIFEST, item_ids=["a", "b"])
        with pytest.raises(CheckpointError, match="item_ids"):
            RunCheckpoint.open(tmp_path / "ck", changed)

    def test_read_manifest_missing_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            read_manifest(tmp_path / "nope")

    def test_read_manifest_unparsable_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            read_manifest(tmp_path)

    def test_read_manifest_non_object_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("[1, 2]")
        with pytest.raises(CheckpointError, match="not a JSON object"):
            read_manifest(tmp_path)


class TestJournal:
    def test_record_completed_round_trip(self, tmp_path):
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            ck.record({"index": 0, "ok": True, "item_id": "a"})
            ck.record({"index": 2, "ok": False, "item_id": "c"})
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            done = ck.completed()
        assert set(done) == {0, 2}
        assert done[0]["item_id"] == "a"
        assert done[2]["ok"] is False

    def test_empty_journal(self, tmp_path):
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            assert ck.completed() == {}

    def test_torn_tail_is_dropped(self, tmp_path):
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            ck.record({"index": 0, "ok": True})
            ck.record({"index": 1, "ok": True})
        journal = tmp_path / "ck" / JOURNAL_NAME
        text = journal.read_text()
        # Simulate a crash mid-append: cut the final line in half.
        journal.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            assert set(ck.completed()) == {0}

    def test_corrupt_middle_line_raises(self, tmp_path):
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            ck.record({"index": 0, "ok": True})
            ck.record({"index": 1, "ok": True})
            ck.record({"index": 2, "ok": True})
        journal = tmp_path / "ck" / JOURNAL_NAME
        lines = journal.read_text().splitlines()
        lines[1] = lines[1][:12] + "X" + lines[1][13:]
        journal.write_text("\n".join(lines) + "\n")
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            with pytest.raises(CheckpointError, match="line 2"):
                ck.completed()

    def test_duplicate_index_raises(self, tmp_path):
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            ck.record({"index": 0, "ok": True})
            ck.record({"index": 0, "ok": True})
            ck.record({"index": 1, "ok": True})
            with pytest.raises(CheckpointError, match="duplicate"):
                ck.completed()

    def test_missing_index_raises(self, tmp_path):
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            ck.record({"ok": True})
            ck.record({"index": 1, "ok": True})
            with pytest.raises(CheckpointError, match="item index"):
                ck.completed()

    def test_journal_lines_carry_valid_crcs(self, tmp_path):
        with RunCheckpoint.open(tmp_path / "ck", MANIFEST) as ck:
            ck.record({"index": 0, "ok": True})
        line = (tmp_path / "ck" / JOURNAL_NAME).read_text().splitlines()[0]
        crc_text, payload = line.split(" ", 1)
        assert int(crc_text, 16) == crc32_text(payload)
