"""Tests for TD-TR (paper Sect. 3.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import DouglasPeucker, TDTR
from repro.core.td_tr import synchronized_segment_error
from repro.error import max_synchronized_error, mean_synchronized_error
from repro.trajectory import Trajectory

from tests.conftest import trajectories


@pytest.fixture
def dwell() -> Trajectory:
    """Geometrically straight but with a long dwell in the middle.

    Spatial DP sees a perfect line and discards everything; the
    synchronized view sees a 400 m timing deviation at index 2.
    """
    return Trajectory.from_points(
        [(0, 0, 0), (10, 100, 0), (110, 150, 0), (120, 250, 0), (130, 350, 0),
         (140, 450, 0), (150, 550, 0)]
    )


class TestSynchronizedSegmentError:
    def test_detects_time_skew_on_straight_line(self, dwell):
        error, cut = synchronized_segment_error(dwell, 0, len(dwell) - 1)
        assert error > 100.0  # large synchronized deviation
        # ... where spatial DP sees (almost) nothing:
        from repro.core.douglas_peucker import perpendicular_segment_error

        perp_error, _ = perpendicular_segment_error(dwell, 0, len(dwell) - 1)
        assert perp_error == pytest.approx(0.0, abs=1e-9)


class TestTDTR:
    def test_keeps_dwell_points_ndp_drops(self, dwell):
        ndp = DouglasPeucker(epsilon=30.0).compress(dwell)
        tdtr = TDTR(epsilon=30.0).compress(dwell)
        np.testing.assert_array_equal(ndp.indices, [0, len(dwell) - 1])
        assert tdtr.n_kept > 2

    def test_sed_bound_invariant(self, urban_trajectory):
        """TD-TR's core guarantee: continuous max synchronized error is
        bounded by the threshold."""
        for eps in (15.0, 40.0, 90.0):
            approx = TDTR(epsilon=eps).compress(urban_trajectory).compressed
            assert max_synchronized_error(urban_trajectory, approx) <= eps + 1e-9

    def test_constant_velocity_collapses(self, straight_line):
        result = TDTR(epsilon=1.0).compress(straight_line)
        np.testing.assert_array_equal(result.indices, [0, len(straight_line) - 1])

    def test_traversals_agree(self, urban_trajectory):
        iterative = TDTR(epsilon=40.0, traversal="iterative").compress(urban_trajectory)
        recursive = TDTR(epsilon=40.0, traversal="recursive").compress(urban_trajectory)
        np.testing.assert_array_equal(iterative.indices, recursive.indices)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            TDTR(epsilon=10.0, engine="quantum")

    @settings(max_examples=40, deadline=None)
    @given(trajectories(min_points=3, max_points=30))
    def test_property_sed_bound(self, traj):
        eps = 25.0
        approx = TDTR(epsilon=eps).compress(traj).compressed
        assert max_synchronized_error(traj, approx) <= eps + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(trajectories(min_points=3, max_points=30))
    def test_property_mean_error_bounded_by_threshold(self, traj):
        eps = 25.0
        approx = TDTR(epsilon=eps).compress(traj).compressed
        assert mean_synchronized_error(traj, approx) <= eps + 1e-6

    def test_better_sync_error_than_ndp_at_same_threshold(self, small_dataset):
        """The paper's headline Fig. 7 relation on a small dataset."""
        eps = 50.0
        tdtr_err = np.mean(
            [
                mean_synchronized_error(t, TDTR(epsilon=eps).compress(t).compressed)
                for t in small_dataset
            ]
        )
        ndp_err = np.mean(
            [
                mean_synchronized_error(
                    t, DouglasPeucker(epsilon=eps).compress(t).compressed
                )
                for t in small_dataset
            ]
        )
        assert tdtr_err < ndp_err
