"""Tests for the Douglas-Peucker baseline (NDP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DouglasPeucker
from repro.core.douglas_peucker import (
    perpendicular_segment_error,
    top_down_indices,
    top_down_indices_recursive,
)
from repro.error import max_perpendicular_error
from repro.exceptions import ThresholdError
from repro.trajectory import Trajectory


@pytest.fixture
def spike() -> Trajectory:
    """A straight run with one large spike at index 2."""
    return Trajectory.from_points(
        [(0, 0, 0), (10, 100, 1), (20, 200, 80), (30, 300, -1), (40, 400, 0)]
    )


class TestSegmentError:
    def test_finds_the_spike(self, spike):
        error, cut = perpendicular_segment_error(spike, 0, 4)
        assert cut == 2
        assert error == pytest.approx(80.0, rel=0.01)


class TestDouglasPeucker:
    def test_keeps_spike_above_threshold(self, spike):
        result = DouglasPeucker(epsilon=50.0).compress(spike)
        assert 2 in result.indices

    def test_drops_spike_below_threshold(self, spike):
        result = DouglasPeucker(epsilon=100.0).compress(spike)
        np.testing.assert_array_equal(result.indices, [0, 4])

    def test_straight_line_collapses_to_endpoints(self, straight_line):
        result = DouglasPeucker(epsilon=1.0).compress(straight_line)
        np.testing.assert_array_equal(result.indices, [0, len(straight_line) - 1])

    def test_threshold_bounds_max_line_error(self, urban_trajectory):
        for eps in (15.0, 40.0, 90.0):
            approx = DouglasPeucker(epsilon=eps).compress(urban_trajectory).compressed
            assert (
                max_perpendicular_error(urban_trajectory, approx, to_segment=False)
                <= eps + 1e-9
            )

    def test_monotone_compression_in_threshold(self, urban_trajectory):
        kept = [
            DouglasPeucker(epsilon=eps).compress(urban_trajectory).n_kept
            for eps in (10.0, 30.0, 60.0, 120.0)
        ]
        assert kept == sorted(kept, reverse=True)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ThresholdError):
            DouglasPeucker(epsilon=0.0)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            DouglasPeucker(epsilon=10.0, engine="magic")

    def test_iterative_and_recursive_agree(self, urban_trajectory, zigzag):
        for traj in (urban_trajectory, zigzag):
            for eps in (10.0, 35.0, 80.0):
                iterative = top_down_indices(traj, eps, perpendicular_segment_error)
                recursive = top_down_indices_recursive(
                    traj, eps, perpendicular_segment_error
                )
                np.testing.assert_array_equal(iterative, recursive)

    def test_handles_duplicate_positions(self):
        # Stationary object: all positions identical -> everything is
        # within any threshold of the (degenerate) chord.
        traj = Trajectory.from_points([(i, 5.0, 5.0) for i in range(6)])
        result = DouglasPeucker(epsilon=1.0).compress(traj)
        np.testing.assert_array_equal(result.indices, [0, 5])

    def test_paper_fig1_style_recursion(self):
        """A series engineered to recurse like the paper's Fig. 1: the
        first chord is cut, then sub-chords are cut again."""
        t = np.arange(0.0, 9.0)
        y = np.array([0.0, 6.0, 0.0, -6.0, 0.0, 30.0, 0.0, 5.0, 0.0])
        traj = Trajectory(t, np.column_stack([t * 10.0, y]))
        result = DouglasPeucker(epsilon=4.0).compress(traj)
        assert 5 in result.indices  # the big bump
        assert result.n_kept > 3  # recursion continued into the halves
