"""Golden regression: pinned outputs for every algorithm on fixed inputs.

Three small synthetic trips live as CSVs under ``tests/data/golden/``
next to ``expected.json``, which records — per trajectory, per algorithm
spec — the exact retained indices and the full
:func:`~repro.error.metrics.evaluate_compression` report. Any change to
an algorithm's selection logic or to the error notions shows up here as
a concrete diff against known-good numbers, not just a property violation.

To bless intentional changes::

    PYTHONPATH=src python -m pytest tests/core/test_golden.py --regen-golden

then review the ``expected.json`` diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.registry import make_compressor
from repro.error.metrics import evaluate_compression
from repro.trajectory import io as _io

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "golden"
EXPECTED_PATH = GOLDEN_DIR / "expected.json"

TRAJECTORIES = ("golden-urban", "golden-rural", "golden-highway")

#: One representative spec per registered algorithm. Thresholds are
#: chosen so each algorithm both keeps and drops points on every fixture.
SPECS = (
    "ndp:epsilon=20",
    "td-tr:epsilon=20",
    "nopw:epsilon=20",
    "bopw:epsilon=20",
    "opw-tr:epsilon=20",
    "operb:epsilon=20",
    "cised:epsilon=20",
    "opw-sp:epsilon=20,speed=3",
    "td-sp:epsilon=20,speed=3",
    "every-ith:step=4",
    "distance-threshold:epsilon=150",
    "angular:angle=0.5",
    "sliding-window:epsilon=20",
    "bottom-up:epsilon=20",
    "td-tr-budget:budget=8",
    "bottom-up-budget:budget=8",
    "bottom-up-total-error:epsilon=10",
    "dead-reckoning:epsilon=20",
)


def _compute(traj_name: str, spec: str) -> dict:
    traj = _io.read_csv(GOLDEN_DIR / f"{traj_name}.csv", object_id=traj_name)
    result = make_compressor(spec).compress(traj)
    report = evaluate_compression(traj, result.compressed)
    return {
        "indices": [int(i) for i in result.indices],
        "report": report.to_dict(),
    }


def _load_expected() -> dict:
    if not EXPECTED_PATH.exists():
        pytest.fail(
            f"{EXPECTED_PATH} missing; run pytest with --regen-golden to create it"
        )
    return json.loads(EXPECTED_PATH.read_text())


@pytest.fixture(scope="module")
def expected() -> dict:
    return _load_expected()


def test_regen_golden(regen_golden):
    """Not a test when run normally; rewrites expected.json under --regen-golden."""
    if not regen_golden:
        pytest.skip("pass --regen-golden to regenerate")
    blob = {
        traj_name: {spec: _compute(traj_name, spec) for spec in SPECS}
        for traj_name in TRAJECTORIES
    }
    EXPECTED_PATH.write_text(json.dumps(blob, indent=2) + "\n")


@pytest.mark.parametrize("traj_name", TRAJECTORIES)
@pytest.mark.parametrize("spec", SPECS)
def test_golden_output(traj_name, spec, expected, regen_golden):
    if regen_golden:
        pytest.skip("regenerating, not checking")
    assert traj_name in expected, f"no golden entry for {traj_name}; regenerate"
    assert spec in expected[traj_name], f"no golden entry for {spec}; regenerate"
    want = expected[traj_name][spec]
    got = _compute(traj_name, spec)
    np.testing.assert_array_equal(
        got["indices"], want["indices"], err_msg=f"{traj_name}/{spec}: indices drifted"
    )
    # JSON round-trips float64 exactly (repr is shortest-round-trip), so
    # the report comparison is exact equality, not approximate.
    assert got["report"] == want["report"], f"{traj_name}/{spec}: report drifted"
