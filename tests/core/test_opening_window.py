"""Tests for the opening-window algorithms (NOPW / BOPW)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BOPW, NOPW, opening_window_indices, perpendicular_scan
from repro.error import max_perpendicular_error, mean_synchronized_error
from repro.trajectory import Trajectory


@pytest.fixture
def two_spikes() -> Trajectory:
    """Straight run with spikes at indices 3 and 7."""
    t = np.arange(0.0, 100.0, 10.0)
    y = np.array([0.0, 1.0, -1.0, 60.0, 0.0, 1.0, -1.0, 55.0, 0.0, 1.0])
    return Trajectory(t, np.column_stack([t * 10.0, y]))


class TestDriver:
    def test_always_keeps_endpoints(self, two_spikes):
        idx = opening_window_indices(two_spikes, perpendicular_scan(30.0))
        assert idx[0] == 0
        assert idx[-1] == len(two_spikes) - 1

    def test_rejects_unknown_strategy(self, two_spikes):
        with pytest.raises(ValueError, match="strategy"):
            opening_window_indices(two_spikes, perpendicular_scan(30.0), "middle")

    def test_nopw_breaks_at_violating_point(self, two_spikes):
        idx = opening_window_indices(
            two_spikes, perpendicular_scan(30.0), "violating"
        )
        assert 3 in idx and 7 in idx

    def test_bopw_breaks_before_float(self):
        # One spike at index 3: window [0..4] sees the violation when the
        # float reaches 4, so BOPW cuts at 3's successor's predecessor —
        # i.e. float-1 = 3 here; with a later float the cut lands before
        # the violator. Use a longer flat tail to show the difference.
        t = np.arange(0.0, 120.0, 10.0)
        y = np.zeros(12)
        y[3] = 60.0
        traj = Trajectory(t, np.column_stack([t * 10.0, y]))
        nopw_idx = opening_window_indices(traj, perpendicular_scan(30.0), "violating")
        bopw_idx = opening_window_indices(
            traj, perpendicular_scan(30.0), "before-float"
        )
        assert 3 in nopw_idx
        # BOPW cuts at float-1: the violation first fires when the float
        # is 4 (first window containing the spike as interior), so cut=3.
        assert 3 in bopw_idx

    def test_straight_line_single_segment(self, straight_line):
        idx = opening_window_indices(straight_line, perpendicular_scan(5.0))
        np.testing.assert_array_equal(idx, [0, len(straight_line) - 1])


class TestNOPWvsBOPW:
    def test_bopw_compresses_at_least_as_much(self, urban_trajectory):
        """The paper's Fig. 8 shape: BOPW keeps fewer (or equal) points."""
        for eps in (20.0, 40.0, 80.0):
            nopw = NOPW(epsilon=eps).compress(urban_trajectory)
            bopw = BOPW(epsilon=eps).compress(urban_trajectory)
            assert bopw.n_kept <= nopw.n_kept

    def test_bopw_worse_or_equal_sync_error(self, small_dataset):
        """Fig. 8's other half, averaged over a few trajectories."""
        eps = 40.0
        nopw_errors = []
        bopw_errors = []
        for traj in small_dataset:
            nopw_errors.append(
                mean_synchronized_error(traj, NOPW(epsilon=eps).compress(traj).compressed)
            )
            bopw_errors.append(
                mean_synchronized_error(traj, BOPW(epsilon=eps).compress(traj).compressed)
            )
        assert float(np.mean(bopw_errors)) >= float(np.mean(nopw_errors)) * 0.9

    def test_nopw_segments_respect_threshold(self, urban_trajectory):
        """Each emitted NOPW segment was validated against its own chord,
        so the max perpendicular distance of any point to its covering
        chord stays within the threshold."""
        eps = 35.0
        approx = NOPW(epsilon=eps).compress(urban_trajectory).compressed
        assert (
            max_perpendicular_error(urban_trajectory, approx, to_segment=False)
            <= eps + 1e-9
        )

    def test_three_point_trajectory(self):
        traj = Trajectory.from_points([(0, 0, 0), (1, 10, 50), (2, 20, 0)])
        for compressor in (NOPW(epsilon=5.0), BOPW(epsilon=5.0)):
            idx = compressor.compress(traj).indices
            np.testing.assert_array_equal(idx, [0, 1, 2])

    def test_online_flag(self):
        assert NOPW(epsilon=10.0).online
        assert BOPW(epsilon=10.0).online
