"""Threshold-nesting properties of the top-down algorithms.

For Douglas–Peucker-style recursion, raising the threshold can only stop
the recursion earlier: the split decisions for a larger epsilon are a
prefix of those for a smaller one, so the retained index set *nests* —
``keep(eps_large) ⊆ keep(eps_small)``. This is a strong structural
property worth pinning (the opening-window family does not share it: a
different early break can shift all later windows).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NOPW, DouglasPeucker, TDTR

from tests.conftest import trajectories


def _is_subset(smaller: np.ndarray, larger: np.ndarray) -> bool:
    return set(smaller.tolist()) <= set(larger.tolist())


class TestTopDownNesting:
    @settings(max_examples=30, deadline=None)
    @given(
        trajectories(min_points=3, max_points=40),
        st.floats(5.0, 50.0),
        st.floats(1.01, 4.0),
    )
    def test_ndp_nesting(self, traj, eps, factor):
        small = DouglasPeucker(epsilon=eps).compress(traj).indices
        large = DouglasPeucker(epsilon=eps * factor).compress(traj).indices
        assert _is_subset(large, small)

    @settings(max_examples=30, deadline=None)
    @given(
        trajectories(min_points=3, max_points=40),
        st.floats(5.0, 50.0),
        st.floats(1.01, 4.0),
    )
    def test_tdtr_nesting(self, traj, eps, factor):
        small = TDTR(epsilon=eps).compress(traj).indices
        large = TDTR(epsilon=eps * factor).compress(traj).indices
        assert _is_subset(large, small)

    def test_nesting_over_the_paper_grid(self, urban_trajectory):
        """Across the paper's whole 30..100 m sweep the TD-TR index sets
        form a chain."""
        previous: np.ndarray | None = None
        for eps in np.arange(30.0, 101.0, 5.0):
            current = TDTR(epsilon=float(eps)).compress(urban_trajectory).indices
            if previous is not None:
                assert _is_subset(current, previous)
            previous = current

    def test_opening_window_does_not_nest(self, urban_trajectory):
        """Documenting the contrast: OPW selections genuinely shift with
        the threshold rather than nesting (at least somewhere on the
        sweep for this fixture)."""
        nested_everywhere = True
        previous: np.ndarray | None = None
        for eps in np.arange(30.0, 101.0, 5.0):
            current = NOPW(epsilon=float(eps)).compress(urban_trajectory).indices
            if previous is not None and not _is_subset(current, previous):
                nested_everywhere = False
            previous = current
        assert not nested_everywhere


class TestBudgetNesting:
    def test_td_tr_budget_is_nested_in_itself(self, urban_trajectory):
        """Best-first splitting grows the kept set one point at a time,
        so smaller budgets are prefixes of larger ones."""
        from repro.core import TDTRBudget

        previous: np.ndarray | None = None
        for budget in (2, 4, 8, 16, 32):
            current = TDTRBudget(budget=budget).compress(urban_trajectory).indices
            if previous is not None:
                assert _is_subset(previous, current)
            previous = current
