"""Tests for the name-based compressor registry."""

from __future__ import annotations

import pytest

from repro.core import (
    OPWSP,
    TDTR,
    available_compressors,
    make_compressor,
)


class TestRegistry:
    def test_all_names_construct(self, zigzag):
        params = {
            "ndp": {"epsilon": 30.0},
            "td-tr": {"epsilon": 30.0},
            "nopw": {"epsilon": 30.0},
            "bopw": {"epsilon": 30.0},
            "opw-tr": {"epsilon": 30.0},
            "operb": {"epsilon": 30.0},
            "cised": {"epsilon": 30.0},
            "opw-sp": {"max_dist_error": 30.0, "max_speed_error": 5.0},
            "td-sp": {"max_dist_error": 30.0, "max_speed_error": 5.0},
            "every-ith": {"step": 3},
            "distance-threshold": {"epsilon": 30.0},
            "angular": {"max_angle_rad": 0.5},
            "sliding-window": {"epsilon": 30.0},
            "bottom-up": {"epsilon": 30.0},
            "td-tr-budget": {"budget": 6},
            "bottom-up-budget": {"budget": 6},
            "bottom-up-total-error": {"max_mean_error": 10.0},
            "dead-reckoning": {"epsilon": 30.0},
        }
        assert sorted(params) == available_compressors()
        for name, kwargs in params.items():
            compressor = make_compressor(name, **kwargs)
            result = compressor.compress(zigzag)
            assert result.indices[0] == 0
            assert result.indices[-1] == len(zigzag) - 1

    def test_constructed_types(self):
        assert isinstance(make_compressor("td-tr", epsilon=10.0), TDTR)
        assert isinstance(
            make_compressor("opw-sp", max_dist_error=10.0, max_speed_error=5.0), OPWSP
        )

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="available"):
            make_compressor("super-compress")

    def test_unknown_name_error_names_every_registered_algorithm(self):
        from repro.core.registry import available_compressors
        from repro.exceptions import CompressorSpecError, UnknownCompressorError

        with pytest.raises(UnknownCompressorError) as excinfo:
            make_compressor("super-compress")
        message = str(excinfo.value)
        assert "super-compress" in message
        for name in available_compressors():
            assert name in message
        # Catchable both as a spec error and as the historical KeyError;
        # str() must read like a sentence, not a repr-quoted KeyError.
        assert isinstance(excinfo.value, CompressorSpecError)
        assert isinstance(excinfo.value, KeyError)
        assert not message.startswith('"')

    def test_unknown_name_in_spec_string_lists_options(self):
        from repro.exceptions import UnknownCompressorError

        with pytest.raises(UnknownCompressorError, match="td-tr"):
            make_compressor("super-compress:epsilon=30")

    def test_bad_params_propagate(self):
        with pytest.raises(TypeError):
            make_compressor("td-tr", wrong_param=1.0)
