"""Cross-algorithm property tests: invariants every compressor honours."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Compressor, available_compressors, make_compressor
from repro.error import synchronized_deltas
from repro.trajectory import Trajectory

from tests.conftest import trajectories

_PARAMS: dict[str, dict[str, float | int]] = {
    "ndp": {"epsilon": 25.0},
    "td-tr": {"epsilon": 25.0},
    "nopw": {"epsilon": 25.0},
    "bopw": {"epsilon": 25.0},
    "opw-tr": {"epsilon": 25.0},
    "operb": {"epsilon": 25.0},
    "cised": {"epsilon": 25.0},
    "opw-sp": {"max_dist_error": 25.0, "max_speed_error": 5.0},
    "td-sp": {"max_dist_error": 25.0, "max_speed_error": 5.0},
    "every-ith": {"step": 3},
    "distance-threshold": {"epsilon": 25.0},
    "angular": {"max_angle_rad": 0.4},
    "sliding-window": {"epsilon": 25.0},
    "bottom-up": {"epsilon": 25.0},
    "td-tr-budget": {"budget": 6},
    "bottom-up-budget": {"budget": 6},
    "bottom-up-total-error": {"max_mean_error": 10.0},
    "dead-reckoning": {"epsilon": 25.0},
}


def all_compressors() -> list[Compressor]:
    assert sorted(_PARAMS) == available_compressors()
    return [make_compressor(name, **kwargs) for name, kwargs in _PARAMS.items()]


@pytest.mark.parametrize("compressor", all_compressors(), ids=lambda c: c.name)
class TestUniversalInvariants:
    def test_keeps_endpoints(self, compressor, urban_trajectory):
        result = compressor.compress(urban_trajectory)
        assert result.indices[0] == 0
        assert result.indices[-1] == len(urban_trajectory) - 1

    def test_indices_strictly_increasing(self, compressor, urban_trajectory):
        result = compressor.compress(urban_trajectory)
        assert np.all(np.diff(result.indices) > 0)

    def test_compressed_is_subseries(self, compressor, urban_trajectory):
        result = compressor.compress(urban_trajectory)
        approx = result.compressed
        np.testing.assert_array_equal(approx.t, urban_trajectory.t[result.indices])
        np.testing.assert_array_equal(approx.xy, urban_trajectory.xy[result.indices])

    def test_deterministic(self, compressor, urban_trajectory):
        first = compressor.compress(urban_trajectory).indices
        second = compressor.compress(urban_trajectory).indices
        np.testing.assert_array_equal(first, second)

    def test_two_point_trajectory_pass_through(self, compressor):
        traj = Trajectory.from_points([(0, 0, 0), (5, 1000, -1000)])
        assert compressor.compress(traj).n_kept == 2

    def test_preserves_object_id(self, compressor, urban_trajectory):
        assert (
            compressor.compress(urban_trajectory).compressed.object_id
            == urban_trajectory.object_id
        )


#: Algorithms whose output is a fixed point: compressing their own output
#: again removes nothing. The others are excluded for structural reasons:
#:
#: * ``every-ith`` decimates positionally — it re-decimates any input;
#: * ``sliding-window`` draws window boundaries positionally, so they
#:   shift once points are removed;
#: * ``nopw`` / ``bopw`` / ``opw-sp`` / ``td-sp`` retain a point because
#:   of a violation against a *window* chord; after compression the
#:   chords differ and a previously violating point can become redundant;
#: * ``angular`` and ``dead-reckoning`` judge each point against its
#:   immediate neighbours / the previous two kept points — removing
#:   points changes that local context;
#: * ``bottom-up-total-error`` budgets α against its *input*: re-running
#:   on the degraded output resets the budget and merges further;
#: * ``operb`` / ``cised`` accept a candidate end against the feasibility
#:   region accumulated since the anchor — after compression the anchors
#:   and accumulated regions differ, so further points can merge.
_IDEMPOTENT = (
    "ndp",
    "td-tr",
    "opw-tr",
    "distance-threshold",
    "bottom-up",
    "td-tr-budget",
    "bottom-up-budget",
)


@pytest.mark.parametrize("name", _IDEMPOTENT)
@settings(max_examples=40, deadline=None)
@given(traj=trajectories(min_points=3, max_points=30))
def test_idempotent_on_own_output(name, traj):
    compressor = make_compressor(name, **_PARAMS[name])
    once = compressor.compress(traj).compressed
    twice = compressor.compress(once)
    np.testing.assert_array_equal(twice.indices, np.arange(len(once)))


@pytest.mark.parametrize(
    "spec",
    [
        "opw-tr:epsilon=25,strategy=violating",
        "opw-tr:epsilon=25,strategy=before-float",
        "opw-sp:epsilon=25,speed=5",
    ],
)
@settings(max_examples=40, deadline=None)
@given(traj=trajectories(min_points=3, max_points=30))
def test_opening_window_sync_bound_for_dropped_points(spec, traj):
    """Every *dropped* point stays within epsilon of the approximation.

    The opening-window guarantee: a point is only dropped while the
    window containing it passes the synchronized-distance test against
    the chord that becomes its final segment. Retained points trivially
    have zero deviation, so the per-point deltas are bounded everywhere.
    """
    result = make_compressor(spec).compress(traj)
    deltas = synchronized_deltas(traj, result.compressed)
    dropped = np.setdiff1d(np.arange(len(traj)), result.indices)
    assert np.all(deltas[dropped] <= 25.0 + 1e-6)


@settings(max_examples=15, deadline=None)
@given(trajectories(min_points=3, max_points=30))
def test_all_algorithms_on_random_trajectories(traj):
    """No compressor crashes or violates the subseries contract on
    arbitrary valid input (stationary stretches, wild speeds, ...)."""
    for compressor in all_compressors():
        result = compressor.compress(traj)
        assert result.indices[0] == 0
        assert result.indices[-1] == len(traj) - 1
        assert np.all(np.diff(result.indices) > 0)
