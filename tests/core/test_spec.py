"""Tests for compressor spec strings and keyword-only construction."""

from __future__ import annotations

import pickle

import pytest

from repro.core import (
    BOPW,
    CISED,
    NOPW,
    OPERB,
    OPWSP,
    OPWTR,
    TDSP,
    TDTR,
    AngularChange,
    BottomUp,
    CompressorSpec,
    DistanceThreshold,
    DouglasPeucker,
    EveryIth,
    SlidingWindow,
    make_compressor,
    parse_compressor_spec,
)
from repro.core.budget import BottomUpBudget, BottomUpTotalError, TDTRBudget
from repro.core.dead_reckoning import DeadReckoning
from repro.exceptions import CompressorSpecError


class TestParseSpec:
    def test_bare_name(self):
        spec = parse_compressor_spec("td-tr")
        assert spec.name == "td-tr"
        assert spec.params == ()

    def test_name_with_params(self):
        spec = parse_compressor_spec("td-tr:epsilon=30")
        assert spec.name == "td-tr"
        assert spec.params_dict == {"epsilon": 30}

    def test_multiple_params_and_aliases(self):
        spec = parse_compressor_spec("opw-sp:epsilon=30,speed=5")
        compressor = spec.build()
        assert isinstance(compressor, OPWSP)
        assert compressor.max_dist_error == 30.0
        assert compressor.max_speed_error == 5.0

    def test_value_coercion(self):
        spec = parse_compressor_spec("x:a=3,b=2.5,c=true,d=off,e=violating")
        assert spec.params_dict == {
            "a": 3, "b": 2.5, "c": True, "d": "off", "e": "violating",
        }
        assert isinstance(spec.params_dict["a"], int)

    def test_false_coercion(self):
        assert parse_compressor_spec("x:flag=false").params_dict == {"flag": False}

    def test_whitespace_tolerated(self):
        spec = parse_compressor_spec(" td-tr : epsilon = 30 ")
        assert spec.name == "td-tr"
        assert spec.params_dict == {"epsilon": 30}

    def test_str_round_trips(self):
        for text in ("td-tr:epsilon=30", "opw-sp:epsilon=30,speed=5", "ndp"):
            spec = parse_compressor_spec(text)
            again = parse_compressor_spec(str(spec))
            assert again == spec

    @pytest.mark.parametrize(
        "text",
        ["", ":epsilon=30", "td-tr:epsilon", "td-tr:=30", "td-tr:2bad=1",
         "td-tr:epsilon=30,,", "td-tr:a b=1", "td-tr:epsilon="],
    )
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(CompressorSpecError):
            parse_compressor_spec(text)

    def test_unknown_name_fails_at_build(self):
        spec = parse_compressor_spec("super-compress:epsilon=1")
        with pytest.raises(KeyError, match="available"):
            spec.build()

    def test_unknown_param_fails_at_build(self):
        with pytest.raises(TypeError):
            parse_compressor_spec("td-tr:bogus=1").build()

    def test_make_compressor_accepts_specs(self):
        compressor = make_compressor("td-tr:epsilon=30")
        assert isinstance(compressor, TDTR)
        assert compressor.epsilon == 30.0

    def test_make_compressor_kwargs_override_spec(self):
        compressor = make_compressor("td-tr:epsilon=30", epsilon=99.0)
        assert compressor.epsilon == 99.0

    def test_make_compressor_plain_name_unchanged(self):
        assert isinstance(make_compressor("td-tr", epsilon=10.0), TDTR)

    def test_spec_equality_and_hash(self):
        a = parse_compressor_spec("td-tr:epsilon=30")
        b = CompressorSpec("td-tr", (("epsilon", 30),))
        assert a == b
        assert hash(a) == hash(b)


#: Every concrete compressor with minimal keyword arguments.
_ALL_KEYWORD_FORMS = [
    (DouglasPeucker, {"epsilon": 30.0}),
    (TDTR, {"epsilon": 30.0}),
    (NOPW, {"epsilon": 30.0}),
    (BOPW, {"epsilon": 30.0}),
    (OPWTR, {"epsilon": 30.0}),
    (OPERB, {"epsilon": 30.0}),
    (CISED, {"epsilon": 30.0}),
    (OPWSP, {"max_dist_error": 30.0, "max_speed_error": 5.0}),
    (TDSP, {"max_dist_error": 30.0, "max_speed_error": 5.0}),
    (EveryIth, {"step": 3}),
    (DistanceThreshold, {"epsilon": 30.0}),
    (AngularChange, {"max_angle_rad": 0.5}),
    (SlidingWindow, {"epsilon": 30.0}),
    (BottomUp, {"epsilon": 30.0}),
    (TDTRBudget, {"budget": 6}),
    (BottomUpBudget, {"budget": 6}),
    (BottomUpTotalError, {"max_mean_error": 10.0}),
    (DeadReckoning, {"epsilon": 30.0}),
]


class TestKeywordOnlyConstruction:
    @pytest.mark.parametrize(("cls", "kwargs"), _ALL_KEYWORD_FORMS)
    def test_keyword_construction_is_silent(self, cls, kwargs, recwarn):
        cls(**kwargs)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    @pytest.mark.parametrize(("cls", "kwargs"), _ALL_KEYWORD_FORMS)
    def test_positional_construction_rejected(self, cls, kwargs):
        """The PR-1 positional shim is gone: thresholds are keyword-only."""
        values = list(kwargs.values())
        with pytest.raises(TypeError):
            cls(*values)

    @pytest.mark.parametrize(("cls", "kwargs"), _ALL_KEYWORD_FORMS)
    def test_compressors_pickle(self, cls, kwargs):
        """Process-pool dispatch requires every compressor to pickle."""
        compressor = cls(**kwargs)
        clone = pickle.loads(pickle.dumps(compressor))
        assert type(clone) is cls
        for name in kwargs:
            assert getattr(clone, name) == getattr(compressor, name)
