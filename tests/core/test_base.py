"""Tests for the Compressor base class and CompressionResult."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressionResult, Compressor, TDTR
from repro.core.base import require_positive
from repro.exceptions import CompressionError, ThresholdError
from repro.trajectory import Trajectory


class KeepEverything(Compressor):
    name = "keep-everything"

    def select_indices(self, traj):
        return np.arange(len(traj))


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_bad(self, bad):
        with pytest.raises(ThresholdError):
            require_positive("x", bad)


class TestCompressionResult:
    def test_derived_quantities(self, zigzag):
        result = CompressionResult(zigzag, np.array([0, 5, 18]), "test")
        assert result.n_original == 19
        assert result.n_kept == 3
        assert result.n_removed == 16
        assert result.compression_percent == pytest.approx(100 * 16 / 19)
        assert len(result.compressed) == 3

    def test_compressed_is_cached(self, zigzag):
        result = CompressionResult(zigzag, np.array([0, 18]), "test")
        assert result.compressed is result.compressed

    def test_requires_endpoints(self, zigzag):
        with pytest.raises(CompressionError, match="first and last"):
            CompressionResult(zigzag, np.array([0, 5]), "test")
        with pytest.raises(CompressionError, match="first and last"):
            CompressionResult(zigzag, np.array([1, 18]), "test")

    def test_requires_increasing(self, zigzag):
        with pytest.raises(CompressionError, match="strictly increasing"):
            CompressionResult(zigzag, np.array([0, 5, 5, 18]), "test")

    def test_requires_nonempty(self, zigzag):
        with pytest.raises(CompressionError, match=">= 1 point"):
            CompressionResult(zigzag, np.array([], dtype=int), "test")

    def test_repr(self, zigzag):
        result = CompressionResult(zigzag, np.array([0, 18]), "demo")
        assert "demo" in repr(result)
        assert "19 -> 2" in repr(result)


class TestCompressorBase:
    def test_short_series_pass_through(self):
        traj = Trajectory.from_points([(0, 0, 0), (1, 500, 500)])
        result = KeepEverything().compress(traj)
        assert result.n_kept == 2
        single = Trajectory.from_points([(0, 0, 0)])
        assert KeepEverything().compress(single).n_kept == 1

    def test_call_is_compress(self, zigzag):
        compressor = KeepEverything()
        assert np.array_equal(
            compressor(zigzag).indices, compressor.compress(zigzag).indices
        )

    def test_repr_shows_params(self):
        text = repr(TDTR(epsilon=25.0))
        assert "TDTR" in text
        assert "25.0" in text
