"""Tests for the angular-change baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AngularChange
from repro.trajectory import Trajectory


@pytest.fixture
def l_corner() -> Trajectory:
    """Straight east, 90-degree corner at index 4, straight north."""
    pts = [(float(i), 100.0 * i, 0.0) for i in range(5)]
    pts += [(float(5 + i), 400.0, 100.0 * (i + 1)) for i in range(4)]
    return Trajectory.from_points(pts)


class TestAngularChange:
    def test_keeps_the_corner(self, l_corner):
        result = AngularChange(max_angle_rad=np.radians(30)).compress(l_corner)
        assert 4 in result.indices

    def test_drops_straight_interior(self, l_corner):
        result = AngularChange(max_angle_rad=np.radians(30)).compress(l_corner)
        # Straight-run interiors are gone.
        assert result.n_kept <= 4

    def test_max_gap_limits_span(self, l_corner):
        capped = AngularChange(
            max_angle_rad=np.radians(30), max_gap_m=150.0
        ).compress(l_corner)
        uncapped = AngularChange(max_angle_rad=np.radians(30)).compress(l_corner)
        assert capped.n_kept > uncapped.n_kept
        xy = l_corner.xy[capped.indices]
        gaps = np.hypot(*(np.diff(xy, axis=0)).T)
        assert np.all(gaps <= 150.0 * 2 + 1e-9)  # gap checked before adding

    def test_handles_coincident_points(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (1, 0, 0), (2, 100, 0), (3, 100, 100), (4, 200, 100)]
        )
        result = AngularChange(max_angle_rad=np.radians(30)).compress(traj)
        assert result.indices[0] == 0
        assert result.indices[-1] == len(traj) - 1

    def test_rejects_bad_angles(self):
        with pytest.raises(ValueError):
            AngularChange(max_angle_rad=0.0)
        with pytest.raises(ValueError, match="at most pi"):
            AngularChange(max_angle_rad=4.0)

    def test_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            AngularChange(max_angle_rad=np.radians(10), max_gap_m=-5.0)
