"""Tests for dead-reckoning compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import DeadReckoning, OPWTR
from repro.error import mean_synchronized_error
from repro.exceptions import ThresholdError
from repro.trajectory import Trajectory

from tests.conftest import trajectories


class TestDeadReckoning:
    def test_constant_velocity_collapses(self, straight_line):
        """After the first update, the extrapolation is exact forever."""
        result = DeadReckoning(epsilon=30.0).compress(straight_line)
        # First point predicts stationary, so the second moving point
        # violates once; from then on the velocity is right.
        assert result.n_kept <= 3

    def test_turn_forces_update(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (10, 100, 0), (20, 200, 0), (30, 200, 100), (40, 200, 200)]
        )
        result = DeadReckoning(epsilon=30.0).compress(traj)
        assert 3 in result.indices  # first point off the predicted line

    def test_stop_forces_update(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (10, 100, 0), (20, 200, 0), (30, 205, 0), (40, 207, 0)]
        )
        result = DeadReckoning(epsilon=30.0).compress(traj)
        assert 3 in result.indices  # prediction says x=300, actual 205

    def test_threshold_bounds_prediction_error(self, urban_trajectory):
        """Every discarded point was within epsilon of the anchor's
        extrapolation at its own timestamp."""
        eps = 40.0
        result = DeadReckoning(epsilon=eps).compress(urban_trajectory)
        kept = set(result.indices.tolist())
        t = urban_trajectory.t
        xy = urban_trajectory.xy
        anchor = 0
        velocity = np.zeros(2)
        for i in range(1, len(urban_trajectory) - 1):
            predicted = xy[anchor] + velocity * (t[i] - t[anchor])
            deviation = float(np.hypot(*(xy[i] - predicted)))
            if i in kept:
                anchor = i
                velocity = (xy[i] - xy[i - 1]) / (t[i] - t[i - 1])
            else:
                assert deviation <= eps + 1e-9

    def test_monotone_in_threshold(self, urban_trajectory):
        kept = [
            DeadReckoning(epsilon=eps).compress(urban_trajectory).n_kept
            for eps in (10.0, 30.0, 90.0)
        ]
        assert kept == sorted(kept, reverse=True)

    def test_online_and_linear_time(self):
        assert DeadReckoning(epsilon=10.0).online

    def test_worse_error_than_opw_tr_but_cheaper_selection(self, small_dataset):
        """Hindsight chords beat forward extrapolation at equal epsilon
        in the compression/error trade — DR's niche is its O(N) cost."""
        eps = 40.0
        dr_err = np.mean(
            [
                mean_synchronized_error(t, DeadReckoning(epsilon=eps).compress(t).compressed)
                for t in small_dataset
            ]
        )
        opw_err = np.mean(
            [
                mean_synchronized_error(t, OPWTR(epsilon=eps).compress(t).compressed)
                for t in small_dataset
            ]
        )
        # DR is allowed to be worse, never catastrophically so at this eps.
        assert dr_err <= eps
        assert opw_err <= dr_err * 1.5 + 1e-9 or dr_err >= opw_err

    def test_rejects_bad_threshold(self):
        with pytest.raises(ThresholdError):
            DeadReckoning(epsilon=0.0)

    @settings(max_examples=25, deadline=None)
    @given(trajectories(min_points=3, max_points=30))
    def test_property_contract(self, traj):
        result = DeadReckoning(epsilon=25.0).compress(traj)
        assert result.indices[0] == 0
        assert result.indices[-1] == len(traj) - 1
        assert np.all(np.diff(result.indices) > 0)
