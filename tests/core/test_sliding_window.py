"""Tests for the fixed-size sliding-window baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SlidingWindow
from repro.error import max_synchronized_error
from repro.trajectory import Trajectory


class TestSlidingWindow:
    def test_window_boundaries_are_kept(self, urban_trajectory):
        window = 10
        idx = SlidingWindow(epsilon=50.0, window_size=window).compress(urban_trajectory).indices
        boundaries = set(range(0, len(urban_trajectory), window - 1))
        boundaries.add(len(urban_trajectory) - 1)
        assert boundaries <= set(idx.tolist())

    def test_spike_inside_window_is_kept(self):
        t = np.arange(0.0, 120.0, 10.0)
        y = np.zeros(12)
        y[5] = 80.0
        traj = Trajectory(t, np.column_stack([t * 10.0, y]))
        result = SlidingWindow(epsilon=30.0, window_size=12).compress(traj)
        assert 5 in result.indices

    def test_synchronized_criterion_controls_sed_empirically(self, urban_trajectory):
        """Unlike TD-TR/OPW-TR, the sliding window validates points
        against the *window* chord, not the final retained segments, so
        epsilon is not a hard bound — but it controls the error well in
        practice (here: within 1.5x on the standard fixture)."""
        eps = 40.0
        approx = (
            SlidingWindow(epsilon=eps, window_size=16, criterion="synchronized")
            .compress(urban_trajectory)
            .compressed
        )
        assert max_synchronized_error(urban_trajectory, approx) <= eps * 1.5

    def test_window_size_bounds_index_gaps(self, urban_trajectory):
        """Kept points can never be further apart than one window."""
        window = 8
        idx = SlidingWindow(epsilon=50.0, window_size=window).compress(urban_trajectory).indices
        assert int(np.diff(idx).max()) <= window - 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SlidingWindow(epsilon=10.0, window_size=2)
        with pytest.raises(ValueError, match="criterion"):
            SlidingWindow(epsilon=10.0, criterion="psychic")

    def test_straight_line_keeps_only_boundaries(self, straight_line):
        window = 5
        idx = SlidingWindow(epsilon=1.0, window_size=window).compress(straight_line).indices
        expected = sorted(
            set(range(0, len(straight_line), window - 1)) | {len(straight_line) - 1}
        )
        np.testing.assert_array_equal(idx, expected)
