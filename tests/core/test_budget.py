"""Tests for the budget-driven halting conditions (paper Sect. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import BottomUpBudget, BottomUpTotalError, TDTR, TDTRBudget
from repro.error import mean_synchronized_error, max_synchronized_error
from repro.trajectory import Trajectory

from tests.conftest import trajectories


class TestTDTRBudget:
    def test_exact_budget(self, urban_trajectory):
        for budget in (2, 5, 20, 40):
            result = TDTRBudget(budget=budget).compress(urban_trajectory)
            assert result.n_kept == budget

    def test_budget_larger_than_series_keeps_all(self, zigzag):
        result = TDTRBudget(budget=100).compress(zigzag)
        assert result.n_kept == len(zigzag)

    def test_error_free_series_stops_early(self, straight_line):
        result = TDTRBudget(budget=5).compress(straight_line)
        np.testing.assert_array_equal(result.indices, [0, len(straight_line) - 1])

    def test_error_decreases_with_budget(self, urban_trajectory):
        errors = [
            mean_synchronized_error(
                urban_trajectory, TDTRBudget(budget=b).compress(urban_trajectory).compressed
            )
            for b in (4, 8, 16, 32)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_picks_the_most_deviant_points_first(self):
        # Single spike: the 3-point budget must keep it.
        t = np.arange(0.0, 90.0, 10.0)
        y = np.zeros(9)
        y[4] = 100.0
        traj = Trajectory(t, np.column_stack([t * 10.0, y]))
        result = TDTRBudget(budget=3).compress(traj)
        np.testing.assert_array_equal(result.indices, [0, 4, 8])

    def test_perpendicular_criterion(self, urban_trajectory):
        result = TDTRBudget(budget=10, criterion="perpendicular").compress(urban_trajectory)
        assert result.n_kept == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            TDTRBudget(budget=1)
        with pytest.raises(ValueError):
            TDTRBudget(budget=10, criterion="psychic")

    @settings(max_examples=25, deadline=None)
    @given(trajectories(min_points=3, max_points=30))
    def test_property_budget_respected(self, traj):
        result = TDTRBudget(budget=5).compress(traj)
        assert result.n_kept <= max(5, 2)
        assert result.indices[0] == 0
        assert result.indices[-1] == len(traj) - 1


class TestBottomUpBudget:
    def test_exact_budget(self, urban_trajectory):
        for budget in (2, 7, 25):
            result = BottomUpBudget(budget=budget).compress(urban_trajectory)
            assert result.n_kept == budget

    def test_budget_larger_than_series_keeps_all(self, zigzag):
        assert BottomUpBudget(budget=500).compress(zigzag).n_kept == len(zigzag)

    def test_competitive_with_top_down_at_equal_budget(self, urban_trajectory):
        """Global cheapest-first merging should not be much worse than
        best-first splitting at the same budget."""
        budget = 12
        top_down = mean_synchronized_error(
            urban_trajectory, TDTRBudget(budget=budget).compress(urban_trajectory).compressed
        )
        bottom_up = mean_synchronized_error(
            urban_trajectory,
            BottomUpBudget(budget=budget).compress(urban_trajectory).compressed,
        )
        assert bottom_up <= top_down * 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BottomUpBudget(budget=0)
        with pytest.raises(ValueError):
            BottomUpBudget(budget=5, criterion="vibes")


class TestBottomUpTotalError:
    def test_alpha_stays_within_budget(self, urban_trajectory):
        for budget_m in (2.0, 5.0, 15.0):
            approx = (
                BottomUpTotalError(max_mean_error=budget_m).compress(urban_trajectory).compressed
            )
            alpha = mean_synchronized_error(urban_trajectory, approx)
            assert alpha <= budget_m + 1e-9

    def test_larger_budget_compresses_more(self, urban_trajectory):
        kept = [
            BottomUpTotalError(max_mean_error=budget).compress(urban_trajectory).n_kept
            for budget in (1.0, 4.0, 16.0, 64.0)
        ]
        assert kept == sorted(kept, reverse=True)

    def test_straight_line_collapses_under_any_budget(self, straight_line):
        result = BottomUpTotalError(max_mean_error=0.001).compress(straight_line)
        np.testing.assert_array_equal(result.indices, [0, len(straight_line) - 1])

    def test_tiny_budget_keeps_nearly_everything(self, zigzag):
        result = BottomUpTotalError(max_mean_error=1e-6).compress(zigzag)
        assert result.n_kept >= len(zigzag) - 2  # coincident/stop points only

    def test_validation(self):
        with pytest.raises(ValueError):
            BottomUpTotalError(max_mean_error=0.0)

    @settings(max_examples=20, deadline=None)
    @given(trajectories(min_points=3, max_points=25))
    def test_property_alpha_bound(self, traj):
        budget_m = 10.0
        approx = BottomUpTotalError(max_mean_error=budget_m).compress(traj).compressed
        assert mean_synchronized_error(traj, approx) <= budget_m + 1e-6

    def test_dominates_fixed_threshold_at_matched_error(self, urban_trajectory):
        """Spending the error budget globally should compress at least as
        well as a per-segment threshold that lands on the same α."""
        eps_result = TDTR(epsilon=40.0).compress(urban_trajectory)
        alpha = mean_synchronized_error(urban_trajectory, eps_result.compressed)
        budget_result = BottomUpTotalError(max_mean_error=alpha).compress(urban_trajectory)
        assert budget_result.n_kept <= eps_result.n_kept * 1.2
