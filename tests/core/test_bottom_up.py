"""Tests for the bottom-up merge baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BottomUp
from repro.error import max_perpendicular_error, max_synchronized_error
from repro.trajectory import Trajectory


class TestBottomUp:
    def test_straight_line_collapses(self, straight_line):
        result = BottomUp(epsilon=1.0).compress(straight_line)
        np.testing.assert_array_equal(result.indices, [0, len(straight_line) - 1])

    def test_per_segment_sed_bound(self, urban_trajectory):
        """Every merge kept the merged segment's max SED below epsilon, so
        the final approximation's max synchronized error is bounded."""
        eps = 40.0
        approx = (
            BottomUp(epsilon=eps, criterion="synchronized").compress(urban_trajectory).compressed
        )
        assert max_synchronized_error(urban_trajectory, approx) <= eps + 1e-9

    def test_perpendicular_criterion_bound(self, urban_trajectory):
        eps = 40.0
        approx = (
            BottomUp(epsilon=eps, criterion="perpendicular").compress(urban_trajectory).compressed
        )
        assert (
            max_perpendicular_error(urban_trajectory, approx, to_segment=False)
            <= eps + 1e-9
        )

    def test_keeps_spike(self):
        t = np.arange(0.0, 90.0, 10.0)
        y = np.zeros(9)
        y[4] = 70.0
        traj = Trajectory(t, np.column_stack([t * 10.0, y]))
        result = BottomUp(epsilon=30.0).compress(traj)
        assert 4 in result.indices

    def test_compression_monotone_in_threshold(self, urban_trajectory):
        kept = [
            BottomUp(epsilon=eps).compress(urban_trajectory).n_kept
            for eps in (10.0, 40.0, 160.0)
        ]
        assert kept == sorted(kept, reverse=True)

    def test_merges_more_than_opening_window_at_same_eps(self, urban_trajectory):
        """Bottom-up chooses merges globally (cheapest first), so it should
        compress at least as well as naive decimation at equal error
        budget — sanity check that the heap logic actually merges."""
        result = BottomUp(epsilon=50.0).compress(urban_trajectory)
        assert result.compression_percent > 10.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BottomUp(epsilon=0.0)
        with pytest.raises(ValueError, match="criterion"):
            BottomUp(epsilon=10.0, criterion="vibes")
