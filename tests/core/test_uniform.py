"""Tests for the naive baselines (every-ith, distance-threshold)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DistanceThreshold, EveryIth
from repro.trajectory import Trajectory


class TestEveryIth:
    def test_decimation(self, zigzag):
        result = EveryIth(step=4).compress(zigzag)
        np.testing.assert_array_equal(result.indices, [0, 4, 8, 12, 16, 18])

    def test_step_one_is_identity(self, zigzag):
        result = EveryIth(step=1).compress(zigzag)
        assert result.n_kept == len(zigzag)

    def test_huge_step_keeps_endpoints(self, zigzag):
        result = EveryIth(step=100).compress(zigzag)
        np.testing.assert_array_equal(result.indices, [0, 18])

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            EveryIth(step=0)
        with pytest.raises(ValueError):
            EveryIth(step=2.5)  # type: ignore[arg-type]


class TestDistanceThreshold:
    def test_drops_close_points(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (1, 2, 0), (2, 4, 0), (3, 100, 0), (4, 102, 0), (5, 200, 0)]
        )
        result = DistanceThreshold(epsilon=50.0).compress(traj)
        np.testing.assert_array_equal(result.indices, [0, 3, 5])

    def test_spacing_between_kept_points(self, urban_trajectory):
        eps = 120.0
        idx = DistanceThreshold(epsilon=eps).compress(urban_trajectory).indices
        xy = urban_trajectory.xy[idx]
        # All gaps except possibly the final one respect the spacing.
        gaps = np.hypot(*(np.diff(xy, axis=0)).T)
        assert np.all(gaps[:-1] >= eps - 1e-9)

    def test_stationary_object_collapses(self):
        traj = Trajectory.from_points([(i, 0.0, 0.0) for i in range(10)])
        result = DistanceThreshold(epsilon=1.0).compress(traj)
        np.testing.assert_array_equal(result.indices, [0, 9])

    def test_is_online(self):
        assert DistanceThreshold(epsilon=1.0).online
        assert EveryIth(step=2).online
