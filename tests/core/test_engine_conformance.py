"""Differential conformance: numpy engine vs the scalar python reference.

Every registered compressor accepts ``engine="numpy" | "python"``. The
numpy engine is the production path (batch kernels); the python engine is
the deliberately simple scalar oracle. This suite drives both over
randomized trajectories — including grid-snapped inputs where zero-length
and exactly collinear segments are common — and requires *identical*
retained indices plus *bit-identical* error reports. Any one-ulp drift
between a kernel and its scalar mirror shows up here as a flaky index
flip long before it would corrupt an experiment.

Duplicate timestamps are excluded by construction (the Trajectory
constructor rejects them); duplicate *positions* are deliberately common.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import COMPRESSORS, make_compressor
from repro.error.metrics import evaluate_compression
from repro.trajectory import Trajectory

#: One fixed, representative parameterization per registered algorithm.
#: Thresholds sit mid-scale for the coordinate lattice below, so both
#: "keep" and "drop" branches are exercised constantly.
ALGORITHM_PARAMS: dict[str, dict] = {
    "ndp": {"epsilon": 25.0},
    "td-tr": {"epsilon": 25.0},
    "nopw": {"epsilon": 25.0},
    "bopw": {"epsilon": 25.0},
    "opw-tr": {"epsilon": 25.0},
    "operb": {"epsilon": 25.0},
    "cised": {"epsilon": 25.0},
    "opw-sp": {"max_dist_error": 25.0, "max_speed_error": 4.0},
    "td-sp": {"max_dist_error": 25.0, "max_speed_error": 4.0},
    "every-ith": {"step": 3},
    "distance-threshold": {"epsilon": 25.0},
    "angular": {"max_angle_rad": 0.5},
    "sliding-window": {"epsilon": 25.0},
    "bottom-up": {"epsilon": 25.0},
    "td-tr-budget": {"budget": 6},
    "bottom-up-budget": {"budget": 6},
    "bottom-up-total-error": {"max_mean_error": 12.0},
    "dead-reckoning": {"epsilon": 25.0},
}


def test_every_registered_compressor_is_covered():
    """A new registry entry must join the conformance matrix."""
    assert set(ALGORITHM_PARAMS) == set(COMPRESSORS)


@st.composite
def conformance_trajectories(
    draw: st.DrawFn, min_points: int = 2, max_points: int = 24
) -> Trajectory:
    """Trajectories biased toward degenerate geometry.

    Coordinates live on a coarse 50 m lattice, so repeated positions
    (zero-length segments), exactly collinear runs, and exact threshold
    ties all occur routinely. Time gaps come from a small menu, keeping
    timestamps strictly increasing (duplicate timestamps are invalid
    input, rejected by the Trajectory constructor).
    """
    n = draw(st.integers(min_points, max_points))
    gaps = draw(
        st.lists(
            st.sampled_from([0.5, 1.0, 2.5, 10.0]), min_size=n - 1, max_size=n - 1
        )
    )
    t = np.concatenate([[0.0], np.cumsum(gaps)]) if n > 1 else np.array([0.0])
    coords = draw(
        st.lists(
            st.tuples(st.integers(-4, 4), st.integers(-4, 4)),
            min_size=n,
            max_size=n,
        )
    )
    return Trajectory(t, np.asarray(coords, dtype=float) * 50.0)


@pytest.mark.parametrize("name", sorted(ALGORITHM_PARAMS))
@settings(max_examples=200, deadline=None)
@given(traj=conformance_trajectories())
def test_engines_select_identical_indices(name: str, traj: Trajectory):
    numpy_engine = make_compressor(name, engine="numpy", **ALGORITHM_PARAMS[name])
    python_engine = make_compressor(name, engine="python", **ALGORITHM_PARAMS[name])
    np.testing.assert_array_equal(
        numpy_engine.select_indices(traj),
        python_engine.select_indices(traj),
        err_msg=f"{name}: engines disagree",
    )


@settings(max_examples=200, deadline=None)
@given(traj=conformance_trajectories(min_points=4))
def test_error_reports_bit_identical(traj: Trajectory):
    """evaluate_compression is bit-identical across engines.

    Uses TD-TR output as the approximation under test; the report spans
    every error notion in the package (synchronized, perpendicular,
    speed), so this transitively pins all five metric functions.
    """
    approx = make_compressor("td-tr", epsilon=25.0).compress(traj).compressed
    report_np = evaluate_compression(traj, approx, engine="numpy")
    report_py = evaluate_compression(traj, approx, engine="python")
    for field in dataclasses.fields(report_np):
        left = getattr(report_np, field.name)
        right = getattr(report_py, field.name)
        assert left == right, (
            f"{field.name}: numpy={left!r} != python={right!r}"
        )


@pytest.mark.parametrize("name", sorted(ALGORITHM_PARAMS))
def test_engines_agree_on_realistic_trip(name: str, urban_trajectory):
    """Dense realistic data, not just lattice geometry."""
    numpy_engine = make_compressor(name, engine="numpy", **ALGORITHM_PARAMS[name])
    python_engine = make_compressor(name, engine="python", **ALGORITHM_PARAMS[name])
    np.testing.assert_array_equal(
        numpy_engine.select_indices(urban_trajectory),
        python_engine.select_indices(urban_trajectory),
        err_msg=f"{name}: engines disagree on urban trip",
    )
