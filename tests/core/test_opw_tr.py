"""Tests for OPW-TR (paper Sect. 3.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import NOPW, OPWTR
from repro.error import max_synchronized_error, mean_synchronized_error
from repro.trajectory import Trajectory

from tests.conftest import trajectories


class TestOPWTR:
    def test_is_online(self):
        assert OPWTR(epsilon=10.0).online

    def test_sed_bound_invariant(self, urban_trajectory):
        """Every emitted segment was validated against its own chord when
        its end point was the float, so the continuous max synchronized
        error stays within the threshold."""
        for eps in (15.0, 40.0, 90.0):
            approx = OPWTR(epsilon=eps).compress(urban_trajectory).compressed
            assert max_synchronized_error(urban_trajectory, approx) <= eps + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(trajectories(min_points=3, max_points=30))
    def test_property_sed_bound(self, traj):
        eps = 25.0
        approx = OPWTR(epsilon=eps).compress(traj).compressed
        assert max_synchronized_error(traj, approx) <= eps + 1e-6

    def test_keeps_timing_deviation_nopw_drops(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (10, 100, 0), (110, 150, 0), (120, 250, 0),
             (130, 350, 0), (140, 450, 0), (150, 550, 0)]
        )
        nopw = NOPW(epsilon=30.0).compress(traj)
        opwtr = OPWTR(epsilon=30.0).compress(traj)
        assert nopw.n_kept == 2  # geometrically straight
        assert opwtr.n_kept > 2  # temporally skewed

    def test_lower_sync_error_than_nopw(self, small_dataset):
        """The paper's Fig. 9 relation."""
        eps = 50.0
        opwtr_err = np.mean(
            [
                mean_synchronized_error(t, OPWTR(epsilon=eps).compress(t).compressed)
                for t in small_dataset
            ]
        )
        nopw_err = np.mean(
            [
                mean_synchronized_error(t, NOPW(epsilon=eps).compress(t).compressed)
                for t in small_dataset
            ]
        )
        assert opwtr_err < nopw_err

    def test_before_float_strategy_compresses_more(self, urban_trajectory):
        violating = OPWTR(epsilon=40.0, strategy="violating").compress(urban_trajectory)
        before = OPWTR(epsilon=40.0, strategy="before-float").compress(urban_trajectory)
        assert before.n_kept <= violating.n_kept

    def test_compression_monotone_in_threshold(self, urban_trajectory):
        kept = [
            OPWTR(epsilon=eps).compress(urban_trajectory).n_kept
            for eps in (10.0, 30.0, 60.0, 120.0)
        ]
        assert kept == sorted(kept, reverse=True)

    def test_straight_line_collapses(self, straight_line):
        result = OPWTR(epsilon=1.0).compress(straight_line)
        np.testing.assert_array_equal(result.indices, [0, len(straight_line) - 1])
