"""Tests for the SP class: OPW-SP, TD-SP and the paper's SPT pseudocode."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import OPWSP, OPWTR, TDSP, TDTR, speed_violations, spt_paper_indices
from repro.error import max_synchronized_error
from repro.exceptions import ThresholdError
from repro.trajectory import Trajectory

from tests.conftest import trajectories


@pytest.fixture
def braking() -> Trajectory:
    """Constant-heading drive with a hard braking event at index 3.

    Geometrically and temporally the line is well approximated by its
    endpoints at coarse thresholds, but the speed profile jumps from
    20 m/s to 2 m/s — the event the SP criterion exists to retain.
    """
    return Trajectory.from_points(
        [(0, 0, 0), (10, 200, 0), (20, 400, 0), (30, 600, 0),
         (40, 620, 0), (50, 640, 0), (60, 660, 0)]
    )


class TestSpeedViolations:
    def test_flags_braking_point(self, braking):
        mask = speed_violations(braking, max_speed_error=5.0)
        assert mask[3]
        assert not mask[1]

    def test_endpoints_never_flagged(self, braking):
        mask = speed_violations(braking, max_speed_error=0.001)
        assert not mask[0]
        assert not mask[-1]

    def test_short_series(self):
        two = Trajectory.from_points([(0, 0, 0), (1, 100, 0)])
        assert not speed_violations(two, 1.0).any()


class TestOPWSP:
    def test_matches_paper_pseudocode_exactly(self, urban_trajectory, zigzag):
        """OPWSP is the vectorized form of the paper's SPT pseudocode."""
        for traj in (urban_trajectory, zigzag):
            for dist_eps, speed_eps in ((20.0, 2.0), (40.0, 5.0), (80.0, 25.0)):
                faithful = spt_paper_indices(traj, dist_eps, speed_eps)
                optimized = OPWSP(max_dist_error=dist_eps, max_speed_error=speed_eps).compress(traj).indices
                np.testing.assert_array_equal(faithful, optimized)

    @settings(max_examples=25, deadline=None)
    @given(trajectories(min_points=3, max_points=25))
    def test_property_matches_paper_pseudocode(self, traj):
        faithful = spt_paper_indices(traj, 25.0, 5.0)
        optimized = OPWSP(max_dist_error=25.0, max_speed_error=5.0).compress(traj).indices
        np.testing.assert_array_equal(faithful, optimized)

    def test_retains_braking_point(self, braking):
        # Distance threshold generous; only the speed criterion fires.
        result = OPWSP(max_dist_error=500.0, max_speed_error=5.0).compress(braking)
        assert 3 in result.indices

    def test_large_speed_threshold_degenerates_to_opw_tr(self, urban_trajectory):
        """The paper: OPW-SP(25 m/s) coincides with OPW-TR."""
        sp = OPWSP(max_dist_error=50.0, max_speed_error=1000.0).compress(urban_trajectory)
        tr = OPWTR(epsilon=50.0).compress(urban_trajectory)
        np.testing.assert_array_equal(sp.indices, tr.indices)

    def test_smaller_speed_threshold_keeps_more(self, urban_trajectory):
        kept = [
            OPWSP(max_dist_error=50.0, max_speed_error=speed).compress(urban_trajectory).n_kept
            for speed in (1.0, 5.0, 25.0)
        ]
        assert kept == sorted(kept, reverse=True)

    def test_sed_bound_still_holds(self, urban_trajectory):
        approx = OPWSP(max_dist_error=40.0, max_speed_error=5.0).compress(urban_trajectory).compressed
        assert max_synchronized_error(urban_trajectory, approx) <= 40.0 + 1e-9

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ThresholdError):
            OPWSP(max_dist_error=0.0, max_speed_error=5.0)
        with pytest.raises(ThresholdError):
            OPWSP(max_dist_error=50.0, max_speed_error=-1.0)

    def test_is_online(self):
        assert OPWSP(max_dist_error=10.0, max_speed_error=5.0).online


class TestSptPaperPort:
    def test_short_series_returned_as_is(self):
        two = Trajectory.from_points([(0, 0, 0), (1, 9, 9)])
        np.testing.assert_array_equal(spt_paper_indices(two, 10.0, 5.0), [0, 1])

    def test_endpoints_always_kept(self, zigzag):
        idx = spt_paper_indices(zigzag, 30.0, 5.0)
        assert idx[0] == 0
        assert idx[-1] == len(zigzag) - 1

    def test_rejects_bad_thresholds(self, zigzag):
        with pytest.raises(ThresholdError):
            spt_paper_indices(zigzag, -1.0, 5.0)


class TestTDSP:
    def test_retains_braking_point(self, braking):
        result = TDSP(max_dist_error=500.0, max_speed_error=5.0).compress(braking)
        assert 3 in result.indices

    def test_retains_all_speed_violations(self, urban_trajectory):
        speed_eps = 3.0
        mask = speed_violations(urban_trajectory, speed_eps)
        result = TDSP(max_dist_error=60.0, max_speed_error=speed_eps).compress(urban_trajectory)
        violating = set(np.nonzero(mask)[0].tolist())
        assert violating <= set(result.indices.tolist())

    def test_large_speed_threshold_degenerates_to_td_tr(self, urban_trajectory):
        sp = TDSP(max_dist_error=50.0, max_speed_error=1000.0).compress(urban_trajectory)
        tr = TDTR(epsilon=50.0).compress(urban_trajectory)
        np.testing.assert_array_equal(sp.indices, tr.indices)

    def test_sed_bound_still_holds(self, urban_trajectory):
        approx = TDSP(max_dist_error=40.0, max_speed_error=5.0).compress(urban_trajectory).compressed
        assert max_synchronized_error(urban_trajectory, approx) <= 40.0 + 1e-9

    def test_batch_flag(self):
        assert not TDSP(max_dist_error=10.0, max_speed_error=5.0).online
