"""Tests for the one-pass error-bounded compressors (OPERB, CISED).

The two families share a state machine (anchor + last + velocity-space
feasible region) and differ only in the region geometry: OPERB clips an
axis-aligned rectangle, CISED a convex polygon. The load-bearing claims
tested here:

* **Soundness** — the reconstructed trajectory never deviates from the
  original by more than epsilon under the synchronized (SED) metric.
* **Streaming ≡ batch** — the push-based compressor emits exactly the
  fixes the batch replay retains, on both engines.
* **O(1) state** — per-session memory is a small constant independent
  of stream length (the whole point of one-pass over opening-window).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import CISED, OPERB, PolygonRegion, RectangleRegion
from repro.error import max_synchronized_error
from repro.exceptions import StreamError
from repro.streaming import (
    OnlineCompressor,
    PointStream,
    StreamingCISED,
    StreamingOPERB,
    available_online_compressors,
    make_online_compressor,
)
from repro.trajectory import Trajectory
from repro.types import Fix

from tests.conftest import trajectories

EPSILON = 25.0

#: Upper bound on ``state_size`` for any one-pass compressor: anchor fix
#: (3 floats) + last fix (3 floats) + region (rectangle: 4 floats;
#: polygon: one half-plane offset per edge, default m=16).
STATE_CEILING = 3 + 3 + 16


def drain(compressor: OnlineCompressor, traj: Trajectory) -> list[Fix]:
    out: list[Fix] = []
    for fix in PointStream.from_trajectory(traj):
        out.extend(compressor.push(fix))
    out.extend(compressor.finish())
    return out


def reconstruct(fixes: list[Fix]) -> Trajectory:
    return Trajectory.from_points([(f.t, f.x, f.y) for f in fixes])


def make_streaming(name: str) -> OnlineCompressor:
    return make_online_compressor(f"{name}:epsilon={EPSILON}")


class TestErrorBound:
    """SED soundness: the defining guarantee of both algorithms."""

    @pytest.mark.parametrize("name", ["operb", "cised"])
    @settings(max_examples=50, deadline=None)
    @given(traj=trajectories(min_points=2, max_points=50))
    def test_sed_bound_holds(self, name, traj):
        emitted = drain(make_streaming(name), traj)
        assert max_synchronized_error(traj, reconstruct(emitted)) <= EPSILON + 1e-6

    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_sed_bound_on_realistic_trip(self, name, urban_trajectory):
        emitted = drain(make_streaming(name), urban_trajectory)
        approx = reconstruct(emitted)
        assert max_synchronized_error(urban_trajectory, approx) <= EPSILON + 1e-6
        # And the compressor actually compresses a realistic trip
        # (at epsilon=25 it drops well over a third of the 90 fixes).
        assert len(emitted) < len(urban_trajectory) * 2 / 3

    def test_straight_line_fully_compressed(self, straight_line):
        for name in ("operb", "cised"):
            emitted = drain(make_streaming(name), straight_line)
            assert len(emitted) == 2, name


class TestBatchEquivalence:
    """The batch classes replay the identical one-pass state machine."""

    @pytest.mark.parametrize(
        ("batch_cls", "streaming_cls"),
        [(OPERB, StreamingOPERB), (CISED, StreamingCISED)],
        ids=["operb", "cised"],
    )
    @settings(max_examples=30, deadline=None)
    @given(traj=trajectories(min_points=2, max_points=40))
    def test_streaming_matches_batch(self, batch_cls, streaming_cls, traj):
        batch_times = traj.t[batch_cls(epsilon=EPSILON).compress(traj).indices]
        emitted = drain(streaming_cls(epsilon=EPSILON), traj)
        np.testing.assert_array_equal([f.t for f in emitted], batch_times)

    @pytest.mark.parametrize("name", ["operb", "cised"])
    @settings(max_examples=30, deadline=None)
    @given(traj=trajectories(min_points=2, max_points=40))
    def test_engines_bit_identical(self, name, traj):
        from repro.core.registry import make_compressor

        np.testing.assert_array_equal(
            make_compressor(name, epsilon=EPSILON, engine="numpy").select_indices(traj),
            make_compressor(name, epsilon=EPSILON, engine="python").select_indices(traj),
            err_msg=f"{name}: engines disagree",
        )


class TestConstantState:
    """O(1) per-session memory, the headline property vs opening-window."""

    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_state_bounded_on_long_stream(self, name):
        rng = np.random.default_rng(7)
        compressor = make_streaming(name)
        t, x, y = 0.0, 0.0, 0.0
        for _ in range(10_000):
            t += 1.0
            x += rng.normal(0.0, 12.0)
            y += rng.normal(0.0, 12.0)
            compressor.push(Fix(t, x, y))
            assert compressor.state_size <= STATE_CEILING
        compressor.finish()

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_state_bounded_on_100k_stream(self, name):
        rng = np.random.default_rng(7)
        compressor = make_streaming(name)
        peak = 0
        t, x, y = 0.0, 0.0, 0.0
        for _ in range(100_000):
            t += 1.0
            x += rng.normal(0.0, 12.0)
            y += rng.normal(0.0, 12.0)
            compressor.push(Fix(t, x, y))
            peak = max(peak, compressor.state_size)
        compressor.finish()
        assert peak <= STATE_CEILING
        assert compressor.n_pushed == 100_000

    def test_operb_state_is_ten_floats(self):
        # anchor (3) + last (3) + rectangle (4): nothing grows.
        compressor = StreamingOPERB(epsilon=EPSILON)
        for i in range(100):
            compressor.push(Fix(float(i), float(i * 3 % 17), float(i * 5 % 13)))
            assert compressor.state_size <= 10


class TestProtocol:
    """Every registered online algorithm satisfies OnlineCompressor."""

    @pytest.mark.parametrize("name", sorted(["operb", "cised"]))
    def test_isinstance_protocol(self, name):
        assert isinstance(make_streaming(name), OnlineCompressor)

    def test_all_registered_names_satisfy_protocol(self):
        for name in available_online_compressors():
            if name in ("squish", "sttrace"):
                spec = f"{name}:budget=10"
            else:
                spec = f"{name}:epsilon=30"
                if name == "opw-sp":
                    spec += ",speed=5"
            compressor = make_online_compressor(spec)
            assert isinstance(compressor, OnlineCompressor), name

    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_counters(self, name, urban_trajectory):
        compressor = make_streaming(name)
        emitted = drain(compressor, urban_trajectory)
        assert compressor.n_pushed == len(urban_trajectory)
        assert compressor.n_emitted == len(emitted)

    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_first_fix_emitted_immediately(self, name):
        out = make_streaming(name).push(Fix(0.0, 1.0, 2.0))
        assert list(out) == [Fix(0.0, 1.0, 2.0)]

    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_finish_idempotent_and_closed(self, name):
        compressor = make_streaming(name)
        assert not compressor.closed
        compressor.push(Fix(0.0, 0.0, 0.0))
        compressor.push(Fix(1.0, 5.0, 0.0))
        tail = compressor.finish()
        assert compressor.closed
        assert [f.t for f in tail] == [1.0]
        assert compressor.finish() == []

    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_finish_on_empty(self, name):
        assert make_streaming(name).finish() == []

    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_push_after_finish_raises(self, name):
        compressor = make_streaming(name)
        compressor.finish()
        with pytest.raises(StreamError, match="finish"):
            compressor.push(Fix(0.0, 0.0, 0.0))

    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_backwards_time_raises(self, name):
        compressor = make_streaming(name)
        compressor.push(Fix(1.0, 0.0, 0.0))
        with pytest.raises(StreamError, match="backwards"):
            compressor.push(Fix(0.5, 0.0, 0.0))

    @pytest.mark.parametrize("name", ["operb", "cised"])
    def test_sync_error_bound(self, name):
        assert make_streaming(name).sync_error_bound() == EPSILON

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingOPERB(epsilon=-1.0)
        with pytest.raises(ValueError, match="m"):
            StreamingCISED(epsilon=10.0, m=2)


class TestRegions:
    """Geometry units: the feasible-region primitives themselves."""

    def test_rectangle_inscribed_in_disc(self):
        region = RectangleRegion(3.0, 4.0, 2.0)
        half = 2.0 * math.sqrt(0.5)
        for x, y in [(3.0 + half, 4.0 + half), (3.0 - half, 4.0 - half)]:
            assert region.contains(x, y)
            # Corners sit exactly on the disc of radius 2 around (3, 4).
            assert math.hypot(x - 3.0, y - 4.0) == pytest.approx(2.0)
        assert not region.contains(3.0 + 2.0, 4.0)  # on the disc, off the square

    def test_rectangle_clip_shrinks(self):
        region = RectangleRegion(0.0, 0.0, 2.0)
        region.clip(1.0, 0.0, 2.0)
        assert region.contains(0.5, 0.0)
        assert not region.contains(-1.4, 0.0)  # cut off by the second square

    def test_rectangle_empty_after_disjoint_clip(self):
        region = RectangleRegion(0.0, 0.0, 1.0)
        region.clip(100.0, 0.0, 1.0)
        assert not region.contains(0.0, 0.0)
        assert not region.contains(100.0, 0.0)

    def test_polygon_covers_more_of_disc_than_rectangle(self):
        # A regular 16-gon inscribed in the unit disc contains points the
        # inscribed square misses — the reason CISED out-compresses OPERB.
        poly = PolygonRegion(0.0, 0.0, 1.0, 16)
        rect = RectangleRegion(0.0, 0.0, 1.0)
        probe = (0.9, 0.0)  # near the disc boundary on an axis
        assert poly.contains(*probe)
        assert not rect.contains(*probe)

    def test_polygon_clip_to_empty(self):
        poly = PolygonRegion(0.0, 0.0, 1.0, 16)
        poly.clip(100.0, 0.0, 1.0)
        # The offsets now describe an empty region: no point is inside.
        assert not poly.contains(0.0, 0.0)
        assert not poly.contains(50.0, 0.0)
        assert not poly.contains(100.0, 0.0)

    def test_polygon_state_constant_under_clipping(self):
        # m half-plane offsets, no matter how many discs are intersected.
        rng = np.random.default_rng(3)
        poly = PolygonRegion(0.0, 0.0, 10.0, 16)
        assert poly.state_size == 16
        for _ in range(200):
            poly.clip(rng.normal(0.0, 0.1), rng.normal(0.0, 0.1), 10.0)
        assert poly.state_size == 16

    def test_polygon_clip_is_exact_mgon_intersection(self):
        # Intersecting two discs' inscribed 8-gons via clip() must agree
        # with a region built from either disc and clipped by the other,
        # point for point: offsets are the exact intersection, there is
        # no approximation loss from clipping order.
        a = PolygonRegion(0.0, 0.0, 2.0, 8)
        a.clip(1.0, 0.5, 2.0)
        b = PolygonRegion(1.0, 0.5, 2.0, 8)
        b.clip(0.0, 0.0, 2.0)
        rng = np.random.default_rng(11)
        for _ in range(500):
            x, y = rng.uniform(-2.5, 3.5), rng.uniform(-2.5, 3.0)
            assert a.contains(x, y) == b.contains(x, y)

    def test_cised_m_controls_fidelity(self, urban_trajectory):
        # More polygon edges → better disc approximation → fewer points.
        coarse = drain(StreamingCISED(epsilon=EPSILON, m=4), urban_trajectory)
        fine = drain(StreamingCISED(epsilon=EPSILON, m=24), urban_trajectory)
        assert len(fine) <= len(coarse)
