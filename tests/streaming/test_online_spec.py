"""Spec-string support in :func:`make_online_compressor`.

The factory accepts the same unified grammar as the batch registry, so a
spec that configures a pipeline run (or a server session) works verbatim
for streaming — and the failure modes are spelled out, not KeyErrors
from parameter plumbing.
"""

from __future__ import annotations

import pytest

from repro.core.registry import available_compressors
from repro.exceptions import CompressorSpecError, StreamError
from repro.streaming import (
    available_online_compressors,
    make_online_compressor,
)


class TestSpecStrings:
    def test_opw_tr_spec(self):
        opw = make_online_compressor("opw-tr:epsilon=30")
        assert opw.criterion == "synchronized"
        assert opw.epsilon == 30.0
        assert opw.max_speed_error is None

    def test_opw_sp_spec(self):
        opw = make_online_compressor("opw-sp:epsilon=30,max_speed_error=5")
        assert opw.criterion == "synchronized"
        assert opw.max_speed_error == 5.0

    def test_nopw_spec_with_max_window(self):
        opw = make_online_compressor("nopw:epsilon=12.5,max_window=64")
        assert opw.criterion == "perpendicular"
        assert opw.epsilon == 12.5
        assert opw.max_window == 64

    def test_operb_spec(self):
        operb = make_online_compressor("operb:epsilon=30")
        assert operb.algorithm == "operb"
        assert operb.sync_error_bound() == 30.0

    def test_cised_spec(self):
        cised = make_online_compressor("cised:epsilon=30,m=12")
        assert cised.algorithm == "cised"
        assert cised.sync_error_bound() == 30.0
        assert cised.m == 12

    def test_cli_aliases(self):
        # The CLI's batch aliases work unchanged for streaming.
        opw = make_online_compressor("opw-sp:max_dist_error=30,speed=5")
        assert opw.epsilon == 30.0
        assert opw.max_speed_error == 5.0

    def test_max_dist_error_alias_for_one_pass(self):
        operb = make_online_compressor("operb:max_dist_error=30")
        assert operb.sync_error_bound() == 30.0

    def test_engine_entry_is_ignored(self):
        # Batch spec strings may carry engine=python; streaming has one
        # engine, so the entry must not be an error.
        opw = make_online_compressor("opw-tr:epsilon=30,engine=python")
        assert opw.epsilon == 30.0

    def test_explicit_kwargs_override_spec(self):
        opw = make_online_compressor("opw-tr:epsilon=30", epsilon=7.0)
        assert opw.epsilon == 7.0


class TestSpecErrors:
    @pytest.mark.parametrize("name", ["td-tr:epsilon=30", "ndp:epsilon=30",
                                      "bottom-up:epsilon=30"])
    def test_batch_only_algorithm_is_a_clear_error(self, name):
        with pytest.raises(StreamError) as err:
            make_online_compressor(name)
        message = str(err.value)
        assert "batch-only" in message
        for streamable in available_online_compressors():
            assert streamable in message  # the fix is named in the error

    def test_unknown_name_is_keyerror(self):
        with pytest.raises(KeyError):
            make_online_compressor("no-such-algo:epsilon=30")

    def test_unsupported_parameter(self):
        with pytest.raises(StreamError) as err:
            make_online_compressor("opw-tr:epsilon=30,budget=5")
        assert "budget" in str(err.value)

    def test_unsupported_parameter_for_one_pass(self):
        # max_window is an OPW knob; the one-pass compressors hold no
        # window, so accepting it silently would be misleading.
        with pytest.raises(StreamError) as err:
            make_online_compressor("operb:epsilon=30,max_window=64")
        assert "max_window" in str(err.value)

    def test_malformed_spec(self):
        with pytest.raises(CompressorSpecError):
            make_online_compressor("opw-tr:epsilon")

    def test_missing_epsilon_in_spec(self):
        with pytest.raises(ValueError):
            make_online_compressor("opw-tr")

    def test_streamable_names_are_registered_batch_algorithms(self):
        # Threshold algorithms mirror a batch twin.  The budget
        # algorithms (SQUISH-E, STTrace) are inherently online — their
        # offline oracle is td-tr-budget, not a same-name batch twin.
        online_only = {"squish", "sttrace"}
        mirrored = set(available_online_compressors()) - online_only
        assert mirrored <= set(available_compressors())


class TestRegisterOnline:
    def test_third_party_registration(self):
        from repro.streaming import StreamingOPERB, register_online
        from repro.streaming.registry import _ONLINE

        def _factory(*, epsilon):
            return StreamingOPERB(epsilon=epsilon)

        register_online("test-operb-clone", _factory, {"epsilon": "epsilon"})
        try:
            assert "test-operb-clone" in available_online_compressors()
            clone = make_online_compressor("test-operb-clone:epsilon=9")
            assert clone.sync_error_bound() == 9.0
        finally:
            _ONLINE.pop("test-operb-clone", None)

    def test_duplicate_registration_rejected(self):
        from repro.streaming import register_online

        with pytest.raises(ValueError, match="already registered"):
            register_online("operb", lambda **kw: None, {})
