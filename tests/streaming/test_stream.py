"""Tests for point streams."""

from __future__ import annotations

import pytest

from repro.exceptions import StreamError
from repro.streaming import PointStream, merge_streams
from repro.types import Fix


class TestPointStream:
    def test_replays_trajectory(self, zigzag):
        fixes = list(PointStream.from_trajectory(zigzag))
        assert len(fixes) == len(zigzag)
        assert fixes[0] == zigzag.point(0)
        assert fixes[-1] == zigzag.point(-1)

    def test_counts_delivered(self, zigzag):
        stream = PointStream.from_trajectory(zigzag)
        next(stream)
        next(stream)
        assert stream.delivered == 2

    def test_rejects_backwards_time(self):
        stream = PointStream([Fix(1.0, 0, 0), Fix(0.5, 1, 1)])
        next(stream)
        with pytest.raises(StreamError, match="backwards"):
            next(stream)

    def test_rejects_duplicate_time(self):
        stream = PointStream([Fix(1.0, 0, 0), Fix(1.0, 1, 1)])
        next(stream)
        with pytest.raises(StreamError):
            next(stream)

    def test_rejects_non_finite(self):
        stream = PointStream([Fix(float("inf"), 0, 0)], source_id="bad")
        with pytest.raises(StreamError, match="non-finite"):
            next(stream)

    def test_accepts_plain_tuples(self):
        stream = PointStream([(0.0, 1.0, 2.0), (1.0, 3.0, 4.0)])
        assert list(stream) == [Fix(0.0, 1.0, 2.0), Fix(1.0, 3.0, 4.0)]


class TestMergeStreams:
    def test_global_time_order(self):
        a = [Fix(0.0, 0, 0), Fix(10.0, 1, 1), Fix(20.0, 2, 2)]
        b = [Fix(5.0, 9, 9), Fix(15.0, 8, 8)]
        merged = list(merge_streams({"a": a, "b": b}))
        times = [fix.t for _, fix in merged]
        assert times == sorted(times)
        assert [obj for obj, _ in merged] == ["a", "b", "a", "b", "a"]

    def test_tie_broken_by_object_id(self):
        a = [Fix(0.0, 0, 0)]
        b = [Fix(0.0, 1, 1)]
        merged = list(merge_streams({"b": b, "a": a}))
        assert [obj for obj, _ in merged] == ["a", "b"]

    def test_empty_streams_skipped(self):
        merged = list(merge_streams({"empty": [], "one": [Fix(1.0, 0, 0)]}))
        assert len(merged) == 1
        assert merged[0][0] == "one"

    def test_no_streams(self):
        assert list(merge_streams({})) == []

    def test_invalid_substream_raises(self):
        bad = [Fix(2.0, 0, 0), Fix(1.0, 0, 0)]
        with pytest.raises(StreamError):
            list(merge_streams({"bad": bad}))
