"""Budget-compressor tests: the deterministic priority-queue eviction core.

Hypothesis pins the contract the serve tier leans on — the budget is
never exceeded, eviction order is a pure function of the pushed series
(so WAL replay rebuilds sessions bit-identically), SQUISH-E priorities
only ever grow — plus the dead-reckoning differential against its batch
twin and the renegotiation surface.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_compressor
from repro.exceptions import StreamError
from repro.streaming import (
    Eviction,
    StreamingDeadReckoning,
    StreamingSQUISH,
    StreamingSTTrace,
    make_online_compressor,
    partition_events,
)
from repro.streaming.budget import MIN_BUDGET
from repro.types import Fix

from tests.conftest import trajectories

BUDGET_CLASSES = [StreamingSQUISH, StreamingSTTrace]


@st.composite
def fix_streams(draw, min_size=2, max_size=40):
    """Strictly time-ordered fix streams with bounded coordinates."""
    n = draw(st.integers(min_size, max_size))
    gaps = draw(
        st.lists(
            st.floats(0.5, 30.0, allow_nan=False, allow_infinity=False),
            min_size=n - 1, max_size=n - 1,
        )
    )
    coords = draw(
        st.lists(
            st.tuples(
                st.floats(-1_000.0, 1_000.0, allow_nan=False),
                st.floats(-1_000.0, 1_000.0, allow_nan=False),
            ),
            min_size=n, max_size=n,
        )
    )
    t = 0.0
    fixes = [Fix(0.0, *coords[0])]
    for gap, (x, y) in zip(gaps, coords[1:]):
        t += gap
        fixes.append(Fix(t, x, y))
    return fixes


def replay(compressor, fixes):
    """(net retained, evicted) after pushing all fixes and finishing."""
    retained: list[Fix] = []
    evicted: list[Fix] = []
    for fix in fixes:
        kept, gone = partition_events(compressor.push(fix))
        retained.extend(kept)
        evicted.extend(gone)
    kept, gone = partition_events(compressor.finish())
    retained.extend(kept)
    evicted.extend(gone)
    gone_times = {f.t for f in evicted}
    net = [f for f in retained if f.t not in gone_times]
    return net, evicted


def sed_against(path: list[Fix], fix: Fix) -> float:
    """Synchronized distance of ``fix`` to the piecewise path."""
    for pred, succ in zip(path, path[1:]):
        if pred.t <= fix.t <= succ.t:
            ratio = (fix.t - pred.t) / (succ.t - pred.t)
            px = pred.x + ratio * (succ.x - pred.x)
            py = pred.y + ratio * (succ.y - pred.y)
            return math.hypot(fix.x - px, fix.y - py)
    raise AssertionError(f"{fix} outside the retained span")


class TestBudgetInvariant:
    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    @settings(max_examples=60, deadline=None)
    @given(stream=fix_streams(), budget=st.integers(2, 8), data=st.data())
    def test_budget_never_exceeded(self, cls, stream, budget, data):
        compressor = cls(budget=budget)
        net: dict[float, Fix] = {}
        for fix in stream:
            for event in compressor.push(fix):
                if isinstance(event, Eviction):
                    assert event.fix.t in net, "evicted a non-retained point"
                    del net[event.fix.t]
                else:
                    net[event.t] = event
            # The invariant holds after *every* push, not just at close.
            assert len(net) <= budget
            assert compressor.buffer_len == len(net)
        kept, gone = partition_events(compressor.finish())
        for fix in gone:
            del net[fix.t]
        for fix in kept:
            net[fix.t] = fix
        assert len(net) <= budget
        # Event-derived state matches the compressor's own buffer.
        assert sorted(net) == [f.t for f, _ in compressor.buffer_snapshot()]

    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    @settings(max_examples=40, deadline=None)
    @given(stream=fix_streams(min_size=3), budget=st.integers(2, 6))
    def test_endpoints_always_retained(self, cls, stream, budget):
        net, _ = replay(cls(budget=budget), stream)
        assert net[0] == stream[0]
        assert net[-1] == stream[-1]
        times = [f.t for f in net]
        assert times == sorted(times)
        pushed = set(stream)
        assert all(f in pushed for f in net)

    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    def test_budget_below_minimum_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(budget=MIN_BUDGET - 1)


class TestDeterminism:
    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    @settings(max_examples=40, deadline=None)
    @given(stream=fix_streams(max_size=30), budget=st.integers(2, 5))
    def test_eviction_order_is_a_pure_function_of_the_stream(
        self, cls, stream, budget
    ):
        first = cls(budget=budget)
        second = cls(budget=budget)
        _, evicted_a = replay(first, stream)
        _, evicted_b = replay(second, stream)
        assert evicted_a == evicted_b
        assert first.eviction_log == second.eviction_log


class TestSquishPriorities:
    @settings(max_examples=40, deadline=None)
    @given(stream=fix_streams(max_size=30), budget=st.integers(2, 5))
    def test_priorities_monotonically_non_decreasing(self, stream, budget):
        """SQUISH-E re-scoring uses max(): a priority never shrinks."""
        compressor = StreamingSQUISH(budget=budget)
        last: dict[float, float] = {}
        for fix in stream:
            compressor.push(fix)
            for point, priority in compressor.buffer_snapshot():
                if priority is None:
                    continue
                if point.t in last:
                    assert priority >= last[point.t] - 1e-9
                last[point.t] = priority

    def test_suffix_max_error_bound(self):
        """SED of an evicted point wrt the final output is bounded by the
        largest eviction priority at-or-after its own eviction.

        (The per-point bound — its *own* priority — does not hold: errors
        compound across later evictions. The suffix max does.)
        """
        import numpy as np

        rng = np.random.default_rng(42)
        steps = rng.normal(0.0, 10.0, size=(300, 2))
        xy = np.cumsum(steps, axis=0)
        stream = [
            Fix(float(i), float(xy[i, 0]), float(xy[i, 1]))
            for i in range(300)
        ]
        compressor = StreamingSQUISH(budget=12)
        net, _ = replay(compressor, stream)
        log = compressor.eviction_log
        suffix_max = [0.0] * len(log)
        running = 0.0
        for i in range(len(log) - 1, -1, -1):
            running = max(running, log[i][1])
            suffix_max[i] = running
        for (fix, _), bound in zip(log, suffix_max):
            assert sed_against(net, fix) <= bound + 1e-6


class TestRenegotiate:
    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    def test_tightening_evicts_down_to_the_new_budget(self, cls):
        compressor = cls(budget=50)
        stream = [Fix(float(i), float(i % 7), float(i % 5)) for i in range(50)]
        for fix in stream:
            compressor.push(fix)
        events = compressor.renegotiate(10)
        assert all(isinstance(e, Eviction) for e in events)
        assert len(events) == 40
        assert compressor.buffer_len == 10
        assert compressor.budget == 10

    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    def test_relaxing_evicts_nothing(self, cls):
        compressor = cls(budget=5)
        for i in range(20):
            compressor.push(Fix(float(i), float(i), 0.0))
        assert compressor.renegotiate(50) == []
        assert compressor.budget == 50

    def test_renegotiate_validation(self):
        compressor = StreamingSQUISH(budget=5)
        with pytest.raises(ValueError):
            compressor.renegotiate(1)
        compressor.finish()
        with pytest.raises(StreamError):
            compressor.renegotiate(3)

    def test_renegotiated_eviction_order_matches_a_smaller_budget(self):
        """Tighten-later yields a valid budget-10 state (not necessarily
        the same as budget-10-from-the-start, but within budget and
        endpoint-preserving)."""
        stream = [
            Fix(float(i), math.sin(i / 3.0) * 100.0, float(i))
            for i in range(40)
        ]
        compressor = StreamingSQUISH(budget=40)
        for fix in stream:
            compressor.push(fix)
        compressor.renegotiate(10)
        snapshot = [f for f, _ in compressor.buffer_snapshot()]
        assert len(snapshot) == 10
        assert snapshot[0] == stream[0]
        assert snapshot[-1] == stream[-1]


class TestProtocolConformance:
    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    def test_push_after_finish_raises(self, cls):
        compressor = cls(budget=4)
        compressor.push(Fix(0.0, 0.0, 0.0))
        assert compressor.finish() == []
        assert compressor.closed
        with pytest.raises(StreamError):
            compressor.push(Fix(1.0, 0.0, 0.0))

    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    def test_time_must_advance(self, cls):
        compressor = cls(budget=4)
        compressor.push(Fix(5.0, 0.0, 0.0))
        with pytest.raises(StreamError):
            compressor.push(Fix(5.0, 1.0, 1.0))

    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    def test_finish_is_idempotent(self, cls):
        compressor = cls(budget=4)
        compressor.push(Fix(0.0, 0.0, 0.0))
        assert compressor.finish() == []
        assert compressor.finish() == []

    @pytest.mark.parametrize("cls", BUDGET_CLASSES)
    def test_state_size_tracks_the_buffer(self, cls):
        compressor = cls(budget=6)
        for i in range(10):
            compressor.push(Fix(float(i), float(i), 0.0))
        assert compressor.state_size == 3 * compressor.buffer_len
        assert compressor.sync_error_bound() is None

    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("squish:budget=5", StreamingSQUISH),
            ("sttrace:budget=5", StreamingSTTrace),
            ("dead-reckoning:epsilon=30", StreamingDeadReckoning),
        ],
    )
    def test_spec_strings_resolve(self, spec, cls):
        assert isinstance(make_online_compressor(spec), cls)


class TestDeadReckoning:
    @pytest.mark.parametrize("epsilon", [5.0, 15.0, 40.0])
    @settings(max_examples=30, deadline=None)
    @given(traj=trajectories(min_points=2, max_points=40))
    def test_batch_identical(self, epsilon, traj):
        batch = make_compressor("dead-reckoning", epsilon=epsilon)
        batch_times = traj.t[batch.compress(traj).indices]
        fixes = [
            Fix(float(traj.t[i]), float(traj.xy[i, 0]), float(traj.xy[i, 1]))
            for i in range(len(traj))
        ]
        compressor = StreamingDeadReckoning(epsilon=epsilon)
        emitted: list[Fix] = []
        for fix in fixes:
            emitted.extend(compressor.push(fix))
        emitted.extend(compressor.finish())
        assert [f.t for f in emitted] == list(batch_times)

    def test_no_evictions_ever(self):
        compressor = StreamingDeadReckoning(epsilon=10.0)
        for i in range(50):
            events = compressor.push(Fix(float(i), float(i * i % 37), 0.0))
            assert not any(isinstance(e, Eviction) for e in events)
