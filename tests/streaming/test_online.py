"""Tests for push-based online compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import NOPW, OPWSP, OPWTR
from repro.exceptions import StreamError
from repro.streaming import PointStream, StreamingOPW, make_online_compressor
from repro.trajectory import Trajectory
from repro.types import Fix

from tests.conftest import trajectories


def drain(compressor: StreamingOPW, traj: Trajectory) -> list[Fix]:
    out: list[Fix] = []
    for fix in PointStream.from_trajectory(traj):
        out.extend(compressor.push(fix))
    out.extend(compressor.finish())
    return out


class TestBatchEquivalence:
    @pytest.mark.parametrize(
        "batch,online_kwargs",
        [
            (NOPW(epsilon=35.0), dict(epsilon=35.0, criterion="perpendicular")),
            (OPWTR(epsilon=35.0), dict(epsilon=35.0, criterion="synchronized")),
            (
                OPWSP(max_dist_error=35.0, max_speed_error=4.0),
                dict(epsilon=35.0, criterion="synchronized", max_speed_error=4.0),
            ),
        ],
        ids=["nopw", "opw-tr", "opw-sp"],
    )
    def test_identical_selection(self, batch, online_kwargs, urban_trajectory):
        batch_times = urban_trajectory.t[batch.compress(urban_trajectory).indices]
        emitted = drain(StreamingOPW(**online_kwargs), urban_trajectory)
        np.testing.assert_array_equal([f.t for f in emitted], batch_times)

    @settings(max_examples=25, deadline=None)
    @given(trajectories(min_points=2, max_points=30))
    def test_property_equivalence_opw_tr(self, traj):
        batch_times = traj.t[OPWTR(epsilon=20.0).compress(traj).indices]
        emitted = drain(StreamingOPW(20.0, "synchronized"), traj)
        np.testing.assert_array_equal([f.t for f in emitted], batch_times)

    @settings(max_examples=25, deadline=None)
    @given(trajectories(min_points=2, max_points=30))
    def test_property_equivalence_opw_sp(self, traj):
        batch_times = traj.t[OPWSP(max_dist_error=20.0, max_speed_error=5.0).compress(traj).indices]
        streaming = StreamingOPW(20.0, "synchronized", max_speed_error=5.0)
        emitted = drain(streaming, traj)
        np.testing.assert_array_equal([f.t for f in emitted], batch_times)


class TestStreamingBehaviour:
    def test_first_fix_emitted_immediately(self):
        opw = StreamingOPW(10.0)
        out = opw.push(Fix(0.0, 0.0, 0.0))
        assert out == [Fix(0.0, 0.0, 0.0)]

    def test_finish_emits_last_fix(self):
        opw = StreamingOPW(10.0)
        opw.push(Fix(0.0, 0.0, 0.0))
        opw.push(Fix(1.0, 10.0, 0.0))
        tail = opw.finish()
        assert tail == [Fix(1.0, 10.0, 0.0)]

    def test_finish_idempotent(self):
        opw = StreamingOPW(10.0)
        opw.push(Fix(0.0, 0.0, 0.0))
        opw.finish()
        assert opw.finish() == []

    def test_finish_on_empty(self):
        assert StreamingOPW(10.0).finish() == []

    def test_push_after_finish_raises(self):
        opw = StreamingOPW(10.0)
        opw.finish()
        with pytest.raises(StreamError, match="finish"):
            opw.push(Fix(0.0, 0.0, 0.0))

    def test_backwards_time_raises(self):
        opw = StreamingOPW(10.0)
        opw.push(Fix(1.0, 0.0, 0.0))
        with pytest.raises(StreamError, match="backwards"):
            opw.push(Fix(0.5, 0.0, 0.0))

    def test_counters(self, urban_trajectory):
        opw = StreamingOPW(35.0)
        emitted = drain(opw, urban_trajectory)
        assert opw.n_pushed == len(urban_trajectory)
        assert opw.n_emitted == len(emitted)

    def test_max_window_bounds_buffer(self, urban_trajectory):
        opw = StreamingOPW(1e9, max_window=8)  # huge eps: never violates
        for fix in PointStream.from_trajectory(urban_trajectory):
            opw.push(fix)
            assert opw.window_size <= 8
        opw.finish()

    def test_max_window_output_still_covers_stream(self, urban_trajectory):
        opw = StreamingOPW(1e9, max_window=8)
        emitted = drain(opw, urban_trajectory)
        assert emitted[0].t == urban_trajectory.start_time
        assert emitted[-1].t == urban_trajectory.end_time

    def test_validation(self):
        with pytest.raises(ValueError, match="criterion"):
            StreamingOPW(10.0, criterion="psychic")
        with pytest.raises(ValueError, match="max_window"):
            StreamingOPW(10.0, max_window=2)

    def test_sync_error_bound_reporting(self):
        assert StreamingOPW(25.0, "synchronized").sync_error_bound() == 25.0
        assert StreamingOPW(25.0, "perpendicular").sync_error_bound() is None

    @settings(max_examples=20, deadline=None)
    @given(trajectories(min_points=4, max_points=30))
    def test_max_window_keeps_sed_bound(self, traj):
        """Forced BOPW-style cuts still only close fully-validated
        segments, so the synchronized bound survives the memory cap."""
        from repro.error import max_synchronized_error
        from repro.trajectory import Trajectory as _T

        eps = 30.0
        opw = StreamingOPW(eps, "synchronized", max_window=4)
        emitted = drain(opw, traj)
        approx = _T.from_points([(f.t, f.x, f.y) for f in emitted])
        assert max_synchronized_error(traj, approx) <= eps + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(trajectories(min_points=4, max_points=40))
    def test_max_window_never_exceeded(self, traj):
        opw = StreamingOPW(1e9, max_window=5)
        for fix in PointStream.from_trajectory(traj):
            opw.push(fix)
            assert opw.window_size <= 5
        opw.finish()


class TestFactory:
    def test_builds_each_kind(self):
        assert make_online_compressor("nopw", 10.0).criterion == "perpendicular"
        assert make_online_compressor("opw-tr", 10.0).criterion == "synchronized"
        sp = make_online_compressor("opw-sp", 10.0, max_speed_error=5.0)
        assert sp.max_speed_error == 5.0

    def test_rejects_wrong_speed_usage(self):
        with pytest.raises(ValueError):
            make_online_compressor("nopw", 10.0, max_speed_error=5.0)
        with pytest.raises(ValueError):
            make_online_compressor("opw-sp", 10.0)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_online_compressor("dp", 10.0)
