"""Registry semantics: get-or-create, no-op mode, the ambient default."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.registry import (
    LATENCY_BUCKETS_MS,
    Gauge,
    Registry,
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
    _NULL_TIMER,
)


@pytest.fixture
def ambient():
    """A clean ambient registry, restored to env-derived state after."""
    obs.set_registry(None)
    yield
    obs.set_registry(None)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        assert gauge.value == 0.0
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == pytest.approx(3.0)


class TestDisabledRegistry:
    def test_hands_out_shared_null_instruments(self):
        registry = Registry(enabled=False)
        assert registry.counter("a") is _NULL_COUNTER
        assert registry.gauge("b") is _NULL_GAUGE
        assert registry.timer("c") is _NULL_TIMER
        assert registry.histogram("d") is _NULL_HISTOGRAM

    def test_null_instruments_ignore_observations(self):
        registry = Registry(enabled=False)
        registry.counter("a").inc(100)
        registry.gauge("b").set(7)
        registry.timer("c").observe(1.0)
        with registry.timer("c").time():
            pass
        registry.histogram("d").observe(3.0)
        assert _NULL_COUNTER.value == 0
        assert _NULL_GAUGE.value == 0.0
        assert _NULL_TIMER.count == 0
        assert _NULL_HISTOGRAM.count == 0

    def test_exports_empty_categories(self):
        registry = Registry(enabled=False)
        registry.counter("a").inc()
        assert registry.to_dict() == {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {},
        }

    def test_flipping_enabled_starts_recording(self):
        registry = Registry(enabled=False)
        registry.counter("a").inc()
        registry.enabled = True
        registry.counter("a").inc()
        assert registry.to_dict()["counters"] == {"a": 1}


class TestEnabledRegistry:
    def test_gauges_join_the_export_schema(self):
        registry = Registry()
        registry.gauge("queue_depth").set(4)
        data = json.loads(json.dumps(registry.to_dict()))
        assert data["gauges"] == {"queue_depth": 4.0}
        # The historical three categories are still present.
        assert set(data) == {"counters", "gauges", "timers", "histograms"}

    def test_histogram_buckets_honoured_only_on_creation(self):
        registry = Registry()
        first = registry.histogram("lat", buckets=LATENCY_BUCKETS_MS)
        second = registry.histogram("lat", buckets=(1, 2))
        assert second is first
        assert first.bounds == LATENCY_BUCKETS_MS

    def test_threaded_get_or_create_converges_on_one_instrument(self):
        registry = Registry()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for i in range(200):
                counter = registry.counter(f"c{i % 10}")
                counter.inc()
                seen.append(counter)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All threads agreed on one instrument per name...
        assert len({id(c) for c in seen}) == 10
        # ...and (GIL-interleaved int +=) every inc landed.
        data = registry.to_dict()["counters"]
        assert sum(data.values()) == 8 * 200


class TestAmbientRegistry:
    def test_disabled_by_default(self, ambient, monkeypatch):
        monkeypatch.delenv(obs.OBS_ENV_VAR, raising=False)
        obs.set_registry(None)
        assert obs.get_registry().enabled is False

    def test_env_var_enables_at_first_use(self, ambient, monkeypatch):
        monkeypatch.setenv(obs.OBS_ENV_VAR, "1")
        obs.set_registry(None)
        assert obs.get_registry().enabled is True

    def test_enable_disable_flip_the_singleton(self, ambient):
        registry = obs.enable()
        assert registry is obs.get_registry()
        assert registry.enabled
        assert obs.disable() is registry
        assert not registry.enabled

    def test_set_registry_installs_an_explicit_sink(self, ambient):
        mine = Registry()
        obs.set_registry(mine)
        assert obs.get_registry() is mine


class TestKernelInstrumentation:
    def test_compress_samples_into_enabled_ambient_registry(self, ambient):
        from repro import TDTR, Trajectory

        traj = Trajectory.from_points(
            [(float(i), i * 10.0, (i % 7) * 3.0) for i in range(40)]
        )
        sink = Registry()
        obs.set_registry(sink)
        result = TDTR(epsilon=30.0).compress(traj)
        data = sink.to_dict()
        assert data["counters"]["compress_calls"] == 1
        assert data["counters"]["compress_points_in"] == 40
        assert data["counters"]["compress_points_kept"] == result.n_kept
        assert data["timers"]["compress.td-tr.s"]["count"] == 1
        assert data["histograms"]["compress_points_in"]["count"] == 1

    def test_compress_is_silent_when_ambient_disabled(self, ambient, monkeypatch):
        from repro import TDTR, Trajectory

        monkeypatch.delenv(obs.OBS_ENV_VAR, raising=False)
        obs.set_registry(None)
        traj = Trajectory.from_points(
            [(float(i), i * 10.0, 0.0) for i in range(10)]
        )
        TDTR(epsilon=30.0).compress(traj)
        assert obs.get_registry().to_dict()["counters"] == {}
