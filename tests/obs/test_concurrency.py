"""Registry under concurrent mutation: asyncio tasks and threads."""

from __future__ import annotations

import asyncio
import threading

from repro.obs import LATENCY_BUCKETS_MS, Registry


class TestAsyncioMutation:
    def test_interleaved_tasks_never_lose_observations(self):
        """The serve event loop's pattern: many tasks, one registry."""
        registry = Registry()

        async def session(tag: int, appends: int):
            depth = registry.gauge("queue_depth")
            latency = registry.histogram(
                "append_latency_ms", buckets=LATENCY_BUCKETS_MS
            )
            for i in range(appends):
                depth.inc()
                await asyncio.sleep(0)  # interleave with the other tasks
                registry.counter("fixes_in").inc()
                latency.observe(0.05 * (tag + 1))
                depth.dec()

        async def main():
            await asyncio.gather(*(session(tag, 50) for tag in range(8)))

        asyncio.run(main())
        data = registry.to_dict()
        assert data["counters"]["fixes_in"] == 8 * 50
        assert data["histograms"]["append_latency_ms"]["count"] == 8 * 50
        assert data["gauges"]["queue_depth"] == 0.0

    def test_snapshot_mid_flight_is_consistent_json(self):
        """to_dict taken while tasks mutate must always be serializable."""
        import json

        registry = Registry()
        snapshots: list[dict] = []

        async def mutator(n: int):
            for i in range(n):
                registry.counter(f"c{i % 5}").inc()
                registry.timer(f"t{i % 3}").observe(0.001)
                await asyncio.sleep(0)

        async def snapshotter(n: int):
            for _ in range(n):
                snapshots.append(json.loads(json.dumps(registry.to_dict())))
                await asyncio.sleep(0)

        async def main():
            await asyncio.gather(mutator(100), mutator(100), snapshotter(50))

        asyncio.run(main())
        assert len(snapshots) == 50
        # Counters only ever grow between snapshots.
        totals = [sum(s["counters"].values()) for s in snapshots]
        assert totals == sorted(totals)


class TestThreadedMutation:
    def test_races_on_creation_and_snapshotting(self):
        """Threads creating, observing and exporting concurrently."""
        registry = Registry()
        errors: list[BaseException] = []
        barrier = threading.Barrier(6)
        stop = threading.Event()

        def observer():
            try:
                barrier.wait()
                for i in range(500):
                    registry.counter(f"shared{i % 4}").inc()
                    registry.histogram(f"h{i % 4}").observe(i)
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        def exporter():
            try:
                barrier.wait()
                while not stop.is_set():
                    registry.to_dict()
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        workers = [threading.Thread(target=observer) for _ in range(5)]
        dumper = threading.Thread(target=exporter)
        for t in [*workers, dumper]:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        dumper.join()
        assert errors == []
        data = registry.to_dict()
        assert sum(data["counters"].values()) == 5 * 500
        assert sum(h["count"] for h in data["histograms"].values()) == 5 * 500
