"""Prometheus text exposition: from live registries and wire dicts."""

from __future__ import annotations

import json

from repro.obs import Registry, render_prometheus


def _sample_registry() -> Registry:
    registry = Registry()
    registry.counter("fixes_in").inc(7)
    registry.gauge("queue_depth").set(3)
    timer = registry.timer("flush_s")
    timer.observe(0.25)
    timer.observe(0.75)
    hist = registry.histogram("append_latency_ms", buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(100.0)  # overflow
    return registry


class TestRenderPrometheus:
    def test_counters_become_total_with_type_header(self):
        text = render_prometheus(_sample_registry())
        assert "# TYPE repro_fixes_in_total counter" in text
        assert "repro_fixes_in_total 7" in text

    def test_gauges_render_plain(self):
        text = render_prometheus(_sample_registry())
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 3" in text

    def test_timers_become_summaries_with_max_gauge(self):
        text = render_prometheus(_sample_registry())
        assert "repro_flush_s_seconds_count 2" in text
        assert "repro_flush_s_seconds_sum 1" in text
        assert "repro_flush_s_seconds_max 0.75" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = render_prometheus(_sample_registry())
        lines = text.splitlines()
        bucket_lines = [l for l in lines if "append_latency_ms_bucket" in l]
        assert bucket_lines == [
            'repro_append_latency_ms_bucket{le="1"} 1',
            'repro_append_latency_ms_bucket{le="10"} 2',
            'repro_append_latency_ms_bucket{le="+Inf"} 3',
        ]
        assert "repro_append_latency_ms_count 3" in text

    def test_dict_export_renders_identically_to_live_registry(self):
        registry = _sample_registry()
        live = render_prometheus(registry)
        # Round-trip through JSON, as the serve stats verb would.
        wire = json.loads(json.dumps(registry.to_dict()))
        assert render_prometheus(wire) == live

    def test_empty_registry_renders_empty_string(self):
        assert render_prometheus(Registry()) == ""
        assert render_prometheus(Registry(enabled=False)) == ""

    def test_prefix_is_configurable_and_removable(self):
        registry = Registry()
        registry.counter("x").inc()
        assert "myapp_x_total 1" in render_prometheus(registry, prefix="myapp")
        assert render_prometheus(registry, prefix="").startswith("# TYPE x_total")

    def test_names_are_sanitized(self):
        registry = Registry()
        registry.counter("compress.td-tr.calls").inc()
        text = render_prometheus(registry)
        assert "repro_compress_td_tr_calls_total 1" in text

    def test_output_ends_with_single_newline(self):
        text = render_prometheus(_sample_registry())
        assert text.endswith("\n") and not text.endswith("\n\n")
