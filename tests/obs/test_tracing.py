"""Tracing spans: nesting, exception capture, ring buffer, asyncio."""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.obs.tracing import _NULL_SPAN


@pytest.fixture
def traced():
    """Tracing on with a small fresh ring; everything off afterwards."""
    obs.configure_tracing(True, ring_size=64)
    yield
    obs.configure_tracing(False, ring_size=obs.DEFAULT_RING_SIZE)


class TestDisabledTracing:
    def test_span_returns_the_shared_null_object(self):
        obs.configure_tracing(False)
        assert obs.span("anything", points=3) is _NULL_SPAN
        assert not obs.tracing_enabled()

    def test_null_span_records_nothing(self):
        obs.configure_tracing(False)
        obs.clear_spans()
        with obs.span("invisible"):
            pass
        assert obs.recent_spans() == []


class TestEnabledTracing:
    def test_records_name_attrs_and_duration(self, traced):
        with obs.span("compress", algo="td-tr", points=1810):
            pass
        (record,) = obs.recent_spans("compress")
        assert record["attrs"] == {"algo": "td-tr", "points": 1810}
        assert record["duration_s"] >= 0.0
        assert record["error"] is None
        assert record["parent_id"] is None
        assert record["depth"] == 0

    def test_nesting_links_parent_and_child(self, traced):
        with obs.span("outer") as outer:
            assert obs.current_span() is outer
            with obs.span("inner") as inner:
                assert obs.current_span() is inner
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
            assert obs.current_span() is outer
        assert obs.current_span() is None
        inner_rec = obs.recent_spans("inner")[0]
        outer_rec = obs.recent_spans("outer")[0]
        assert inner_rec["parent_id"] == outer_rec["span_id"]

    def test_exception_is_recorded_and_reraised(self, traced):
        with pytest.raises(KeyError):
            with obs.span("failing"):
                raise KeyError("boom")
        (record,) = obs.recent_spans("failing")
        assert record["error"] == "KeyError"
        # The context variable was restored despite the exception.
        assert obs.current_span() is None

    def test_nested_exception_unwinds_to_the_right_parent(self, traced):
        with obs.span("outer") as outer:
            with pytest.raises(ValueError):
                with obs.span("inner"):
                    raise ValueError("nested")
            assert obs.current_span() is outer

    def test_ring_buffer_keeps_newest_when_full(self, traced):
        obs.configure_tracing(True, ring_size=5)
        for i in range(12):
            with obs.span("tick", i=i):
                pass
        records = obs.recent_spans("tick")
        assert len(records) == 5
        assert [r["attrs"]["i"] for r in records] == [7, 8, 9, 10, 11]

    def test_clear_spans_empties_the_ring(self, traced):
        with obs.span("one"):
            pass
        obs.clear_spans()
        assert obs.recent_spans() == []

    def test_ring_size_must_be_positive(self, traced):
        with pytest.raises(ValueError, match="ring_size"):
            obs.configure_tracing(True, ring_size=0)

    def test_asyncio_tasks_get_independent_nesting(self, traced):
        """Two interleaved tasks must not adopt each other's spans."""

        async def worker(tag: str):
            with obs.span("task", tag=tag) as mine:
                await asyncio.sleep(0)  # force interleaving
                assert obs.current_span() is mine
                with obs.span("child", tag=tag) as child:
                    await asyncio.sleep(0)
                    assert child.parent_id == mine.span_id
            return mine.span_id

        async def main():
            return await asyncio.gather(worker("a"), worker("b"))

        ids = asyncio.run(main())
        children = obs.recent_spans("child")
        assert {c["parent_id"] for c in children} == set(ids)
