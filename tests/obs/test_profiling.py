"""Profiling hooks: env gating, pstats-loadable atomic snapshots."""

from __future__ import annotations

import marshal
import pstats

import pytest

from repro import obs
from repro.obs import profiling


class TestGating:
    def test_disabled_without_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(obs.PROFILE_ENV_VAR, raising=False)
        monkeypatch.setenv(obs.PROFILE_DIR_ENV_VAR, str(tmp_path))
        assert not obs.profiling_enabled()
        with obs.profiled("nothing"):
            sum(range(100))
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize("value", ["0", "false", "off", "", "no"])
    def test_falsy_values_stay_disabled(self, monkeypatch, value):
        monkeypatch.setenv(obs.PROFILE_ENV_VAR, value)
        assert not obs.profiling_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(obs.PROFILE_ENV_VAR, value)
        assert obs.profiling_enabled()

    def test_default_snapshot_directory(self, monkeypatch):
        monkeypatch.delenv(obs.PROFILE_DIR_ENV_VAR, raising=False)
        assert str(obs.profile_dir()) == "profiles"


class TestSnapshots:
    def test_writes_a_pstats_loadable_snapshot(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs.PROFILE_ENV_VAR, "1")
        monkeypatch.setenv(obs.PROFILE_DIR_ENV_VAR, str(tmp_path))
        with obs.profiled("compress-td-tr"):
            sorted(range(1000), key=lambda x: -x)
        (snapshot,) = tmp_path.iterdir()
        assert snapshot.name.startswith("compress-td-tr-")
        assert snapshot.suffix == ".prof"
        stats = pstats.Stats(str(snapshot))
        assert stats.total_calls > 0  # type: ignore[attr-defined]
        # The raw payload is a plain marshal dump of profiler stats.
        assert isinstance(marshal.loads(snapshot.read_bytes()), dict)

    def test_snapshot_written_even_when_block_raises(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs.PROFILE_ENV_VAR, "1")
        monkeypatch.setenv(obs.PROFILE_DIR_ENV_VAR, str(tmp_path))
        with pytest.raises(RuntimeError):
            with obs.profiled("failing"):
                raise RuntimeError("inside")
        assert len(list(tmp_path.iterdir())) == 1

    def test_names_are_sanitized_for_the_filesystem(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs.PROFILE_ENV_VAR, "1")
        monkeypatch.setenv(obs.PROFILE_DIR_ENV_VAR, str(tmp_path))
        with obs.profiled("weird/name: with spaces"):
            pass
        (snapshot,) = tmp_path.iterdir()
        assert "/" not in snapshot.name and ":" not in snapshot.name

    def test_sequence_numbers_keep_snapshots_distinct(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs.PROFILE_ENV_VAR, "1")
        monkeypatch.setenv(obs.PROFILE_DIR_ENV_VAR, str(tmp_path))
        for _ in range(3):
            with obs.profiled("same-name"):
                pass
        assert len(list(tmp_path.iterdir())) == 3

    def test_profiled_checks_env_per_call(self, monkeypatch, tmp_path):
        """The gate is live: flipping the env mid-process takes effect."""
        monkeypatch.setenv(obs.PROFILE_DIR_ENV_VAR, str(tmp_path))
        monkeypatch.setenv(obs.PROFILE_ENV_VAR, "0")
        with obs.profiled("off"):
            pass
        monkeypatch.setenv(obs.PROFILE_ENV_VAR, "1")
        with obs.profiled("on"):
            pass
        names = [p.name for p in tmp_path.iterdir()]
        assert len(names) == 1 and names[0].startswith("on-")

    def test_snapshot_path_counter_is_monotonic(self):
        first = profiling._next_seq()
        second = profiling._next_seq()
        assert second == first + 1
