"""The perf gate's comparison logic and exit-code contract."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
assert _spec is not None and _spec.loader is not None
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def kernel_report(td_s: float = 0.010, opw_s: float = 0.050, n_points: int = 4000):
    return {
        "benchmark": "kernels",
        "n_points": n_points,
        "algorithms": {
            "td-tr:epsilon=30": {
                "python": {"engine": "python", "best_s": td_s * 5, "n_kept": 50},
                "numpy": {"engine": "numpy", "best_s": td_s, "n_kept": 50},
                "speedup": 5.0,
            },
            "opw-tr:epsilon=30": {
                "python": {"engine": "python", "best_s": opw_s * 2, "n_kept": 61},
                "numpy": {"engine": "numpy", "best_s": opw_s, "n_kept": 61},
                "speedup": 2.0,
            },
        },
    }


def serve_report(p50: float = 1.0, throughput: float = 10_000.0, sessions: int = 12):
    return {
        "config": {
            "spec": "opw-tr:epsilon=25",
            "sessions": sessions,
            "fixes_per_session": 80,
            "append_batch": 1,
            "induced_max_sessions": sessions,
            "attempted_rejects": 3,
            "seed": 7,
        },
        "results": {
            "p50_append_ms": p50,
            "p99_append_ms": p50 * 4,
            "fixes_per_sec": throughput,
            "rejected_sessions": 3,
        },
        "server_stats": {},
    }


class TestCompare:
    def test_identical_reports_pass(self):
        code, _ = check_regression.compare(kernel_report(), kernel_report())
        assert code == 0

    def test_within_tolerance_passes(self):
        code, messages = check_regression.compare(
            kernel_report(td_s=0.011), kernel_report(td_s=0.010), tolerance=0.25
        )
        assert code == 0
        assert any("ok" in m for m in messages)

    def test_kernel_slowdown_beyond_tolerance_fails(self):
        code, messages = check_regression.compare(
            kernel_report(td_s=0.020), kernel_report(td_s=0.010), tolerance=0.25
        )
        assert code == 1
        assert any("REGRESSION" in m for m in messages)

    def test_improvement_always_passes(self):
        code, _ = check_regression.compare(
            kernel_report(td_s=0.002), kernel_report(td_s=0.010)
        )
        assert code == 0

    def test_serve_latency_regression_fails(self):
        code, _ = check_regression.compare(
            serve_report(p50=2.0), serve_report(p50=1.0), tolerance=0.25
        )
        assert code == 1

    def test_serve_throughput_drop_fails(self):
        code, _ = check_regression.compare(
            serve_report(throughput=5_000.0), serve_report(throughput=10_000.0)
        )
        assert code == 1

    def test_serve_seed_difference_is_not_a_config_mismatch(self):
        current = serve_report()
        current["config"]["seed"] = 99
        code, _ = check_regression.compare(current, serve_report())
        assert code == 0

    def test_config_mismatch_is_exit_2(self):
        code, messages = check_regression.compare(
            kernel_report(n_points=800), kernel_report(n_points=4000)
        )
        assert code == 2
        assert any("mismatch" in m for m in messages)

    def test_kind_mismatch_is_exit_2(self):
        code, _ = check_regression.compare(kernel_report(), serve_report())
        assert code == 2

    def test_failed_bench_report_is_a_regression(self):
        failed = serve_report()
        failed["failed"] = True
        failed["failures"] = ["bench-0001: diverged"]
        code, messages = check_regression.compare(failed, serve_report())
        assert code == 1
        assert any("failed" in m for m in messages)

    def test_tolerance_widens_the_gate(self):
        slow = kernel_report(td_s=0.014)
        base = kernel_report(td_s=0.010)
        assert check_regression.compare(slow, base, tolerance=0.25)[0] == 1
        assert check_regression.compare(slow, base, tolerance=0.50)[0] == 0


class TestMain:
    def _write(self, tmp_path: Path, name: str, report: dict) -> Path:
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return path

    def test_exit_zero_on_matching_reports(self, tmp_path, capsys):
        current = self._write(tmp_path, "current.json", kernel_report())
        baseline = self._write(tmp_path, "baseline.json", kernel_report())
        assert check_regression.main([str(current), str(baseline)]) == 0
        assert "perf gate: OK" in capsys.readouterr().out

    def test_exit_one_on_degraded_report(self, tmp_path, capsys):
        current = self._write(tmp_path, "current.json", kernel_report(td_s=0.05))
        baseline = self._write(tmp_path, "baseline.json", kernel_report())
        assert check_regression.main([str(current), str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_exit_two_on_config_mismatch(self, tmp_path):
        current = self._write(
            tmp_path, "current.json", kernel_report(n_points=123)
        )
        baseline = self._write(tmp_path, "baseline.json", kernel_report())
        assert check_regression.main([str(current), str(baseline)]) == 2

    def test_missing_report_exits_two(self, tmp_path):
        baseline = self._write(tmp_path, "baseline.json", kernel_report())
        with pytest.raises(SystemExit, match="exit 2"):
            check_regression.main([str(tmp_path / "nope.json"), str(baseline)])

    def test_update_baseline_writes_and_passes(self, tmp_path):
        current = self._write(tmp_path, "current.json", kernel_report(td_s=0.05))
        baseline = tmp_path / "baselines" / "baseline.json"
        code = check_regression.main(
            [str(current), str(baseline), "--update-baseline"]
        )
        assert code == 0
        assert json.loads(baseline.read_text()) == kernel_report(td_s=0.05)
        # The blessed baseline now gates future runs.
        assert check_regression.main([str(current), str(baseline)]) == 0

    def test_update_baseline_refuses_failed_reports(self, tmp_path):
        failed = serve_report()
        failed["failed"] = True
        current = self._write(tmp_path, "current.json", failed)
        baseline = tmp_path / "baseline.json"
        code = check_regression.main(
            [str(current), str(baseline), "--update-baseline"]
        )
        assert code == 2
        assert not baseline.exists()

    def test_committed_baselines_are_usable(self):
        """The baselines shipped in-repo parse and carry gated metrics."""
        base_dir = _SCRIPT.parent / "baselines"
        kernels = json.loads((base_dir / "BENCH_kernels_quick.json").read_text())
        serve = json.loads((base_dir / "BENCH_serve_ci.json").read_text())
        k_metrics, _ = check_regression._kernel_view(kernels)
        s_metrics, _ = check_regression._serve_view(serve)
        assert k_metrics and all(v > 0 for v, _ in k_metrics.values())
        assert {"p50_append_ms", "fixes_per_sec"} <= set(s_metrics)
