"""Tests for GPS quality auditing and cleaning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trajectory import Trajectory
from repro.trajectory.quality import (
    clean,
    drop_speed_outliers,
    quality_issues,
)


def with_teleport(index: int = 3) -> Trajectory:
    """A clean 10-fix drive with one fix teleported 5 km away."""
    t = np.arange(0.0, 100.0, 10.0)
    xy = np.column_stack([t * 12.0, np.zeros_like(t)])
    xy[index] = [5_000.0, 5_000.0]
    return Trajectory(t, xy, "teleport")


class TestQualityIssues:
    def test_clean_data_has_no_issues(self, urban_trajectory):
        assert quality_issues(urban_trajectory, max_speed_ms=70.0) == []

    def test_detects_speed_spike(self):
        issues = quality_issues(with_teleport(), max_speed_ms=70.0)
        kinds = [issue.kind for issue in issues]
        assert kinds.count("speed-spike") == 2  # in and out of the teleport

    def test_detects_gap(self):
        traj = Trajectory.from_points([(0, 0, 0), (10, 10, 0), (500, 20, 0)])
        issues = quality_issues(traj, max_gap_s=120.0)
        assert [i.kind for i in issues] == ["gap"]
        assert issues[0].index == 1

    def test_detects_frozen_run(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (10, 5, 5), (20, 5, 5), (30, 5, 5), (40, 9, 9)]
        )
        issues = quality_issues(traj, frozen_min_count=3)
        frozen = [i for i in issues if i.kind == "frozen"]
        assert len(frozen) == 1
        assert frozen[0].index == 1
        assert "3 identical" in frozen[0].detail

    def test_frozen_run_at_end_detected(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (10, 5, 5), (20, 5, 5), (30, 5, 5)]
        )
        assert any(i.kind == "frozen" for i in quality_issues(traj))

    def test_short_frozen_run_ignored(self):
        traj = Trajectory.from_points([(0, 0, 0), (10, 5, 5), (20, 5, 5), (30, 9, 9)])
        assert quality_issues(traj, frozen_min_count=3) == []

    def test_issues_sorted_by_index(self):
        traj = with_teleport(5)
        issues = quality_issues(traj, max_speed_ms=70.0, max_gap_s=1e9)
        indices = [i.index for i in issues]
        assert indices == sorted(indices)

    def test_single_point_no_issues(self):
        assert quality_issues(Trajectory.from_points([(0, 0, 0)])) == []

    def test_validation(self, zigzag):
        with pytest.raises(ValueError):
            quality_issues(zigzag, max_speed_ms=0.0)
        with pytest.raises(ValueError):
            quality_issues(zigzag, frozen_min_count=1)


class TestDropSpeedOutliers:
    def test_removes_teleported_fix(self):
        traj = with_teleport(3)
        cleaned = drop_speed_outliers(traj, max_speed_ms=70.0)
        assert len(cleaned) == len(traj) - 1
        assert 30.0 not in cleaned.t  # the teleported fix is gone
        assert quality_issues(cleaned, max_speed_ms=70.0) == []

    def test_keeps_clean_data_object_identical(self, urban_trajectory):
        assert drop_speed_outliers(urban_trajectory) is urban_trajectory

    def test_never_drops_endpoints(self):
        traj = with_teleport(1)
        cleaned = drop_speed_outliers(traj, max_speed_ms=70.0)
        assert cleaned.t[0] == traj.t[0]
        assert cleaned.t[-1] == traj.t[-1]

    def test_teleported_final_interior_fix(self):
        traj = with_teleport(8)  # next-to-last fix
        cleaned = drop_speed_outliers(traj, max_speed_ms=70.0)
        assert 80.0 not in cleaned.t
        assert cleaned.t[-1] == traj.t[-1]

    def test_two_separate_outliers(self):
        t = np.arange(0.0, 150.0, 10.0)
        xy = np.column_stack([t * 12.0, np.zeros_like(t)])
        xy[3] = [9_000.0, 0.0]
        xy[10] = [-7_000.0, 0.0]
        traj = Trajectory(t, xy)
        cleaned = drop_speed_outliers(traj, max_speed_ms=70.0)
        assert quality_issues(cleaned, max_speed_ms=70.0) == []
        assert len(cleaned) == len(traj) - 2

    def test_validation(self, zigzag):
        with pytest.raises(ValueError):
            drop_speed_outliers(zigzag, max_speed_ms=-1.0)


class TestCleanPipeline:
    def test_outliers_and_gaps_handled(self):
        rows = [(float(i * 10), float(i * 120), 0.0) for i in range(6)]
        rows += [(1_000.0 + i * 10, 720.0 + i * 120, 0.0) for i in range(5)]
        traj = Trajectory.from_points(rows)
        # Teleport one fix in the first half.
        xy = traj.xy.copy()
        xy[2] = [50_000.0, 0.0]
        dirty = Trajectory(traj.t, xy)
        pieces = clean(dirty, max_speed_ms=70.0, max_gap_s=120.0)
        assert len(pieces) == 2
        for piece in pieces:
            assert quality_issues(piece, max_speed_ms=70.0, max_gap_s=120.0) == []

    def test_clean_input_passes_through(self, urban_trajectory):
        pieces = clean(urban_trajectory)
        assert len(pieces) == 1
        assert pieces[0] == urban_trajectory
