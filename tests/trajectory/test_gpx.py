"""Tests for the GPX reader/writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TrajectoryError
from repro.geometry import LocalProjection
from repro.trajectory import read_gpx, write_gpx
from repro.trajectory.gpx import parse_gpx_time

GPX_DOC = """<?xml version="1.0"?>
<gpx version="1.1" creator="unit-test" xmlns="http://www.topografix.com/GPX/1/1">
  <trk>
    <name>morning-commute</name>
    <trkseg>
      <trkpt lat="52.2000" lon="6.9000"><time>2004-03-14T08:00:00Z</time></trkpt>
      <trkpt lat="52.2010" lon="6.9030"><time>2004-03-14T08:00:10Z</time></trkpt>
      <trkpt lat="52.2030" lon="6.9050"><time>2004-03-14T08:00:20Z</time></trkpt>
    </trkseg>
  </trk>
</gpx>
"""


class TestParseGpxTime:
    def test_utc_z(self):
        assert parse_gpx_time("2004-03-14T08:00:00Z") == pytest.approx(1079251200.0)

    def test_fractional_seconds(self):
        base = parse_gpx_time("2004-03-14T08:00:00Z")
        assert parse_gpx_time("2004-03-14T08:00:00.500Z") == pytest.approx(base + 0.5)

    def test_explicit_offset(self):
        utc = parse_gpx_time("2004-03-14T08:00:00Z")
        plus_two = parse_gpx_time("2004-03-14T10:00:00+02:00")
        assert plus_two == pytest.approx(utc)

    def test_rejects_garbage(self):
        with pytest.raises(TrajectoryError, match="unparseable"):
            parse_gpx_time("yesterday at noon")


class TestReadGpx:
    def test_reads_points_and_name(self, tmp_path):
        path = tmp_path / "trip.gpx"
        path.write_text(GPX_DOC)
        traj = read_gpx(path)
        assert len(traj) == 3
        assert traj.object_id == "morning-commute"
        np.testing.assert_allclose(np.diff(traj.t), [10.0, 10.0])

    def test_planar_distances_are_plausible(self, tmp_path):
        path = tmp_path / "trip.gpx"
        path.write_text(GPX_DOC)
        traj = read_gpx(path)
        # ~0.003 deg lon at 52N is about 200 m.
        step = float(np.hypot(*(traj.xy[1] - traj.xy[0])))
        assert 150 < step < 300

    def test_explicit_projection_controls_frame(self, tmp_path):
        path = tmp_path / "trip.gpx"
        path.write_text(GPX_DOC)
        proj = LocalProjection(6.9, 52.2)
        traj = read_gpx(path, projection=proj)
        np.testing.assert_allclose(traj.xy[0], [0.0, 0.0], atol=1e-6)

    def test_missing_time_raises(self, tmp_path):
        path = tmp_path / "bad.gpx"
        path.write_text(
            '<gpx><trk><trkseg><trkpt lat="52" lon="6"/></trkseg></trk></gpx>'
        )
        with pytest.raises(TrajectoryError, match="time"):
            read_gpx(path)

    def test_no_track_points_raises(self, tmp_path):
        path = tmp_path / "empty.gpx"
        path.write_text("<gpx><trk><trkseg/></trk></gpx>")
        with pytest.raises(TrajectoryError, match="no track points"):
            read_gpx(path)

    def test_malformed_xml_raises(self, tmp_path):
        path = tmp_path / "broken.gpx"
        path.write_text("<gpx><trk>")
        with pytest.raises(TrajectoryError, match="XML"):
            read_gpx(path)


class TestWriteGpx:
    def test_roundtrip_through_projection(self, tmp_path, zigzag):
        proj = LocalProjection(6.9, 52.2)
        path = tmp_path / "out.gpx"
        shifted = zigzag.shifted(dt=1_079_251_200.0)  # epoch-plausible times
        write_gpx(shifted, path, proj)
        back = read_gpx(path, projection=proj)
        assert back.object_id == "zigzag"
        np.testing.assert_allclose(back.t, shifted.t, atol=1e-3)
        np.testing.assert_allclose(back.xy, shifted.xy, atol=1e-2)
