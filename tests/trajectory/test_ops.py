"""Tests for repro.trajectory.ops."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import TrajectoryError
from repro.trajectory import (
    Trajectory,
    concat,
    drop_duplicate_times,
    every_ith_indices,
    merge_grids,
    split_on_gaps,
)


class TestConcat:
    def test_orders_preserved(self):
        a = Trajectory.from_points([(0, 0, 0), (1, 1, 1)])
        b = Trajectory.from_points([(2, 2, 2), (3, 3, 3)])
        joined = concat([a, b])
        np.testing.assert_allclose(joined.t, [0, 1, 2, 3])

    def test_rejects_overlap(self):
        a = Trajectory.from_points([(0, 0, 0), (2, 1, 1)])
        b = Trajectory.from_points([(2, 2, 2), (3, 3, 3)])
        with pytest.raises(TrajectoryError, match="overlap"):
            concat([a, b])

    def test_rejects_empty_list(self):
        with pytest.raises(TrajectoryError, match="no trajectories"):
            concat([])

    def test_object_id_defaults_to_first(self):
        a = Trajectory.from_points([(0, 0, 0)], object_id="first")
        b = Trajectory.from_points([(1, 1, 1)], object_id="second")
        assert concat([a, b]).object_id == "first"
        assert concat([a, b], object_id="explicit").object_id == "explicit"


class TestSplitOnGaps:
    def test_no_gaps_returns_whole(self, zigzag):
        pieces = split_on_gaps(zigzag, max_gap_s=15.0)
        assert len(pieces) == 1
        assert pieces[0] == zigzag

    def test_splits_at_long_gap(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (10, 1, 1), (200, 2, 2), (210, 3, 3)]
        )
        pieces = split_on_gaps(traj, max_gap_s=60.0)
        assert [len(p) for p in pieces] == [2, 2]
        np.testing.assert_allclose(pieces[1].t, [200, 210])

    def test_multiple_gaps(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (100, 1, 1), (200, 2, 2)]
        )
        pieces = split_on_gaps(traj, max_gap_s=50.0)
        assert [len(p) for p in pieces] == [1, 1, 1]

    def test_single_point(self):
        traj = Trajectory.from_points([(0, 0, 0)])
        assert split_on_gaps(traj, 10.0) == [traj]

    def test_rejects_nonpositive_gap(self, zigzag):
        with pytest.raises(ValueError, match="positive"):
            split_on_gaps(zigzag, 0.0)

    def test_roundtrip_with_concat(self, zigzag):
        pieces = split_on_gaps(zigzag, max_gap_s=5.0)  # every gap is 10 s
        assert len(pieces) == len(zigzag)
        assert concat(pieces) == zigzag


class TestDropDuplicateTimes:
    def test_keeps_first_of_ties(self):
        t = np.array([0.0, 1.0, 1.0, 2.0])
        xy = np.array([[0, 0], [1, 1], [9, 9], [2, 2]], dtype=float)
        traj = drop_duplicate_times(t, xy)
        np.testing.assert_allclose(traj.t, [0, 1, 2])
        np.testing.assert_allclose(traj.xy[1], [1, 1])

    def test_sorts_out_of_order_records(self):
        t = np.array([5.0, 1.0, 3.0])
        xy = np.array([[5, 5], [1, 1], [3, 3]], dtype=float)
        traj = drop_duplicate_times(t, xy)
        np.testing.assert_allclose(traj.t, [1, 3, 5])
        np.testing.assert_allclose(traj.xy[:, 0], [1, 3, 5])

    def test_shape_validation(self):
        with pytest.raises(TrajectoryError):
            drop_duplicate_times(np.array([0.0]), np.zeros((2, 2)))


class TestEveryIthIndices:
    def test_basic(self):
        np.testing.assert_array_equal(every_ith_indices(10, 3), [0, 3, 6, 9])

    def test_always_includes_last(self):
        np.testing.assert_array_equal(every_ith_indices(11, 3), [0, 3, 6, 9, 10])

    def test_step_one_keeps_all(self):
        np.testing.assert_array_equal(every_ith_indices(4, 1), [0, 1, 2, 3])

    def test_single_point(self):
        np.testing.assert_array_equal(every_ith_indices(1, 5), [0])

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            every_ith_indices(10, 0)
        with pytest.raises(ValueError):
            every_ith_indices(0, 1)

    @given(st.integers(1, 500), st.integers(1, 50))
    def test_covers_endpoints_strictly_increasing(self, n, step):
        idx = every_ith_indices(n, step)
        assert idx[0] == 0
        assert idx[-1] == n - 1
        assert np.all(np.diff(idx) > 0)


class TestMergeGrids:
    def test_union_sorted(self):
        merged = merge_grids([0.0, 2.0, 4.0], [1.0, 2.0, 5.0])
        np.testing.assert_allclose(merged, [0, 1, 2, 4, 5])

    def test_subset_merge_is_identity(self):
        a = np.array([0.0, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(merge_grids(a, a[[0, 2]]), a)
