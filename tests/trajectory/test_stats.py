"""Tests for repro.trajectory.stats (Table 2 quantities)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trajectory import (
    Trajectory,
    dataset_stats,
    headings,
    speeds,
    stop_episodes,
    trajectory_stats,
    turning_angles,
)


@pytest.fixture
def l_shape() -> Trajectory:
    """East 300 m in 30 s, then north 400 m in 40 s."""
    return Trajectory.from_points(
        [(0, 0, 0), (10, 100, 0), (20, 200, 0), (30, 300, 0),
         (40, 300, 100), (50, 300, 200), (60, 300, 300), (70, 300, 400)]
    )


class TestTrajectoryStats:
    def test_l_shape_statistics(self, l_shape):
        stats = trajectory_stats(l_shape)
        assert stats.n_points == 8
        assert stats.duration_s == 70.0
        assert stats.length_m == pytest.approx(700.0)
        assert stats.displacement_m == pytest.approx(500.0)
        assert stats.mean_speed_ms == pytest.approx(10.0)
        assert stats.mean_speed_kmh == pytest.approx(36.0)

    def test_duration_formatting(self, l_shape):
        assert trajectory_stats(l_shape).duration_hms == "00:01:10"

    def test_single_point_stats_are_zero(self):
        stats = trajectory_stats(Trajectory.from_points([(0, 1, 1)]))
        assert stats.duration_s == 0.0
        assert stats.length_m == 0.0
        assert stats.mean_speed_ms == 0.0

    def test_displacement_zero_for_round_trip(self):
        traj = Trajectory.from_points([(0, 0, 0), (10, 100, 0), (20, 0, 0)])
        stats = trajectory_stats(traj)
        assert stats.displacement_m == 0.0
        assert stats.length_m == pytest.approx(200.0)


class TestSeries:
    def test_speeds(self, l_shape):
        np.testing.assert_allclose(speeds(l_shape), 10.0)

    def test_speeds_single_point(self):
        assert speeds(Trajectory.from_points([(0, 0, 0)])).size == 0

    def test_headings(self, l_shape):
        h = headings(l_shape)
        np.testing.assert_allclose(h[:3], 0.0, atol=1e-12)  # east
        np.testing.assert_allclose(h[3:], np.pi / 2, atol=1e-12)  # north

    def test_turning_angles(self, l_shape):
        angles = turning_angles(l_shape)
        # Only the corner point turns (90 degrees); the rest are straight.
        assert angles.max() == pytest.approx(np.pi / 2)
        assert np.count_nonzero(angles > 0.01) == 1

    def test_turning_angle_wraps_correctly(self):
        # Heading from +170deg to -170deg is a 20-degree turn, not 340.
        traj = Trajectory.from_points(
            [(0, 0, 0),
             (1, -np.cos(np.radians(10)), np.sin(np.radians(10))),
             (2, -2 * np.cos(np.radians(10)), 0.0)]
        )
        assert turning_angles(traj)[0] == pytest.approx(np.radians(20), abs=1e-9)


class TestStopEpisodes:
    def test_detects_middle_stop(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (10, 100, 0), (20, 100.1, 0), (30, 100.2, 0), (40, 200, 0)]
        )
        assert stop_episodes(traj, speed_threshold_ms=0.5) == [(1, 2)]

    def test_no_stops_on_constant_speed(self, l_shape):
        assert stop_episodes(l_shape) == []

    def test_trailing_stop(self):
        traj = Trajectory.from_points([(0, 0, 0), (10, 100, 0), (20, 100, 0)])
        assert stop_episodes(traj) == [(1, 1)]

    def test_min_duration_filter(self):
        traj = Trajectory.from_points(
            [(0, 0, 0), (10, 100, 0), (20, 100, 0), (30, 200, 0)]
        )
        assert stop_episodes(traj, min_duration_s=5.0) == [(1, 1)]
        assert stop_episodes(traj, min_duration_s=15.0) == []


class TestDatasetStats:
    def test_aggregates_two_trajectories(self, l_shape):
        double_speed = Trajectory(l_shape.t / 2.0, l_shape.xy)
        agg = dataset_stats([l_shape, double_speed])
        assert agg.n_trajectories == 2
        assert agg.speed_mean_kmh == pytest.approx((36.0 + 72.0) / 2)
        assert agg.length_mean_km == pytest.approx(0.7)
        assert agg.length_std_km == pytest.approx(0.0)

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError, match="empty"):
            dataset_stats([])
