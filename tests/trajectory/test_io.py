"""Tests for CSV/JSON trajectory I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TrajectoryError
from repro.trajectory import (
    read_csv,
    read_dataset_json,
    read_json,
    write_csv,
    write_dataset_json,
    write_json,
)


class TestCsv:
    def test_roundtrip_exact(self, zigzag, tmp_path):
        path = tmp_path / "traj.csv"
        write_csv(zigzag, path)
        back = read_csv(path, object_id="zigzag")
        assert back == zigzag
        assert back.object_id == "zigzag"

    def test_reads_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("0,1,2\n5,3,4\n")
        traj = read_csv(path)
        np.testing.assert_allclose(traj.t, [0, 5])

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("# a comment\nt,x,y\n0,1,2\n\n5,3,4\n")
        assert len(read_csv(path)) == 2

    def test_rejects_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,1\n")
        with pytest.raises(TrajectoryError, match="3 columns"):
            read_csv(path)

    def test_rejects_non_numeric(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,one,2\n")
        with pytest.raises(TrajectoryError, match="non-numeric"):
            read_csv(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("t,x,y\n")
        with pytest.raises(TrajectoryError, match="no data rows"):
            read_csv(path)


class TestJson:
    def test_roundtrip_with_object_id(self, zigzag, tmp_path):
        path = tmp_path / "traj.json"
        write_json(zigzag, path)
        back = read_json(path)
        assert back == zigzag
        assert back.object_id == "zigzag"

    def test_rejects_missing_points(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"object_id": "x"}')
        with pytest.raises(TrajectoryError, match="points"):
            read_json(path)

    def test_rejects_bad_object_id_type(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"object_id": 5, "points": [[0, 1, 2]]}')
        with pytest.raises(TrajectoryError, match="object_id"):
            read_json(path)

    def test_rejects_malformed_rows(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"points": [[0, 1]]}')
        with pytest.raises(TrajectoryError):
            read_json(path)


class TestDatasetJson:
    def test_roundtrip(self, zigzag, straight_line, tmp_path):
        path = tmp_path / "dataset.json"
        write_dataset_json([zigzag, straight_line], path)
        back = read_dataset_json(path)
        assert back == [zigzag, straight_line]
        assert back[0].object_id == "zigzag"

    def test_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"points": [[0, 1, 2]]}')
        with pytest.raises(TrajectoryError, match="JSON list"):
            read_dataset_json(path)

    def test_error_names_offending_entry(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"points": [[0, 1, 2]]}, {"nope": 1}]')
        with pytest.raises(TrajectoryError, match=r"\[1\]"):
            read_dataset_json(path)
