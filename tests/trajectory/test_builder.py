"""Tests for TrajectoryBuilder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyTrajectoryError, TimestampOrderError
from repro.trajectory import TrajectoryBuilder
from repro.types import Fix


class TestTrajectoryBuilder:
    def test_build_matches_appends(self):
        builder = TrajectoryBuilder("bus-7")
        builder.append(0.0, 1.0, 2.0)
        builder.append(10.0, 3.0, 4.0)
        traj = builder.build()
        assert traj.object_id == "bus-7"
        np.testing.assert_allclose(traj.t, [0, 10])
        np.testing.assert_allclose(traj.xy, [[1, 2], [3, 4]])

    def test_append_fix_and_extend(self):
        builder = TrajectoryBuilder()
        builder.append_fix(Fix(0.0, 0.0, 0.0))
        builder.extend([Fix(1.0, 1.0, 1.0), Fix(2.0, 2.0, 2.0)])
        assert len(builder) == 3

    def test_rejects_non_advancing_time(self):
        builder = TrajectoryBuilder()
        builder.append(5.0, 0.0, 0.0)
        with pytest.raises(TimestampOrderError, match="advance"):
            builder.append(5.0, 1.0, 1.0)

    def test_rejects_non_finite(self):
        builder = TrajectoryBuilder()
        with pytest.raises(ValueError, match="non-finite"):
            builder.append(0.0, float("nan"), 0.0)

    def test_build_empty_raises(self):
        with pytest.raises(EmptyTrajectoryError):
            TrajectoryBuilder().build()

    def test_builder_reusable_after_build(self):
        builder = TrajectoryBuilder()
        builder.append(0.0, 0.0, 0.0)
        first = builder.build()
        builder.append(1.0, 1.0, 1.0)
        second = builder.build()
        assert len(first) == 1
        assert len(second) == 2

    def test_clear(self):
        builder = TrajectoryBuilder()
        builder.append(0.0, 0.0, 0.0)
        builder.clear()
        assert len(builder) == 0
        assert builder.last_time is None

    def test_last_time(self):
        builder = TrajectoryBuilder()
        assert builder.last_time is None
        builder.append(7.0, 0.0, 0.0)
        assert builder.last_time == 7.0
