"""Tests for the cubic Hermite spline path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TrajectoryError
from repro.trajectory import CubicHermitePath, Trajectory


@pytest.fixture
def wave() -> Trajectory:
    t = np.arange(0.0, 100.0, 10.0)
    return Trajectory(t, np.column_stack([t * 10.0, 50.0 * np.sin(t / 15.0)]), "wave")


class TestCubicHermitePath:
    def test_interpolates_control_points(self, wave):
        spline = CubicHermitePath(wave)
        np.testing.assert_allclose(spline.positions_at(wave.t), wave.xy, atol=1e-9)

    def test_linear_data_reproduced_exactly(self, straight_line):
        """On constant-velocity data the tangents match the chords, so
        the Hermite cubics collapse to the linear interpolant."""
        spline = CubicHermitePath(straight_line)
        times = np.linspace(straight_line.start_time, straight_line.end_time, 101)
        np.testing.assert_allclose(
            spline.positions_at(times), straight_line.positions_at(times), atol=1e-8
        )

    def test_continuity_at_knots(self, wave):
        """C1: positions and derivatives agree across each knot."""
        spline = CubicHermitePath(wave)
        eps = 1e-6
        for knot in wave.t[1:-1]:
            before = spline.position_at(float(knot) - eps)
            after = spline.position_at(float(knot) + eps)
            np.testing.assert_allclose(before, after, atol=1e-3)

    def test_interval_and_len(self, wave):
        spline = CubicHermitePath(wave)
        assert spline.start_time == wave.start_time
        assert spline.end_time == wave.end_time
        assert len(spline) == len(wave)

    def test_rejects_out_of_range_queries(self, wave):
        spline = CubicHermitePath(wave)
        with pytest.raises(ValueError, match="outside"):
            spline.position_at(wave.end_time + 5.0)

    def test_rejects_single_point(self):
        with pytest.raises(TrajectoryError):
            CubicHermitePath(Trajectory.from_points([(0, 0, 0)]))

    def test_two_points_is_linear(self):
        traj = Trajectory.from_points([(0, 0, 0), (10, 100, 50)])
        spline = CubicHermitePath(traj)
        np.testing.assert_allclose(spline.position_at(5.0), [50, 25], atol=1e-9)

    def test_sample_returns_trajectory(self, wave):
        dense = CubicHermitePath(wave).sample(64)
        assert len(dense) == 64
        assert dense.start_time == wave.start_time
        assert dense.end_time == wave.end_time
        assert dense.object_id == "wave"

    def test_sample_validation(self, wave):
        with pytest.raises(ValueError):
            CubicHermitePath(wave).sample(1)

    def test_smoother_than_chords_on_smooth_motion(self, wave):
        """On smooth (sinusoidal) movement, a spline through a decimated
        subseries tracks the original better than the chords do."""
        from repro.error import mean_path_distance, mean_synchronized_error

        decimated = wave.subset([0, 3, 6, 9])
        linear_err = mean_synchronized_error(wave, decimated)
        spline_err = mean_path_distance(wave, CubicHermitePath(decimated))
        assert spline_err < linear_err
