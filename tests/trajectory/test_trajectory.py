"""Tests for the core Trajectory data model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.exceptions import (
    EmptyTrajectoryError,
    TimestampOrderError,
    TrajectoryError,
)
from repro.trajectory import Trajectory
from repro.types import Fix

from tests.conftest import trajectories


class TestConstruction:
    def test_from_points(self):
        traj = Trajectory.from_points([(0, 1, 2), (5, 3, 4)], object_id="a")
        assert len(traj) == 2
        assert traj.object_id == "a"
        np.testing.assert_allclose(traj.t, [0, 5])
        np.testing.assert_allclose(traj.xy, [[1, 2], [3, 4]])

    def test_from_arrays(self):
        traj = Trajectory.from_arrays([0, 1], [10, 20], [30, 40])
        np.testing.assert_allclose(traj.xy, [[10, 30], [20, 40]])

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(TrajectoryError, match="equal shapes"):
            Trajectory.from_arrays([0, 1], [10], [30, 40])

    def test_single_point_valid(self):
        traj = Trajectory.from_points([(1.5, 2.0, 3.0)])
        assert len(traj) == 1

    def test_rejects_empty(self):
        with pytest.raises(EmptyTrajectoryError):
            Trajectory.from_points([])

    def test_rejects_unsorted_times(self):
        with pytest.raises(TimestampOrderError, match="strictly increasing"):
            Trajectory.from_points([(0, 0, 0), (2, 1, 1), (1, 2, 2)])

    def test_rejects_duplicate_times(self):
        with pytest.raises(TimestampOrderError):
            Trajectory.from_points([(0, 0, 0), (0, 1, 1)])

    def test_rejects_nan(self):
        with pytest.raises(TrajectoryError, match="finite"):
            Trajectory(np.array([0.0, 1.0]), np.array([[0.0, 0.0], [np.nan, 1.0]]))

    def test_rejects_bad_xy_shape(self):
        with pytest.raises(TrajectoryError, match=r"\(n, 2\)"):
            Trajectory(np.array([0.0]), np.array([1.0, 2.0, 3.0]).reshape(1, 3))

    def test_arrays_are_readonly(self):
        traj = Trajectory.from_points([(0, 0, 0), (1, 1, 1)])
        with pytest.raises(ValueError):
            traj.t[0] = 99.0
        with pytest.raises(ValueError):
            traj.xy[0, 0] = 99.0


class TestAccessors:
    def test_point_and_iteration(self, zigzag):
        first = zigzag.point(0)
        assert first == Fix(0.0, 0.0, 0.0)
        assert zigzag.point(-1) == zigzag.point(len(zigzag) - 1)
        assert list(zigzag)[3] == zigzag.point(3)

    def test_point_out_of_range(self, zigzag):
        with pytest.raises(IndexError):
            zigzag.point(len(zigzag))

    def test_equality_ignores_object_id(self, zigzag):
        clone = Trajectory(zigzag.t.copy(), zigzag.xy.copy(), "other-id")
        assert clone == zigzag
        assert hash(clone) == hash(zigzag)

    def test_inequality(self, zigzag, straight_line):
        assert zigzag != straight_line

    def test_repr_mentions_size(self, zigzag):
        assert "n=19" in repr(zigzag)


class TestInterpolation:
    def test_position_at_sample_times(self, zigzag):
        for i in (0, 5, len(zigzag) - 1):
            np.testing.assert_allclose(
                zigzag.position_at(float(zigzag.t[i])), zigzag.xy[i]
            )

    def test_position_between_samples(self):
        traj = Trajectory.from_points([(0, 0, 0), (10, 100, 50)])
        np.testing.assert_allclose(traj.position_at(4.0), [40, 20])

    def test_position_outside_interval_raises(self, zigzag):
        with pytest.raises(ValueError, match="outside"):
            zigzag.position_at(zigzag.end_time + 1.0)

    def test_positions_at_matches_scalar(self, zigzag):
        times = np.linspace(zigzag.start_time, zigzag.end_time, 23)
        batch = zigzag.positions_at(times)
        for i, when in enumerate(times):
            np.testing.assert_allclose(batch[i], zigzag.position_at(float(when)))

    def test_positions_at_empty(self, zigzag):
        assert zigzag.positions_at(np.array([])).shape == (0, 2)

    def test_single_point_position(self):
        traj = Trajectory.from_points([(5, 1, 2)])
        np.testing.assert_allclose(traj.position_at(5.0), [1, 2])
        with pytest.raises(ValueError):
            traj.position_at(6.0)

    def test_segment_index_at(self, zigzag):
        assert zigzag.segment_index_at(zigzag.start_time) == 0
        assert zigzag.segment_index_at(zigzag.end_time) == len(zigzag) - 2
        assert zigzag.segment_index_at(15.0) == 1

    @given(trajectories(min_points=2))
    def test_position_at_is_within_segment_bbox(self, traj):
        mid = (traj.start_time + traj.end_time) / 2.0
        pos = traj.position_at(mid)
        i = traj.segment_index_at(mid)
        lo = np.minimum(traj.xy[i], traj.xy[i + 1]) - 1e-9
        hi = np.maximum(traj.xy[i], traj.xy[i + 1]) + 1e-9
        assert np.all(pos >= lo) and np.all(pos <= hi)


class TestStructuralOps:
    def test_subset(self, zigzag):
        sub = zigzag.subset([0, 4, 18])
        assert len(sub) == 3
        np.testing.assert_allclose(sub.t, [0.0, 40.0, 180.0])

    def test_subset_rejects_unsorted(self, zigzag):
        with pytest.raises(ValueError, match="strictly increasing"):
            zigzag.subset([0, 4, 4, 18])

    def test_subset_rejects_out_of_range(self, zigzag):
        with pytest.raises(IndexError):
            zigzag.subset([0, 99])

    def test_subset_rejects_empty(self, zigzag):
        with pytest.raises(EmptyTrajectoryError):
            zigzag.subset([])

    def test_slice_index(self, zigzag):
        part = zigzag.slice_index(2, 5)
        assert len(part) == 3
        np.testing.assert_allclose(part.t, zigzag.t[2:5])

    def test_slice_index_empty_raises(self, zigzag):
        with pytest.raises(EmptyTrajectoryError):
            zigzag.slice_index(5, 5)

    def test_slice_time(self, zigzag):
        part = zigzag.slice_time(25.0, 65.0)
        np.testing.assert_allclose(part.t, [30, 40, 50, 60])

    def test_slice_time_no_samples(self, zigzag):
        with pytest.raises(EmptyTrajectoryError):
            zigzag.slice_time(31.0, 39.0)

    def test_slice_time_reversed_window(self, zigzag):
        with pytest.raises(ValueError, match="empty time window"):
            zigzag.slice_time(50.0, 40.0)

    def test_shifted(self, zigzag):
        moved = zigzag.shifted(dt=100.0, dx=-5.0, dy=2.0)
        np.testing.assert_allclose(moved.t, zigzag.t + 100.0)
        np.testing.assert_allclose(moved.xy, zigzag.xy + [-5.0, 2.0])

    def test_with_object_id_shares_arrays(self, zigzag):
        renamed = zigzag.with_object_id("new")
        assert renamed.object_id == "new"
        assert renamed.t is zigzag.t
        assert renamed == zigzag

    def test_bbox(self, straight_line):
        box = straight_line.bbox()
        assert box.min_x == 0.0
        assert box.max_x == pytest.approx(1200.0)

    def test_resample_covers_interval(self, zigzag):
        resampled = zigzag.resample(7.0)
        assert resampled.start_time == zigzag.start_time
        assert resampled.end_time == zigzag.end_time
        assert np.all(np.diff(resampled.t) > 0)

    def test_resample_on_line_preserves_positions(self, straight_line):
        resampled = straight_line.resample(3.0)
        expected = straight_line.positions_at(resampled.t)
        np.testing.assert_allclose(resampled.xy, expected)

    def test_resample_rejects_nonpositive(self, zigzag):
        with pytest.raises(ValueError, match="positive"):
            zigzag.resample(0.0)

    @given(trajectories())
    def test_subset_endpoints_preserves_interval(self, traj):
        sub = traj.subset([0, len(traj) - 1]) if len(traj) > 1 else traj
        assert sub.start_time == traj.start_time
        assert sub.end_time == traj.end_time
