"""Tests for the kinematic vehicle simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import Route, VehicleModel, simulate_drive
from repro.datagen.vehicle import _backward_pass, _vertex_speed_caps
from repro.exceptions import DataGenError


@pytest.fixture
def straight_route() -> Route:
    """Two 1 km legs, no corner (collinear)."""
    return Route(
        np.array([[0.0, 0.0], [1000.0, 0.0], [2000.0, 0.0]]),
        np.array([50.0 / 3.6, 50.0 / 3.6]),
    )


@pytest.fixture
def corner_route() -> Route:
    """1 km east then 1 km north: a 90-degree corner."""
    return Route(
        np.array([[0.0, 0.0], [1000.0, 0.0], [1000.0, 1000.0]]),
        np.array([70.0 / 3.6, 70.0 / 3.6]),
    )


class TestVehicleModel:
    def test_corner_speed_monotone_in_angle(self):
        model = VehicleModel()
        limit = 25.0
        speeds = [
            model.corner_speed(np.radians(angle), limit) for angle in (0, 30, 60, 90, 150)
        ]
        assert speeds[0] == limit  # straight-through: unconstrained
        assert all(a >= b for a, b in zip(speeds, speeds[1:]))
        assert speeds[-1] >= model.min_corner_speed_ms

    def test_validation(self):
        with pytest.raises(ValueError):
            VehicleModel(accel_ms2=0.0)
        with pytest.raises(ValueError):
            VehicleModel(stop_prob=1.5)
        with pytest.raises(ValueError):
            VehicleModel(stop_duration_range_s=(10.0, 5.0))
        with pytest.raises(ValueError):
            VehicleModel(dt_s=0.0)


class TestSpeedEnvelope:
    def test_backward_pass_enforces_braking_feasibility(self, corner_route):
        model = VehicleModel(stop_prob=0.0)
        caps = _vertex_speed_caps(corner_route, model, np.random.default_rng(0))
        allowed = _backward_pass(corner_route, caps, model.decel_ms2)
        # From any vertex, the next vertex's allowed speed must be
        # reachable under the braking limit.
        lengths = corner_route.leg_lengths
        for k in range(len(allowed) - 1):
            max_reachable = np.sqrt(
                allowed[k + 1] ** 2 + 2 * model.decel_ms2 * lengths[k]
            )
            assert allowed[k] <= max_reachable + 1e-9

    def test_final_vertex_is_stop(self, straight_route):
        model = VehicleModel(stop_prob=0.0)
        caps = _vertex_speed_caps(straight_route, model, np.random.default_rng(0))
        assert caps[-1] == 0.0


class TestSimulateDrive:
    def test_starts_and_ends_at_route_ends(self, straight_route):
        trace = simulate_drive(
            straight_route, VehicleModel(stop_prob=0.0), np.random.default_rng(1)
        )
        np.testing.assert_allclose(trace.xy[0], [0, 0], atol=1e-6)
        np.testing.assert_allclose(trace.xy[-1], [2000, 0], atol=1.0)

    def test_time_strictly_increasing(self, corner_route):
        trace = simulate_drive(
            corner_route, VehicleModel(stop_prob=0.0), np.random.default_rng(1)
        )
        assert np.all(np.diff(trace.t) > 0)

    def test_speed_never_exceeds_limit(self, straight_route):
        model = VehicleModel(stop_prob=0.0)
        trace = simulate_drive(straight_route, model, np.random.default_rng(2))
        step = np.diff(trace.xy, axis=0)
        speeds = np.hypot(step[:, 0], step[:, 1]) / np.diff(trace.t)
        assert float(speeds.max()) <= float(straight_route.speed_limits.max()) + 0.5

    def test_acceleration_bounded(self, straight_route):
        model = VehicleModel(stop_prob=0.0)
        trace = simulate_drive(straight_route, model, np.random.default_rng(2))
        step = np.diff(trace.xy, axis=0)
        speeds = np.hypot(step[:, 0], step[:, 1]) / np.diff(trace.t)
        accel = np.diff(speeds) / model.dt_s
        assert float(accel.max()) <= model.accel_ms2 + 0.2
        # Snap-to-vertex on arrival can exceed the braking limit in one
        # sample; everywhere else deceleration respects the model.
        assert float(np.percentile(accel, 1)) >= -(model.decel_ms2) - 0.5

    def test_corner_slows_the_vehicle(self, corner_route):
        model = VehicleModel(stop_prob=0.0)
        trace = simulate_drive(corner_route, model, np.random.default_rng(3))
        # Find the sample nearest the corner and check local speed.
        corner = np.array([1000.0, 0.0])
        distances = np.hypot(*(trace.xy - corner).T)
        k = int(np.argmin(distances))
        k = max(k, 1)
        local_speed = float(
            np.hypot(*(trace.xy[k] - trace.xy[k - 1])) / (trace.t[k] - trace.t[k - 1])
        )
        limit = float(corner_route.speed_limits.max())
        assert local_speed < 0.7 * limit

    def test_stop_probability_one_dwells_at_interior_vertex(self, corner_route):
        model = VehicleModel(stop_prob=1.0, stop_duration_range_s=(20.0, 30.0))
        trace = simulate_drive(corner_route, model, np.random.default_rng(4))
        # Dwell: many consecutive samples at (nearly) the same position.
        step = np.hypot(*(np.diff(trace.xy, axis=0)).T)
        longest_still = 0
        run = 0
        for s in step:
            run = run + 1 if s < 1e-9 else 0
            longest_still = max(longest_still, run)
        assert longest_still * model.dt_s >= 19.0

    def test_start_time_offset(self, straight_route):
        trace = simulate_drive(
            straight_route,
            VehicleModel(stop_prob=0.0),
            np.random.default_rng(5),
            start_time_s=1000.0,
        )
        assert trace.t[0] == pytest.approx(1000.0)

    def test_timeout_guard(self, straight_route):
        with pytest.raises(DataGenError, match="did not finish"):
            simulate_drive(
                straight_route,
                VehicleModel(stop_prob=0.0),
                np.random.default_rng(6),
                max_sim_hours=0.001,
            )

    def test_duration_plausible(self, straight_route):
        """2 km at <= 50 km/h with accel ramps: between 2.4 and 10 min."""
        trace = simulate_drive(
            straight_route, VehicleModel(stop_prob=0.0), np.random.default_rng(7)
        )
        assert 144.0 <= trace.duration_s <= 600.0
