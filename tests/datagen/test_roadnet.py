"""Tests for the synthetic road network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import SPEED_LIMITS_MS, RoadNetwork
from repro.exceptions import DataGenError


@pytest.fixture
def net() -> RoadNetwork:
    rng = np.random.default_rng(7)
    return RoadNetwork.grid(
        8, 10, 500.0, rng, jitter_frac=0.2, arterial_every=4, highway_rows=(0,)
    )


class TestGrid:
    def test_node_and_edge_counts(self, net):
        assert net.graph.number_of_nodes() == 80
        # 4-neighbour lattice: rows*(cols-1) + cols*(rows-1) edges.
        assert net.graph.number_of_edges() == 8 * 9 + 10 * 7

    def test_connected(self, net):
        import networkx as nx

        assert nx.is_connected(net.graph)

    def test_positions_jittered_but_near_lattice(self, net):
        pos = net.node_position((3, 4))
        nominal = np.array([4 * 500.0, 3 * 500.0])
        assert np.all(np.abs(pos - nominal) <= 0.2 * 500.0 + 1e-9)

    def test_road_classes_and_limits(self, net):
        classes = {data["road_class"] for _, _, data in net.graph.edges(data=True)}
        assert classes == {"local", "arterial", "highway"}
        for _, _, data in net.graph.edges(data=True):
            assert data["speed_limit"] == SPEED_LIMITS_MS[data["road_class"]]
            assert data["travel_time"] == pytest.approx(
                data["length"] / data["speed_limit"]
            )

    def test_highway_row_edges_are_highways(self, net):
        for c in range(9):
            assert net.graph.edges[(0, c), (0, c + 1)]["road_class"] == "highway"

    def test_arterial_spacing(self, net):
        # Row 4 is arterial (4 % 4 == 0 and not a highway row).
        assert net.graph.edges[(4, 0), (4, 1)]["road_class"] == "arterial"
        assert net.graph.edges[(1, 0), (1, 1)]["road_class"] == "local"

    def test_deterministic_under_seed(self):
        a = RoadNetwork.grid(5, 5, 400.0, np.random.default_rng(3))
        b = RoadNetwork.grid(5, 5, 400.0, np.random.default_rng(3))
        for node in a.graph.nodes:
            np.testing.assert_allclose(a.node_position(node), b.node_position(node))

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataGenError):
            RoadNetwork.grid(1, 5, 500.0, rng)
        with pytest.raises(DataGenError):
            RoadNetwork.grid(5, 5, -1.0, rng)
        with pytest.raises(DataGenError):
            RoadNetwork.grid(5, 5, 500.0, rng, jitter_frac=0.7)


class TestQueries:
    def test_random_node_in_range(self, net):
        rng = np.random.default_rng(1)
        for _ in range(20):
            r, c = net.random_node(rng)
            assert 0 <= r < 8
            assert 0 <= c < 10

    def test_nodes_near_distance(self, net):
        origin = (0, 0)
        found = net.nodes_near_distance(origin, 2_000.0, 300.0)
        assert found
        origin_pos = net.node_position(origin)
        for node in found:
            d = float(np.hypot(*(net.node_position(node) - origin_pos)))
            assert abs(d - 2_000.0) <= 300.0

    def test_extent(self, net):
        assert net.extent_m == pytest.approx(np.hypot(9, 7) * 500.0)
