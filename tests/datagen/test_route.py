"""Tests for route planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import RoadNetwork, Route, plan_route, random_route
from repro.exceptions import DataGenError


@pytest.fixture
def net() -> RoadNetwork:
    return RoadNetwork.grid(
        20, 20, 500.0, np.random.default_rng(13), jitter_frac=0.2, arterial_every=5
    )


class TestRoute:
    def test_geometry_accessors(self):
        route = Route(
            np.array([[0.0, 0.0], [300.0, 400.0], [300.0, 900.0]]),
            np.array([10.0, 20.0]),
        )
        np.testing.assert_allclose(route.leg_lengths, [500.0, 500.0])
        np.testing.assert_allclose(route.cumulative_lengths, [0, 500, 1000])
        assert route.total_length_m == pytest.approx(1000.0)
        assert route.displacement_m == pytest.approx(np.hypot(300, 900))

    def test_turn_angles(self):
        route = Route(
            np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 100.0]]),
            np.array([10.0, 10.0]),
        )
        np.testing.assert_allclose(route.turn_angles(), [np.pi / 2])

    def test_position_at_arclength(self):
        route = Route(
            np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 100.0]]),
            np.array([10.0, 10.0]),
        )
        np.testing.assert_allclose(route.position_at_arclength(50.0), [50, 0])
        np.testing.assert_allclose(route.position_at_arclength(150.0), [100, 50])
        # Clamped at the ends.
        np.testing.assert_allclose(route.position_at_arclength(-10.0), [0, 0])
        np.testing.assert_allclose(route.position_at_arclength(999.0), [100, 100])

    def test_position_vectorized(self):
        route = Route(
            np.array([[0.0, 0.0], [100.0, 0.0]]), np.array([10.0])
        )
        out = route.position_at_arclength(np.array([0.0, 25.0, 100.0]))
        np.testing.assert_allclose(out, [[0, 0], [25, 0], [100, 0]])

    def test_validation(self):
        with pytest.raises(DataGenError):
            Route(np.array([[0.0, 0.0]]), np.array([]))
        with pytest.raises(DataGenError):
            Route(np.zeros((3, 2)), np.array([1.0]))
        with pytest.raises(DataGenError):
            Route(np.zeros((2, 2)), np.array([-1.0]))


class TestPlanRoute:
    def test_path_endpoints(self, net):
        route = plan_route(net, (0, 0), (10, 10))
        np.testing.assert_allclose(route.points[0], net.node_position((0, 0)))
        np.testing.assert_allclose(route.points[-1], net.node_position((10, 10)))

    def test_speed_limits_match_edges(self, net):
        route = plan_route(net, (0, 0), (0, 3))
        assert route.speed_limits.shape[0] == route.points.shape[0] - 1
        assert np.all(route.speed_limits > 0)

    def test_rejects_same_endpoints(self, net):
        with pytest.raises(DataGenError, match="coincide"):
            plan_route(net, (0, 0), (0, 0))

    def test_rejects_unknown_node(self, net):
        with pytest.raises(DataGenError, match="no route"):
            plan_route(net, (0, 0), (99, 99))

    def test_prefers_fast_roads(self):
        """Travel-time routing detours via an arterial when it pays."""
        net = RoadNetwork.grid(
            9, 9, 500.0, np.random.default_rng(3), jitter_frac=0.0, arterial_every=4
        )
        route = plan_route(net, (3, 0), (5, 8))
        # The route should use some arterial edges (limit > local 50 km/h).
        assert float(route.speed_limits.max()) > 14.0


class TestRandomRoute:
    def test_length_near_target(self, net):
        rng = np.random.default_rng(21)
        for target in (4_000.0, 8_000.0):
            route = random_route(net, rng, target)
            assert 0.6 * target <= route.total_length_m <= 1.6 * target

    def test_displacement_ratio_respected(self, net):
        rng = np.random.default_rng(22)
        ratios = []
        for _ in range(8):
            route = random_route(net, rng, 6_000.0, displacement_ratio=0.53)
            ratios.append(route.displacement_m / route.total_length_m)
        assert 0.35 <= float(np.mean(ratios)) <= 0.75

    def test_rejects_impossible_target(self, net):
        rng = np.random.default_rng(23)
        with pytest.raises(DataGenError, match="extent"):
            random_route(net, rng, 1e9)

    def test_rejects_nonpositive_target(self, net):
        with pytest.raises(DataGenError, match="positive"):
            random_route(net, np.random.default_rng(0), 0.0)

    def test_deterministic_under_seed(self, net):
        r1 = random_route(net, np.random.default_rng(5), 5_000.0)
        r2 = random_route(net, np.random.default_rng(5), 5_000.0)
        np.testing.assert_allclose(r1.points, r2.points)
