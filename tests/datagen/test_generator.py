"""Tests for the top-level trajectory generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import (
    GpsNoise,
    PAPER_PROFILES,
    TrajectoryGenerator,
    URBAN,
    WorkloadProfile,
    generate_dataset,
    sample_trace,
)
from repro.datagen.vehicle import DriveTrace
from repro.exceptions import DataGenError
from repro.trajectory import trajectory_stats


class TestSampleTrace:
    @pytest.fixture
    def trace(self) -> DriveTrace:
        t = np.arange(0.0, 100.5, 0.5)
        xy = np.column_stack([t * 10.0, np.zeros_like(t)])
        return DriveTrace(t, xy)

    def test_sampling_interval(self, trace):
        t, xy = sample_trace(trace, 10.0, GpsNoise(sigma_m=0.0), np.random.default_rng(0))
        np.testing.assert_allclose(np.diff(t), 10.0)
        np.testing.assert_allclose(xy[:, 0], t * 10.0)

    def test_final_instant_included(self, trace):
        t, _ = sample_trace(trace, 7.0, GpsNoise(sigma_m=0.0), np.random.default_rng(0))
        assert t[-1] == pytest.approx(100.0)

    def test_start_time_rebased(self, trace):
        t, _ = sample_trace(
            trace, 10.0, GpsNoise(sigma_m=0.0), np.random.default_rng(0),
            start_time_s=500.0,
        )
        assert t[0] == pytest.approx(500.0)

    def test_rejects_bad_interval(self, trace):
        with pytest.raises(DataGenError):
            sample_trace(trace, 0.0, GpsNoise(), np.random.default_rng(0))


class TestTrajectoryGenerator:
    def test_deterministic_under_seed(self):
        a = TrajectoryGenerator(seed=9).generate(URBAN, "x")
        b = TrajectoryGenerator(seed=9).generate(URBAN, "x")
        assert a == b

    def test_different_seeds_differ(self):
        a = TrajectoryGenerator(seed=9).generate(URBAN, "x")
        b = TrajectoryGenerator(seed=10).generate(URBAN, "x")
        assert a != b

    def test_sampling_interval_respected(self):
        traj = TrajectoryGenerator(seed=3).generate(URBAN)
        gaps = np.diff(traj.t)
        # All gaps are the profile's interval except possibly the last.
        np.testing.assert_allclose(gaps[:-1], URBAN.sample_interval_s)

    def test_statistics_plausible_for_profile(self):
        profile = URBAN.with_length(8_000.0)
        stats = trajectory_stats(TrajectoryGenerator(seed=4).generate(profile))
        assert 4_000 <= stats.length_m <= 16_000
        assert 10.0 <= stats.mean_speed_kmh <= 60.0

    def test_network_cache_reused(self):
        generator = TrajectoryGenerator(seed=5)
        generator.generate(URBAN)
        generator.generate(URBAN.with_length(9_000.0))  # same network geometry
        assert len(generator._networks) == 1

    def test_true_and_observed_pair(self):
        generator = TrajectoryGenerator(seed=6)
        true, observed = generator.generate_true_and_observed(URBAN, "car")
        assert len(true) == len(observed)
        np.testing.assert_array_equal(true.t, observed.t)
        offsets = np.hypot(*(true.xy - observed.xy).T)
        assert 0.0 < float(offsets.mean()) < 30.0
        assert true.object_id == "car-true"
        assert observed.object_id == "car"


class TestGenerateDataset:
    def test_ids_and_count(self):
        profiles = (URBAN.with_length(4_000.0), URBAN.with_length(5_000.0))
        dataset = generate_dataset(profiles, seed=1, id_prefix="t")
        assert [traj.object_id for traj in dataset] == ["t-00-urban", "t-01-urban"]

    def test_paper_profiles_have_ten_trips(self):
        assert len(PAPER_PROFILES) == 10

    def test_profile_with_length(self):
        modified = URBAN.with_length(12_345.0)
        assert modified.target_length_m == 12_345.0
        assert modified.name == URBAN.name
        assert isinstance(modified, WorkloadProfile)
