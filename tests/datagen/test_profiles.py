"""Tests for workload profiles."""

from __future__ import annotations

import dataclasses

import pytest

from repro.datagen import HIGHWAY, PAPER_PROFILES, RURAL, URBAN, WorkloadProfile


class TestProfiles:
    def test_named_profiles_distinct_characters(self):
        # Urban: small blocks, many stops. Rural/highway: long blocks.
        assert URBAN.spacing_m < RURAL.spacing_m < HIGHWAY.spacing_m
        assert URBAN.vehicle.stop_prob > RURAL.vehicle.stop_prob
        assert HIGHWAY.highway_rows  # highways exist only there
        assert not URBAN.highway_rows

    def test_profiles_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            URBAN.target_length_m = 1.0  # type: ignore[misc]

    def test_with_length_returns_modified_copy(self):
        longer = URBAN.with_length(99_000.0)
        assert longer.target_length_m == 99_000.0
        assert URBAN.target_length_m != 99_000.0
        assert longer.name == URBAN.name
        assert longer.vehicle == URBAN.vehicle

    def test_paper_profiles_composition(self):
        names = [profile.name for profile in PAPER_PROFILES]
        assert len(PAPER_PROFILES) == 10
        assert names.count("urban") >= 3
        assert names.count("rural") >= 2
        assert names.count("highway") >= 2

    def test_paper_profiles_length_spread_matches_table2_spirit(self):
        """Short and lengthy trips, averaging near the paper's 19.95 km."""
        lengths = sorted(p.target_length_m for p in PAPER_PROFILES)
        assert lengths[0] < 8_000.0
        assert lengths[-1] > 35_000.0
        mean_km = sum(lengths) / len(lengths) / 1000.0
        assert mean_km == pytest.approx(19.95, rel=0.15)

    def test_default_sampling_matches_paper_example(self):
        """The paper's storage arithmetic assumes a fix every 10 s."""
        for profile in (URBAN, RURAL, HIGHWAY):
            assert profile.sample_interval_s == 10.0

    def test_custom_profile_construction(self):
        profile = WorkloadProfile(name="test", rows=5, cols=5, spacing_m=100.0)
        assert profile.target_length_m > 0
        assert profile.noise.sigma_m >= 0
