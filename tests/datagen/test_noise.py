"""Tests for the GPS noise model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import GpsNoise


class TestGpsNoise:
    def test_zero_sigma_is_noiseless(self):
        noise = GpsNoise(sigma_m=0.0)
        t = np.arange(0.0, 100.0, 10.0)
        xy = np.random.default_rng(0).normal(size=(10, 2))
        np.testing.assert_array_equal(
            noise.apply(t, xy, np.random.default_rng(1)), xy
        )

    def test_stationary_variance_matches_sigma(self):
        noise = GpsNoise(sigma_m=5.0, correlation_time_s=20.0)
        t = np.arange(0.0, 50_000.0, 10.0)
        errors = noise.sample_errors(t, np.random.default_rng(2))
        assert float(errors.std()) == pytest.approx(5.0, rel=0.1)

    def test_white_noise_variance(self):
        noise = GpsNoise(sigma_m=3.0, correlation_time_s=0.0)
        t = np.arange(0.0, 20_000.0, 10.0)
        errors = noise.sample_errors(t, np.random.default_rng(3))
        assert float(errors.std()) == pytest.approx(3.0, rel=0.1)

    def test_autocorrelation_present(self):
        """Correlated noise: adjacent errors are similar; white: not."""
        t = np.arange(0.0, 20_000.0, 10.0)
        correlated = GpsNoise(sigma_m=5.0, correlation_time_s=60.0).sample_errors(
            t, np.random.default_rng(4)
        )
        white = GpsNoise(sigma_m=5.0, correlation_time_s=0.0).sample_errors(
            t, np.random.default_rng(4)
        )

        def lag1(e: np.ndarray) -> float:
            x = e[:, 0]
            return float(np.corrcoef(x[:-1], x[1:])[0, 1])

        assert lag1(correlated) > 0.5
        assert abs(lag1(white)) < 0.1

    def test_outliers_injected(self):
        noise = GpsNoise(
            sigma_m=1.0, correlation_time_s=0.0, outlier_prob=0.2, outlier_sigma_m=100.0
        )
        t = np.arange(0.0, 5_000.0, 10.0)
        errors = noise.sample_errors(t, np.random.default_rng(5))
        magnitudes = np.hypot(errors[:, 0], errors[:, 1])
        assert np.count_nonzero(magnitudes > 20.0) > 10

    def test_deterministic_under_seed(self):
        noise = GpsNoise(sigma_m=4.0)
        t = np.arange(0.0, 1_000.0, 10.0)
        a = noise.sample_errors(t, np.random.default_rng(6))
        b = noise.sample_errors(t, np.random.default_rng(6))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            GpsNoise(sigma_m=-1.0)
        with pytest.raises(ValueError):
            GpsNoise(correlation_time_s=-1.0)
        with pytest.raises(ValueError):
            GpsNoise(outlier_prob=2.0)

    def test_empty_input(self):
        noise = GpsNoise()
        out = noise.sample_errors(np.array([]), np.random.default_rng(0))
        assert out.shape == (0, 2)
