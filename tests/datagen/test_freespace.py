"""Tests for pedestrian and migration movement models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import (
    MigrationModel,
    PedestrianModel,
    generate_migration_trajectory,
    generate_pedestrian_trajectory,
    simulate_migration,
    simulate_pedestrian,
)
from repro.exceptions import DataGenError
from repro.trajectory import Trajectory, stop_episodes, trajectory_stats


class TestPedestrianModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PedestrianModel(area_m=0.0)
        with pytest.raises(ValueError):
            PedestrianModel(speed_range_ms=(2.0, 1.0))
        with pytest.raises(ValueError):
            PedestrianModel(pause_prob=1.5)

    def test_stays_inside_area(self):
        model = PedestrianModel(area_m=200.0)
        trace = simulate_pedestrian(600.0, model, np.random.default_rng(1))
        assert float(trace.xy.min()) >= -1e-9
        assert float(trace.xy.max()) <= 200.0 + 1e-9

    def test_duration_honoured(self):
        model = PedestrianModel()
        trace = simulate_pedestrian(900.0, model, np.random.default_rng(2))
        assert trace.duration_s >= 900.0 - model.dt_s
        # Pauses may push slightly past the end, never wildly.
        assert trace.duration_s <= 900.0 + max(model.pause_duration_range_s)

    def test_walking_speeds(self):
        traj = generate_pedestrian_trajectory(seed=4, duration_s=1200.0)
        stats = trajectory_stats(traj)
        assert 1.0 <= stats.mean_speed_kmh <= 8.0  # pauses drag it down

    def test_pauses_present(self):
        model = PedestrianModel(pause_prob=1.0, pause_duration_range_s=(30.0, 60.0))
        trace = simulate_pedestrian(600.0, model, np.random.default_rng(5))
        traj = Trajectory(trace.t, trace.xy)
        assert stop_episodes(traj, speed_threshold_ms=0.05, min_duration_s=20.0)

    def test_deterministic_under_seed(self):
        a = generate_pedestrian_trajectory(seed=6)
        b = generate_pedestrian_trajectory(seed=6)
        assert a == b

    def test_rejects_bad_duration(self):
        with pytest.raises(DataGenError):
            simulate_pedestrian(0.0, PedestrianModel(), np.random.default_rng(0))


class TestMigrationModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationModel(mean_speed_ms=0.0)
        with pytest.raises(ValueError):
            MigrationModel(heading_persistence=1.0)
        with pytest.raises(ValueError):
            MigrationModel(rest_duration_range_s=(100.0, 50.0))

    def test_net_drift_along_bearing(self):
        model = MigrationModel(bearing_rad=0.0, rest_prob_per_hour=0.0)
        trace = simulate_migration(3600.0, model, np.random.default_rng(7))
        displacement = trace.xy[-1] - trace.xy[0]
        assert displacement[0] > 10_000.0  # strong eastward progress
        assert abs(displacement[1]) < displacement[0]

    def test_rests_freeze_position(self):
        model = MigrationModel(
            rest_prob_per_hour=50.0, rest_duration_range_s=(300.0, 600.0)
        )
        trace = simulate_migration(3600.0, model, np.random.default_rng(8))
        traj = Trajectory(trace.t, trace.xy)
        assert stop_episodes(traj, speed_threshold_ms=0.05, min_duration_s=200.0)

    def test_plausible_statistics(self):
        traj = generate_migration_trajectory(seed=9)
        stats = trajectory_stats(traj)
        assert stats.duration_s == pytest.approx(6 * 3600.0, rel=0.02)
        assert 20.0 <= stats.mean_speed_kmh <= 70.0
        # A migrant is far more direct than a commuter.
        assert stats.displacement_m / stats.length_m > 0.5

    def test_deterministic_under_seed(self):
        a = generate_migration_trajectory(seed=10)
        b = generate_migration_trajectory(seed=10)
        assert a == b

    def test_rejects_bad_duration(self):
        with pytest.raises(DataGenError):
            simulate_migration(-5.0, MigrationModel(), np.random.default_rng(0))


class TestCompressionAcrossNatures:
    def test_all_algorithms_run_on_every_nature(self):
        from repro.core import OPWSP, TDTR

        natures = [
            generate_pedestrian_trajectory(seed=11, duration_s=900.0),
            generate_migration_trajectory(seed=11, duration_s=2 * 3600.0),
        ]
        for traj in natures:
            for algo in (TDTR(epsilon=25.0), OPWSP(max_dist_error=25.0, max_speed_error=5.0)):
                result = algo.compress(traj)
                assert result.indices[0] == 0
                assert result.indices[-1] == len(traj) - 1
