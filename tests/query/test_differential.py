"""Differential testing: QueryEngine == decode-everything brute force.

Hypothesis drives randomized stores (tiny partitions, so queries always
span partition boundaries) and adversarial query points — decoded sample
times, partition-boundary times, segment midpoints, duplicate spatial
endpoints — and asserts the pruned engine answers are *identical* to
:mod:`repro.query.baseline`, which decodes everything and never prunes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BBox
from repro.query.baseline import brute_nearest, brute_window
from repro.query.engine import QueryEngine
from repro.storage.store import TrajectoryStore
from repro.trajectory import Trajectory

from tests.conftest import trajectories


def _build_store(data: st.DataObject) -> TrajectoryStore:
    """A store of 1-4 random trajectories with adversarially small
    partitions; one trajectory may be duplicated under a second id so
    exact spatial ties exist."""
    store = TrajectoryStore(
        summary_partition_points=data.draw(
            st.sampled_from([1, 2, 3, 5]), label="partition_points"
        ),
        summary_grid_m=data.draw(
            st.sampled_from([1.0, 10.0, 100.0]), label="grid_m"
        ),
        summary_time_grid_s=data.draw(
            st.sampled_from([0.5, 1.0, 30.0]), label="time_grid_s"
        ),
    )
    n = data.draw(st.integers(1, 4), label="n_objects")
    trajs = [
        data.draw(trajectories(min_points=1, max_points=25), label=f"traj{i}")
        for i in range(n)
    ]
    for i, traj in enumerate(trajs):
        store.insert(traj, object_id=f"obj-{i}")
    if data.draw(st.booleans(), label="duplicate"):
        # Same geometry under another id: forces exact distance ties in
        # nearest and identical boxes in window.
        store.insert(trajs[0], object_id="obj-dup")
    return store


def _adversarial_times(store: TrajectoryStore, data: st.DataObject) -> list[float]:
    """Decoded sample times (includes every partition boundary), segment
    midpoints, the extremes, and one step outside each end."""
    times: list[float] = []
    for key in store.object_ids():
        t = store.get(key).t
        times.extend(float(v) for v in t)
        times.extend(float((a + b) / 2) for a, b in zip(t, t[1:]))
        times.extend((float(t[0]) - 1.0, float(t[-1]) + 1.0))
    picks = data.draw(
        st.lists(st.sampled_from(sorted(set(times))), min_size=1, max_size=6),
        label="times",
    )
    return picks


def _query_box(store: TrajectoryStore, data: st.DataObject) -> BBox:
    """Boxes anchored on decoded sample coordinates: edges and corners
    land exactly on trajectory points, the worst case for ties."""
    xs, ys = [], []
    for key in store.object_ids():
        xy = store.get(key).xy
        xs.extend(float(v) for v in xy[:, 0])
        ys.extend(float(v) for v in xy[:, 1])
    x0 = data.draw(st.sampled_from(sorted(set(xs))), label="box_x")
    y0 = data.draw(st.sampled_from(sorted(set(ys))), label="box_y")
    w = data.draw(st.sampled_from([0.0, 5.0, 150.0, 4000.0]), label="box_w")
    h = data.draw(st.sampled_from([0.0, 5.0, 150.0, 4000.0]), label="box_h")
    return BBox(x0 - w / 2, y0 - h / 2, x0 + w / 2, y0 + h / 2)


class TestEngineEqualsBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_position(self, data):
        store = _build_store(data)
        engine = QueryEngine(store)
        for key in store.object_ids():
            decoded = store.get(key)
            for when in _adversarial_times(store, data):
                covered = decoded.t[0] <= when <= decoded.t[-1]
                if not covered:
                    with pytest.raises(ValueError):
                        engine.position_at(key, when)
                    continue
                answer = engine.position_at(key, when)
                expected = decoded.position_at(when)
                assert (answer.x, answer.y) == (
                    float(expected[0]), float(expected[1])
                )

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_window(self, data):
        store = _build_store(data)
        engine = QueryEngine(store)
        times = _adversarial_times(store, data)
        t0 = min(times)
        t1 = max(times)
        box = _query_box(store, data)
        mode = data.draw(
            st.sampled_from(["stored", "possibly", "definitely"]), label="mode"
        )
        assert engine.window(t0, t1, box, mode) == brute_window(
            store, t0, t1, box, mode
        )
        assert engine.window(t0, t1) == brute_window(store, t0, t1)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_nearest(self, data):
        store = _build_store(data)
        engine = QueryEngine(store)
        when = data.draw(
            st.sampled_from(_adversarial_times(store, data)), label="when"
        )
        box = _query_box(store, data)  # reuse: targets on decoded points
        x, y = box.center
        k = data.draw(st.integers(1, len(store) + 1), label="k")
        answers = engine.nearest(x, y, when, k=k)
        expected = brute_nearest(store, x, y, when, k=k)
        assert [(a.object_id, a.distance_m) for a in answers] == expected
        for a in answers:
            position = store.get(a.object_id).position_at(when)
            assert (a.x, a.y) == (float(position[0]), float(position[1]))


class TestDuplicateEndpointTies:
    """Deterministic pin of the tie cases hypothesis shrinks toward."""

    def test_two_objects_sharing_every_point(self):
        t = np.array([0.0, 10.0, 20.0])
        xy = np.array([[0.0, 0.0], [50.0, 0.0], [50.0, 40.0]])
        store = TrajectoryStore(summary_partition_points=2)
        store.insert(Trajectory(t, xy, "b"))
        store.insert(Trajectory(t, xy, "a"))
        engine = QueryEngine(store)
        assert [(a.object_id, a.distance_m) for a in engine.nearest(
            0.0, 0.0, 10.0, k=2
        )] == brute_nearest(store, 0.0, 0.0, 10.0, k=2)
        box = BBox(50.0, 0.0, 50.0, 40.0)  # degenerate: an edge
        assert engine.window(0.0, 20.0, box) == brute_window(
            store, 0.0, 20.0, box
        )

    def test_query_exactly_on_a_partition_boundary_point(self):
        t = np.arange(0.0, 60.0, 10.0)
        xy = np.column_stack([t * 3.0, t * -2.0])
        store = TrajectoryStore(summary_partition_points=2)
        store.insert(Trajectory(t, xy, "edge"))
        engine = QueryEngine(store)
        decoded = store.get("edge")
        for when in decoded.t:  # every sample, incl. boundary rows
            answer = engine.position_at("edge", float(when))
            expected = decoded.position_at(float(when))
            assert (answer.x, answer.y) == (
                float(expected[0]), float(expected[1])
            )
