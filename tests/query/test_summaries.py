"""Partition summaries: conservativeness, footer round-trip, corruption.

The summaries are the pruning oracle of the query engine — a partition
whose quantized bounds miss the query must be provably unable to contain
an answer. These tests pin the two properties that make that sound
(outward quantization, bridge-point coverage) and the footer codec that
persists them bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CodecError, ReproError
from repro.storage.codec import decode_trajectory, encode_trajectory
from repro.query.summaries import (
    FOOTER_MAGIC,
    ObjectSummary,
    SummaryConfig,
    build_summary,
    encode_footer,
    parse_footer,
)
from repro.trajectory import Trajectory

from tests.conftest import trajectories


def _blob(traj: Trajectory) -> bytes:
    return encode_trajectory(traj)


def _sample_blob() -> bytes:
    """A deterministic multi-partition blob for hypothesis tests (which
    cannot take function-scoped fixtures)."""
    points = [
        (float(i * 10), float(i * 37 % 211), float(i * 53 % 173))
        for i in range(19)
    ]
    return _blob(Trajectory.from_points(points, object_id="z"))


@pytest.fixture
def config() -> SummaryConfig:
    return SummaryConfig(partition_points=4, grid_m=10.0, time_grid_s=1.0)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = SummaryConfig()
        assert config.partition_points == 64
        assert config.grid_m > 0 and config.time_grid_s > 0

    @pytest.mark.parametrize("points", [0, -1])
    def test_rejects_nonpositive_partition_points(self, points):
        with pytest.raises(ValueError, match="partition_points"):
            SummaryConfig(partition_points=points)

    @pytest.mark.parametrize(
        "kwargs", [{"grid_m": 0.0}, {"grid_m": -5.0}, {"time_grid_s": 0.0}]
    )
    def test_rejects_nonpositive_grids(self, kwargs):
        with pytest.raises(ValueError, match="grids must be positive"):
            SummaryConfig(**kwargs)


class TestBuildSummary:
    def test_partitions_cover_every_stored_point(self, zigzag, config):
        summary = build_summary("z", _blob(zigzag), config)
        assert summary.n_points == len(zigzag)
        assert sum(p.n_points for p in summary.partitions) == len(zigzag)
        expected_parts = -(-len(zigzag) // config.partition_points)
        assert len(summary.partitions) == expected_parts
        assert summary.partitions[0].prev is None
        assert all(p.prev is not None for p in summary.partitions[1:])

    def test_bounds_are_conservative_for_decoded_geometry(self, zigzag, config):
        blob = _blob(zigzag)
        decoded = decode_trajectory(blob)
        summary = build_summary("z", blob, config)
        assert summary.t_lo <= decoded.t[0]
        assert summary.t_hi >= decoded.t[-1]
        box = decoded.bbox()
        assert summary.bbox.min_x <= box.min_x
        assert summary.bbox.min_y <= box.min_y
        assert summary.bbox.max_x >= box.max_x
        assert summary.bbox.max_y >= box.max_y

    def test_each_partition_bounds_its_rows_and_bridge(self, zigzag, config):
        """Partition k covers its own rows plus the bridging point, so
        every inter-partition segment is bounded by exactly one box."""
        blob = _blob(zigzag)
        decoded = decode_trajectory(blob)
        summary = build_summary("z", blob, config)
        start = 0
        for index, part in enumerate(summary.partitions):
            lo = start - 1 if index else 0
            hi = start + part.n_points
            t = decoded.t[lo:hi]
            xy = decoded.xy[lo:hi]
            assert part.t_lo <= t[0] and part.t_hi >= t[-1]
            assert part.bbox.min_x <= xy[:, 0].min()
            assert part.bbox.max_x >= xy[:, 0].max()
            assert part.bbox.min_y <= xy[:, 1].min()
            assert part.bbox.max_y >= xy[:, 1].max()
            start = hi

    def test_bounds_lie_on_the_grid(self, zigzag, config):
        summary = build_summary("z", _blob(zigzag), config)
        for part in summary.partitions:
            for value in (part.t_lo, part.t_hi):
                assert value == round(value / config.time_grid_s) * config.time_grid_s
            for value in (
                part.bbox.min_x, part.bbox.min_y,
                part.bbox.max_x, part.bbox.max_y,
            ):
                assert value == round(value / config.grid_m) * config.grid_m

    @settings(max_examples=60, deadline=None)
    @given(traj=trajectories(min_points=1, max_points=30), data=st.data())
    def test_conservative_for_arbitrary_trajectories(self, traj, data):
        stride = data.draw(st.sampled_from([1, 2, 3, 7, 64]))
        config = SummaryConfig(stride, grid_m=5.0, time_grid_s=0.5)
        blob = _blob(traj.with_object_id("h"))
        decoded = decode_trajectory(blob)
        summary = build_summary("h", blob, config)
        assert summary.t_lo <= decoded.t[0] and summary.t_hi >= decoded.t[-1]
        box = decoded.bbox()
        assert summary.bbox.min_x <= box.min_x and summary.bbox.max_x >= box.max_x
        assert summary.bbox.min_y <= box.min_y and summary.bbox.max_y >= box.max_y
        assert sum(p.n_points for p in summary.partitions) == len(decoded)


class TestWireForm:
    def test_to_wire_carries_bounds_not_checkpoints(self, zigzag, config):
        summary = build_summary("z", _blob(zigzag), config)
        wire = summary.to_wire()
        assert wire["object"] == "z"
        assert wire["n_points"] == len(zigzag)
        assert len(wire["partitions"]) == len(summary.partitions)
        for part, entry in zip(summary.partitions, wire["partitions"]):
            assert entry == {
                "t0": part.t_lo,
                "t1": part.t_hi,
                "bbox": [
                    part.bbox.min_x, part.bbox.min_y,
                    part.bbox.max_x, part.bbox.max_y,
                ],
                "n": part.n_points,
            }
            # Checkpoint internals stay private to the store.
            assert "offset" not in entry and "prev" not in entry


class TestFooterCodec:
    def _summaries(self, dataset, config) -> dict[str, ObjectSummary]:
        return {
            traj.object_id: build_summary(traj.object_id, _blob(traj), config)
            for traj in dataset
        }

    def test_round_trip_is_bit_identical(self, small_dataset, config):
        summaries = self._summaries(small_dataset, config)
        footer = encode_footer(summaries, config)
        assert footer[:4] == FOOTER_MAGIC
        parsed_config, parsed, end = parse_footer(footer, 0)
        assert end == len(footer)
        assert parsed_config == config
        assert parsed == summaries  # frozen dataclasses: exact equality

    def test_round_trip_survives_a_prefix_offset(self, zigzag, config):
        summaries = {"z": build_summary("z", _blob(zigzag), config)}
        footer = encode_footer(summaries, config)
        data = b"\xde\xad\xbe\xef" + footer
        parsed_config, parsed, end = parse_footer(data, 4)
        assert parsed == summaries and parsed_config == config
        assert end == len(data)

    def test_empty_store_round_trips(self, config):
        footer = encode_footer({}, config)
        parsed_config, parsed, _ = parse_footer(footer, 0)
        assert parsed == {} and parsed_config == config

    def test_bad_magic_is_a_codec_error(self, config):
        footer = bytearray(encode_footer({}, config))
        footer[0] ^= 0xFF
        with pytest.raises(CodecError, match="bad magic"):
            parse_footer(bytes(footer), 0)

    def test_unknown_version_is_a_codec_error(self, config):
        footer = bytearray(encode_footer({}, config))
        footer[4] = 99
        with pytest.raises(CodecError, match="version"):
            parse_footer(bytes(footer), 0)

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_single_byte_corruption_fails_loudly(self, data):
        """Any flipped footer byte surfaces as a typed error or parses
        back to the identical summaries (flips in padding-free varint
        space can cancel only by reproducing the original value)."""
        config = SummaryConfig(partition_points=4, grid_m=10.0, time_grid_s=1.0)
        summaries = {"z": build_summary("z", _sample_blob(), config)}
        footer = bytearray(encode_footer(summaries, config))
        position = data.draw(st.integers(0, len(footer) - 1))
        footer[position] ^= data.draw(st.integers(1, 255))
        try:
            _, parsed, _ = parse_footer(bytes(footer), 0)
        except (ReproError, UnicodeDecodeError, OverflowError):
            return
        assert parsed == summaries

    def test_truncation_fails_loudly(self, zigzag, config):
        summaries = {"z": build_summary("z", _blob(zigzag), config)}
        footer = encode_footer(summaries, config)
        for cut in (3, 4, 5, 20, len(footer) - 5, len(footer) - 1):
            with pytest.raises(ReproError):
                parse_footer(footer[:cut], 0)

    def test_grid_multiples_reproduce_floats_exactly(self, zigzag):
        """The footer stores bounds as grid multiples; odd grids must
        still reproduce the in-memory floats bit-for-bit."""
        config = SummaryConfig(3, grid_m=0.3, time_grid_s=0.7)
        summaries = {"z": build_summary("z", _blob(zigzag), config)}
        _, parsed, _ = parse_footer(encode_footer(summaries, config), 0)
        original = summaries["z"]
        restored = parsed["z"]
        for a, b in zip(original.partitions, restored.partitions):
            assert (a.t_lo, a.t_hi) == (b.t_lo, b.t_hi)
            assert a.bbox == b.bbox

    def test_checkpoints_decode_the_exact_partition(self, zigzag, config):
        """The restart state round-tripped through the footer re-enters
        the delta chain at the same rows a fresh scan produces."""
        from repro.storage.codec import blob_layout, decode_partition

        blob = _blob(zigzag)
        summaries = {"z": build_summary("z", blob, config)}
        _, parsed, _ = parse_footer(encode_footer(summaries, config), 0)
        layout = blob_layout(blob)
        decoded = decode_trajectory(blob)
        start = 0
        for index, part in enumerate(parsed["z"].partitions):
            t, xy, _ = decode_partition(
                blob, layout, part.offset, part.n_points, part.prev
            )
            lo = start - 1 if index else 0
            hi = start + part.n_points
            np.testing.assert_array_equal(t, decoded.t[lo:hi])
            np.testing.assert_array_equal(xy, decoded.xy[lo:hi])
            start = hi
