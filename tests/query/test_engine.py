"""QueryEngine behaviour: exactness, errors, and pruning accounting.

Deterministic cases for the three verbs; the randomized equivalence
sweep lives in ``test_differential.py``. Stores use tiny partitions
(``summary_partition_points=4``) so every query crosses partition
boundaries — the interesting regime for pruning bugs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ObjectNotFoundError
from repro.geometry.bbox import BBox
from repro.obs import Registry
from repro.query.baseline import brute_nearest, brute_window
from repro.query.engine import QueryEngine
from repro.storage.store import TrajectoryStore
from repro.trajectory import Trajectory


def _line(object_id: str, t0: float, n: int, x0: float, y0: float,
          vx: float = 10.0, vy: float = 4.0, dt: float = 10.0) -> Trajectory:
    t = t0 + dt * np.arange(n, dtype=float)
    xy = np.column_stack([x0 + vx * (t - t0), y0 + vy * (t - t0)])
    return Trajectory(t, xy, object_id)


@pytest.fixture
def store(zigzag) -> TrajectoryStore:
    store = TrajectoryStore(summary_partition_points=4)
    store.insert(zigzag)
    store.insert(_line("east", 0.0, 13, 1000.0, 0.0, vx=12.0, vy=0.0))
    store.insert(_line("north", 50.0, 9, -500.0, -500.0, vx=0.0, vy=8.0))
    return store


@pytest.fixture
def engine(store) -> QueryEngine:
    return QueryEngine(store)


class TestPosition:
    def test_matches_full_decode_at_samples_and_midpoints(self, store, engine):
        for key in store.object_ids():
            decoded = store.get(key)
            queries = list(decoded.t) + [
                (a + b) / 2 for a, b in zip(decoded.t, decoded.t[1:])
            ]
            for when in queries:
                answer = engine.position_at(key, when)
                expected = decoded.position_at(when)
                # Bit-identical, not approximately equal: the engine runs
                # the same interpolation on the same decoded floats.
                assert (answer.x, answer.y) == (
                    float(expected[0]), float(expected[1])
                )
                assert answer.object_id == key and answer.t == when

    def test_endpoints_of_every_partition_are_exact(self, store, engine):
        """Times on partition boundaries are owned by exactly one
        partition; the answer must not depend on which box covers them."""
        key = "zigzag"
        decoded = store.get(key)
        stride = store.summary_config.partition_points
        for i in range(0, len(decoded), stride):
            when = float(decoded.t[i])
            expected = decoded.position_at(when)
            answer = engine.position_at(key, when)
            assert (answer.x, answer.y) == (float(expected[0]), float(expected[1]))

    def test_carries_the_record_error_bound(self, store, engine):
        answer = engine.position_at("east", 10.0)
        assert answer.error_bound_m == store.record("east").sync_error_bound_m

    def test_unknown_object_raises_not_found(self, engine):
        with pytest.raises(ObjectNotFoundError):
            engine.position_at("ghost", 0.0)

    def test_time_outside_interval_raises_value_error(self, store, engine):
        decoded = store.get("east")
        for when in (decoded.t[0] - 1.0, decoded.t[-1] + 1.0):
            with pytest.raises(ValueError, match="outside stored interval"):
                engine.position_at("east", when)


class TestWindow:
    def test_no_box_equals_interval_index(self, store, engine):
        assert engine.window(0.0, 60.0) == store.query_time_window(0.0, 60.0)
        assert engine.window(1e6, 2e6) == []

    def test_with_box_equals_brute_force(self, store, engine):
        box = BBox(400.0, -50.0, 600.0, 300.0)
        for mode in ("stored", "possibly", "definitely"):
            assert engine.window(0.0, 120.0, box, mode) == brute_window(
                store, 0.0, 120.0, box, mode
            )

    def test_window_restricts_the_box_answer(self, store, engine):
        # zigzag is inside this box only from t=40 onwards.
        box = BBox(450.0, -50.0, 520.0, 300.0)
        assert engine.window(0.0, 200.0, box) == ["zigzag"]
        assert engine.window(0.0, 30.0, box) == []

    def test_answers_are_sorted(self, engine):
        out = engine.window(0.0, 1e5, BBox(-1e4, -1e4, 1e4, 1e4))
        assert out == sorted(out)

    def test_empty_window_raises(self, engine):
        with pytest.raises(ValueError, match="empty time window"):
            engine.window(10.0, 5.0)

    def test_unknown_mode_raises(self, engine):
        with pytest.raises(ValueError, match="unknown query mode"):
            engine.window(0.0, 1.0, BBox(0, 0, 1, 1), mode="perhaps")


class TestNearest:
    def test_matches_brute_force_for_every_k(self, store, engine):
        for k in range(1, len(store) + 2):
            answers = engine.nearest(300.0, 50.0, 60.0, k=k)
            expected = brute_nearest(store, 300.0, 50.0, 60.0, k=k)
            assert [(a.object_id, a.distance_m) for a in answers] == expected

    def test_positions_match_the_decoded_interpolation(self, store, engine):
        (answer,) = engine.nearest(480.0, 90.0, 50.0, k=1)
        expected = store.get(answer.object_id).position_at(50.0)
        assert (answer.x, answer.y) == (float(expected[0]), float(expected[1]))

    def test_objects_not_covering_the_time_are_skipped(self, store, engine):
        # Only "east" and "zigzag" exist at t=10 ("north" starts at 50).
        answers = engine.nearest(0.0, 0.0, 10.0, k=5)
        assert sorted(a.object_id for a in answers) == ["east", "zigzag"]

    def test_exact_ties_break_by_object_id(self, zigzag):
        store = TrajectoryStore(summary_partition_points=4)
        store.insert(zigzag, object_id="twin-b")
        store.insert(zigzag, object_id="twin-a")
        engine = QueryEngine(store)
        answers = engine.nearest(1e4, 1e4, 90.0, k=2)
        assert [a.object_id for a in answers] == ["twin-a", "twin-b"]
        assert answers[0].distance_m == answers[1].distance_m

    def test_k_below_one_raises(self, engine):
        with pytest.raises(ValueError, match="k must be >= 1"):
            engine.nearest(0.0, 0.0, 0.0, k=0)


class TestInstrumentation:
    def test_position_query_decodes_a_strict_subset(self, store):
        registry = Registry()
        engine = QueryEngine(store, metrics=registry)
        engine.position_at("zigzag", 5.0)  # first partition only
        total = sum(len(store.record(k).blob) for k in store.object_ids())
        decoded = registry.counter("query_decoded_bytes").value
        assert 0 < decoded < total
        assert registry.counter("queries").value == 1
        assert registry.counter("queries_position").value == 1
        assert registry.counter("query_decoded_records").value == 1
        assert registry.counter("query_decoded_points").value > 0

    def test_prune_ratio_gauge_reflects_skipped_partitions(self, store):
        registry = Registry()
        engine = QueryEngine(store, metrics=registry)
        engine.position_at("zigzag", 5.0)
        ratio = registry.gauge("query_prune_ratio").value
        # zigzag has 19 points in 5 partitions; a time at the very start
        # needs exactly one of them.
        assert 0.0 < ratio < 1.0

    def test_each_verb_bumps_its_own_counter(self, store):
        registry = Registry()
        engine = QueryEngine(store, metrics=registry)
        engine.position_at("east", 10.0)
        engine.window(0.0, 100.0, BBox(-1e4, -1e4, 1e4, 1e4))
        engine.nearest(0.0, 0.0, 60.0, k=1)
        assert registry.counter("queries").value == 3
        for verb in ("position", "window", "nearest"):
            assert registry.counter(f"queries_{verb}").value == 1

    def test_timers_record_per_verb_latency(self, store):
        registry = Registry()
        engine = QueryEngine(store, metrics=registry)
        engine.position_at("east", 10.0)
        snapshot = registry.to_dict()
        assert "query.position.s" in snapshot["timers"]
