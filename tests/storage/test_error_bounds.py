"""Tests for known error margins in the store (paper objective 3).

"to obtain a data series with known, small margins of error" — the store
records each object's guaranteed synchronized bound and answers rectangle
queries under stored / possibly / definitely semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DouglasPeucker, OPWTR, TDTR
from repro.error import max_synchronized_error
from repro.geometry import BBox
from repro.storage import StreamIngestor, TrajectoryStore
from repro.streaming import StreamingOPW
from repro.trajectory import Trajectory


@pytest.fixture
def corridor() -> Trajectory:
    """Straight east run along y=0, 10 m/s."""
    t = np.arange(0.0, 110.0, 10.0)
    return Trajectory(t, np.column_stack([t * 10.0, np.zeros_like(t)]), "runner")


class TestRecordedBounds:
    def test_guaranteed_compressors_record_bound(self, corridor):
        store = TrajectoryStore(compressor=TDTR(epsilon=25.0))
        record = store.insert(corridor)
        assert record.sync_error_bound_m == pytest.approx(25.0, abs=0.1)

    def test_raw_insert_records_codec_slack_only(self, corridor):
        store = TrajectoryStore(coord_resolution_m=0.01)
        record = store.insert(corridor)
        assert record.sync_error_bound_m == pytest.approx(0.00707, abs=1e-3)

    def test_unguaranteed_compressor_records_none(self, corridor):
        store = TrajectoryStore(compressor=DouglasPeucker(epsilon=25.0))
        record = store.insert(corridor)
        assert record.sync_error_bound_m is None

    def test_explicit_none_override(self, corridor):
        store = TrajectoryStore()
        record = store.insert(corridor, sync_error_bound_m=None)
        assert record.sync_error_bound_m is None

    def test_explicit_numeric_override_gets_codec_slack(self, corridor):
        store = TrajectoryStore(coord_resolution_m=0.01)
        record = store.insert(corridor, sync_error_bound_m=12.0)
        assert record.sync_error_bound_m == pytest.approx(12.007, abs=1e-2)

    def test_bound_is_sound(self, urban_trajectory):
        """The recorded bound really does bound the stored-vs-raw error."""
        store = TrajectoryStore(compressor=OPWTR(epsilon=30.0))
        record = store.insert(urban_trajectory)
        stored = store.get(urban_trajectory.object_id)
        actual = max_synchronized_error(urban_trajectory, stored)
        assert actual <= record.sync_error_bound_m + 1e-6

    def test_ingestor_propagates_bound(self, corridor):
        store = TrajectoryStore()
        ingestor = StreamIngestor(
            store, compressor_factory=lambda: StreamingOPW(20.0, "synchronized")
        )
        for fix in corridor:
            ingestor.push("runner", fix)
        record = ingestor.finish("runner")
        assert record.sync_error_bound_m == pytest.approx(20.0, abs=0.1)

    def test_ingestor_perpendicular_criterion_gives_none(self, corridor):
        store = TrajectoryStore()
        ingestor = StreamIngestor(
            store, compressor_factory=lambda: StreamingOPW(20.0, "perpendicular")
        )
        for fix in corridor:
            ingestor.push("runner", fix)
        assert ingestor.finish("runner").sync_error_bound_m is None

    def test_bound_survives_save_load(self, corridor, tmp_path):
        store = TrajectoryStore(compressor=TDTR(epsilon=25.0))
        store.insert(corridor)
        store.insert(corridor.with_object_id("unbounded"), sync_error_bound_m=None)
        path = tmp_path / "bounds.store"
        store.save(path)
        loaded = TrajectoryStore.load(path)
        assert loaded.record("runner").sync_error_bound_m == pytest.approx(
            store.record("runner").sync_error_bound_m
        )
        assert loaded.record("unbounded").sync_error_bound_m is None


class TestQueryModes:
    @pytest.fixture
    def store(self, corridor) -> TrajectoryStore:
        store = TrajectoryStore()
        # Stored geometry is the corridor itself, with a declared 50 m
        # margin (as if heavily compressed upstream).
        store.insert(corridor, sync_error_bound_m=50.0)
        return store

    def test_possibly_includes_near_misses(self, store):
        # Box 30 m north of the stored line: stored-mode misses it, but
        # with a 50 m margin the true object may have been there.
        box = BBox(400.0, 20.0, 600.0, 40.0)
        assert store.query_bbox(box, mode="stored") == []
        assert store.query_bbox(box, mode="possibly") == ["runner"]

    def test_definitely_requires_deep_entry(self, store):
        # A box the stored line crosses 10 m inside: not enough margin to
        # certify; a much deeper box is.
        shallow = BBox(400.0, -60.0, 600.0, 10.0)
        deep = BBox(300.0, -110.0, 800.0, 110.0)
        assert store.query_bbox(shallow, mode="stored") == ["runner"]
        assert store.query_bbox(shallow, mode="definitely") == []
        assert store.query_bbox(deep, mode="definitely") == ["runner"]

    def test_definitely_never_certifies_unbounded_objects(self, corridor):
        store = TrajectoryStore()
        store.insert(corridor, sync_error_bound_m=None)
        box = BBox(-1000.0, -1000.0, 10_000.0, 1000.0)
        assert store.query_bbox(box, mode="stored") == ["runner"]
        assert store.query_bbox(box, mode="definitely") == []

    def test_mode_hierarchy(self, store):
        """definitely ⊆ stored ⊆ possibly for any box."""
        boxes = [
            BBox(0.0, -5.0, 1000.0, 5.0),
            BBox(400.0, 20.0, 600.0, 40.0),
            BBox(300.0, -200.0, 800.0, 200.0),
        ]
        for box in boxes:
            definite = set(store.query_bbox(box, mode="definitely"))
            stored = set(store.query_bbox(box, mode="stored"))
            possible = set(store.query_bbox(box, mode="possibly"))
            assert definite <= stored <= possible

    def test_unknown_mode_rejected(self, store):
        with pytest.raises(ValueError, match="mode"):
            store.query_bbox(BBox(0, 0, 1, 1), mode="perhaps")
