"""Tests for the streaming ingestor (stream -> online compression -> store)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OPWTR
from repro.exceptions import StorageError
from repro.storage import StreamIngestor, TrajectoryStore
from repro.streaming import StreamingOPW, merge_streams


@pytest.fixture
def store() -> TrajectoryStore:
    return TrajectoryStore()


@pytest.fixture
def ingestor(store) -> StreamIngestor:
    return StreamIngestor(
        store, compressor_factory=lambda: StreamingOPW(30.0, "synchronized")
    )


class TestStreamIngestor:
    def test_end_to_end_matches_batch(self, ingestor, store, small_dataset):
        feed = merge_streams({t.object_id: iter(t) for t in small_dataset})
        for object_id, fix in feed:
            ingestor.push(object_id, fix)
        records = ingestor.finish_all()
        assert len(records) == len(small_dataset)
        for traj in small_dataset:
            batch = OPWTR(epsilon=30.0).compress(traj)
            stored = store.get(traj.object_id)
            np.testing.assert_allclose(
                stored.t, traj.t[batch.indices], atol=1e-3
            )

    def test_raw_counts_accounted(self, ingestor, store, small_dataset):
        traj = small_dataset[0]
        for fix in traj:
            ingestor.push(traj.object_id, fix)
        record = ingestor.finish(traj.object_id)
        assert record.n_raw_points == len(traj)
        assert record.n_stored_points <= len(traj)
        assert store.stats().n_raw_points == len(traj)

    def test_active_objects_and_buffering(self, ingestor, small_dataset):
        traj = small_dataset[0]
        for fix in list(traj)[:10]:
            ingestor.push(traj.object_id, fix)
        assert ingestor.active_objects == [traj.object_id]
        assert ingestor.raw_count(traj.object_id) == 10
        assert 0 < ingestor.buffered_points(traj.object_id) <= 10

    def test_finish_unknown_raises(self, ingestor):
        with pytest.raises(StorageError, match="no active stream"):
            ingestor.finish("ghost")

    def test_push_requires_object_id(self, ingestor, small_dataset):
        with pytest.raises(StorageError, match="object id"):
            ingestor.push("", small_dataset[0].point(0))

    def test_finish_clears_state(self, ingestor, small_dataset):
        traj = small_dataset[0]
        for fix in traj:
            ingestor.push(traj.object_id, fix)
        ingestor.finish(traj.object_id)
        assert ingestor.active_objects == []
        with pytest.raises(StorageError):
            ingestor.finish(traj.object_id)

    def test_duplicate_flush_needs_replace(self, ingestor, store, small_dataset):
        traj = small_dataset[0]
        for fix in traj:
            ingestor.push(traj.object_id, fix)
        ingestor.finish(traj.object_id)
        for fix in traj:
            ingestor.push(traj.object_id, fix)
        with pytest.raises(StorageError, match="already stored"):
            ingestor.finish(traj.object_id)

    def test_insert_raw_count_validation(self, store, small_dataset):
        with pytest.raises(StorageError, match="raw_point_count"):
            store.insert(small_dataset[0], raw_point_count=1)


class TestNearestQuery:
    def test_nearest_at_time(self, store):
        from repro.trajectory import Trajectory

        a = Trajectory.from_points([(0, 0, 0), (100, 1000, 0)], "a")
        b = Trajectory.from_points([(0, 0, 500), (100, 1000, 500)], "b")
        store.insert(a)
        store.insert(b)
        hits = store.nearest(500.0, 100.0, when=50.0, k=2)
        assert [key for key, _ in hits] == ["a", "b"]
        assert hits[0][1] == pytest.approx(100.0)
        assert hits[1][1] == pytest.approx(400.0)

    def test_nearest_excludes_objects_outside_time(self, store):
        from repro.trajectory import Trajectory

        early = Trajectory.from_points([(0, 0, 0), (10, 100, 0)], "early")
        late = Trajectory.from_points([(100, 0, 0), (110, 100, 0)], "late")
        store.insert(early)
        store.insert(late)
        hits = store.nearest(0.0, 0.0, when=5.0, k=5)
        assert [key for key, _ in hits] == ["early"]

    def test_nearest_validation(self, store):
        with pytest.raises(ValueError):
            store.nearest(0.0, 0.0, when=0.0, k=0)
