"""Model-based (stateful) testing of the trajectory store.

A hypothesis :class:`RuleBasedStateMachine` drives random sequences of
inserts, replaces, appends and removes against both the real
:class:`~repro.storage.TrajectoryStore` and a trivially correct in-memory
oracle, then checks that every query the store answers agrees with the
oracle. This is the test that catches interaction bugs (index not
updated on replace, cache serving a removed object, ...) that scripted
unit tests miss.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.geometry import BBox
from repro.geometry.clip import segment_intersects_bbox
from repro.storage import TrajectoryStore
from repro.trajectory import Trajectory

OBJECT_IDS = [f"obj-{i}" for i in range(5)]


def make_trajectory(seed: int, start: float, n: int) -> Trajectory:
    rng = np.random.default_rng(seed)
    t = start + np.cumsum(rng.uniform(1.0, 20.0, size=n))
    xy = np.cumsum(rng.uniform(-80.0, 80.0, size=(n, 2)), axis=0)
    return Trajectory(t, xy)


def oracle_passes_through(traj: Trajectory, box: BBox) -> bool:
    if len(traj) == 1:
        return box.contains_point(float(traj.x[0]), float(traj.y[0]))
    return any(
        segment_intersects_bbox(traj.xy[i], traj.xy[i + 1], box)
        for i in range(len(traj) - 1)
    )


class StoreMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        # No ingest compressor: the oracle then holds exactly the stored
        # geometry (modulo codec quantization, which the coarse query
        # geometry below is insensitive to).
        self.store = TrajectoryStore(cache_size=2)
        self.oracle: dict[str, Trajectory] = {}
        self.counter = 0

    @rule(
        object_id=st.sampled_from(OBJECT_IDS),
        n=st.integers(2, 12),
        start=st.floats(0.0, 1_000.0),
    )
    def insert_or_replace(self, object_id: str, n: int, start: float) -> None:
        self.counter += 1
        traj = make_trajectory(self.counter, start, n)
        self.store.insert(traj, object_id=object_id, replace=True)
        self.oracle[object_id] = traj

    @precondition(lambda self: self.oracle)
    @rule(data=st.data(), n=st.integers(2, 8))
    def append(self, data, n: int) -> None:
        object_id = data.draw(st.sampled_from(sorted(self.oracle)))
        self.counter += 1
        old = self.oracle[object_id]
        continuation = make_trajectory(self.counter, old.end_time + 5.0, n)
        continuation = continuation.shifted(
            dx=float(old.xy[-1, 0]), dy=float(old.xy[-1, 1])
        )
        self.store.append(object_id, continuation)
        self.oracle[object_id] = Trajectory(
            np.concatenate([old.t, continuation.t]),
            np.concatenate([old.xy, continuation.xy]),
            object_id,
        )

    @precondition(lambda self: self.oracle)
    @rule(data=st.data())
    def remove(self, data) -> None:
        object_id = data.draw(st.sampled_from(sorted(self.oracle)))
        self.store.remove(object_id)
        del self.oracle[object_id]

    @precondition(lambda self: self.oracle)
    @rule(data=st.data())
    def check_get_roundtrip(self, data) -> None:
        object_id = data.draw(st.sampled_from(sorted(self.oracle)))
        stored = self.store.get(object_id)
        truth = self.oracle[object_id]
        assert len(stored) == len(truth)
        np.testing.assert_allclose(stored.t, truth.t, atol=1e-3)
        np.testing.assert_allclose(stored.xy, truth.xy, atol=1e-2)

    @rule(t0=st.floats(0.0, 1_500.0), span=st.floats(1.0, 500.0))
    def check_time_window(self, t0: float, span: float) -> None:
        t1 = t0 + span
        expected = sorted(
            key
            for key, traj in self.oracle.items()
            if traj.start_time <= t1 and traj.end_time >= t0
        )
        assert self.store.query_time_window(t0, t1) == expected

    @rule(
        cx=st.floats(-500.0, 500.0),
        cy=st.floats(-500.0, 500.0),
        half=st.floats(10.0, 400.0),
    )
    def check_bbox_query(self, cx: float, cy: float, half: float) -> None:
        box = BBox(cx - half, cy - half, cx + half, cy + half)
        expected = sorted(
            key
            for key, traj in self.oracle.items()
            if oracle_passes_through(traj, box)
        )
        assert self.store.query_bbox(box) == expected

    @invariant()
    def catalog_matches_oracle(self) -> None:
        assert self.store.object_ids() == sorted(self.oracle)
        assert len(self.store) == len(self.oracle)


StoreMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestStoreModel = StoreMachine.TestCase
