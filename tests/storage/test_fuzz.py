"""Failure injection: corrupted blobs and store files must fail loudly.

The codec and the store file format are the persistence boundary; a
corrupted byte must surface as a :class:`~repro.exceptions.CodecError` /
:class:`~repro.exceptions.StorageError` (or, at worst, decode into a
*valid* trajectory object) — never an unhandled crash or a silently
malformed Trajectory.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError, TrajectoryError
from repro.storage import TrajectoryStore, decode_trajectory, encode_trajectory
from repro.trajectory import Trajectory


@pytest.fixture(scope="module")
def blob() -> bytes:
    traj = Trajectory.from_points(
        [(float(i * 10), float(i * 37 % 211), float(i * 53 % 173)) for i in range(40)],
        object_id="fuzz-source",
    )
    return encode_trajectory(traj)


class TestCodecFuzz:
    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_single_byte_corruption_never_crashes(self, blob, data):
        position = data.draw(st.integers(0, len(blob) - 1))
        new_byte = data.draw(st.integers(0, 255))
        corrupted = bytearray(blob)
        corrupted[position] = new_byte
        try:
            decoded = decode_trajectory(bytes(corrupted))
        except ReproError:
            return  # loud, typed failure: exactly what we want
        except (UnicodeDecodeError, OverflowError):
            return  # id bytes / quantized values hit: acceptable, typed
        # If decoding "succeeded", the result must be a valid trajectory.
        assert len(decoded) >= 1
        assert np.all(np.isfinite(decoded.t))
        assert np.all(np.isfinite(decoded.xy))
        if len(decoded) > 1:
            assert np.all(np.diff(decoded.t) > 0)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 200))
    def test_truncation_never_crashes(self, blob, cut):
        truncated = blob[: min(cut, len(blob) - 1)]
        with pytest.raises((ReproError, UnicodeDecodeError)):
            decode_trajectory(truncated)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=64))
    def test_random_bytes_never_crash(self, junk):
        with pytest.raises(ReproError):
            decode_trajectory(junk)


class TestStoreFileFuzz:
    @pytest.fixture(scope="class")
    def store_file(self, tmp_path_factory, small_dataset):
        store = TrajectoryStore()
        for traj in small_dataset:
            store.insert(traj)
        path = tmp_path_factory.mktemp("fuzz") / "fuzz.store"
        store.save(path)
        return path

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_flipped_byte_fails_loudly_or_loads_valid(self, store_file, data):
        raw = bytearray(store_file.read_bytes())
        position = data.draw(st.integers(0, len(raw) - 1))
        raw[position] ^= data.draw(st.integers(1, 255))
        mutated = store_file.with_suffix(".mut")
        mutated.write_bytes(bytes(raw))
        try:
            store = TrajectoryStore.load(mutated)
        except (ReproError, UnicodeDecodeError, OverflowError, TrajectoryError):
            return
        for key in store.object_ids():
            traj = store.get(key)
            assert np.all(np.isfinite(traj.t))
            assert np.all(np.isfinite(traj.xy))
