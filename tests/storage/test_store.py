"""Tests for the compressing TrajectoryStore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OPWTR, TDTR
from repro.exceptions import ObjectNotFoundError, StorageError
from repro.geometry import BBox
from repro.storage import TrajectoryStore
from repro.trajectory import Trajectory


@pytest.fixture
def store(small_dataset) -> TrajectoryStore:
    store = TrajectoryStore(compressor=OPWTR(epsilon=30.0))
    for traj in small_dataset:
        store.insert(traj)
    return store


class TestIngest:
    def test_insert_compresses(self, store, small_dataset):
        for traj in small_dataset:
            record = store.record(traj.object_id)
            assert record.n_stored_points <= record.n_raw_points
            assert record.n_raw_points == len(traj)

    def test_requires_object_id(self):
        anonymous = Trajectory.from_points([(0, 0, 0), (1, 1, 1)])
        with pytest.raises(StorageError, match="no object id"):
            TrajectoryStore().insert(anonymous)
        TrajectoryStore().insert(anonymous, object_id="named")  # ok

    def test_duplicate_id_rejected_without_replace(self, store, small_dataset):
        with pytest.raises(StorageError, match="already stored"):
            store.insert(small_dataset[0])
        store.insert(small_dataset[0], replace=True)  # ok

    def test_insert_without_compressor_stores_raw(self, small_dataset):
        store = TrajectoryStore(compressor=None)
        record = store.insert(small_dataset[0])
        assert record.n_stored_points == record.n_raw_points

    def test_per_insert_compressor_override(self, small_dataset):
        store = TrajectoryStore(compressor=None)
        record = store.insert(small_dataset[0], compressor=TDTR(epsilon=50.0))
        assert record.n_stored_points < record.n_raw_points

    def test_remove(self, store, small_dataset):
        victim = small_dataset[0].object_id
        store.remove(victim)
        assert victim not in store
        with pytest.raises(ObjectNotFoundError):
            store.remove(victim)


class TestRetrieval:
    def test_get_is_decoded_compression(self, store, small_dataset):
        traj = small_dataset[0]
        stored = store.get(traj.object_id)
        assert len(stored) == store.record(traj.object_id).n_stored_points
        assert stored.start_time == pytest.approx(traj.start_time, abs=1e-3)
        assert stored.end_time == pytest.approx(traj.end_time, abs=1e-3)

    def test_get_unknown_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get("ghost")

    def test_cache_returns_same_object(self, store, small_dataset):
        key = small_dataset[0].object_id
        assert store.get(key) is store.get(key)

    def test_position_at_close_to_original(self, store, small_dataset):
        """The reconstruction error respects the compression threshold
        (plus codec quantum)."""
        traj = small_dataset[0]
        for when in np.linspace(traj.start_time, traj.end_time, 17):
            original = traj.position_at(float(when))
            restored = store.position_at(traj.object_id, float(when))
            assert float(np.hypot(*(original - restored))) <= 30.0 + 0.1

    def test_object_ids_sorted(self, store, small_dataset):
        assert store.object_ids() == sorted(t.object_id for t in small_dataset)

    def test_len_and_contains(self, store, small_dataset):
        assert len(store) == len(small_dataset)
        assert small_dataset[1].object_id in store


class TestQueries:
    def test_time_window(self, small_dataset):
        store = TrajectoryStore()
        a = small_dataset[0].with_object_id("early")
        b = small_dataset[1].shifted(dt=1e6).with_object_id("late")
        store.insert(a)
        store.insert(b)
        assert store.query_time_window(a.start_time, a.end_time) == ["early"]
        assert store.query_time_window(b.start_time, b.end_time) == ["late"]
        assert store.query_time_window(a.start_time, b.end_time) == ["early", "late"]

    def test_time_window_rejects_reversed(self, store):
        with pytest.raises(ValueError):
            store.query_time_window(10.0, 0.0)

    def test_bbox_query_finds_passing_trajectory(self, store, small_dataset):
        traj = small_dataset[0]
        mid = traj.xy[len(traj) // 2]
        box = BBox(mid[0] - 100, mid[1] - 100, mid[0] + 100, mid[1] + 100)
        assert traj.object_id in store.query_bbox(box)

    def test_bbox_query_excludes_far_region(self, store):
        assert store.query_bbox(BBox(1e7, 1e7, 1e7 + 10, 1e7 + 10)) == []

    def test_bbox_with_time_window(self, small_dataset):
        store = TrajectoryStore()
        traj = small_dataset[0].with_object_id("timed")
        store.insert(traj)
        mid = traj.xy[len(traj) // 2]
        box = BBox(mid[0] - 100, mid[1] - 100, mid[0] + 100, mid[1] + 100)
        # Query a window long before the trajectory: no match.
        assert store.query_bbox(box, traj.start_time - 1e6, traj.start_time - 1e5) == []
        assert store.query_bbox(box, traj.start_time, traj.end_time) == ["timed"]

    def test_bbox_time_args_validation(self, store):
        with pytest.raises(ValueError, match="both"):
            store.query_bbox(BBox(0, 0, 1, 1), t0=0.0)

    def test_bbox_catches_pass_through_without_samples(self):
        """A fast object crossing the box between samples is still found
        (segment clipping, not point membership)."""
        store = TrajectoryStore()
        traj = Trajectory.from_points(
            [(0, -1000, 5), (10, 1000, 5)], )
        store.insert(traj, object_id="crosser")
        assert store.query_bbox(BBox(-10, 0, 10, 10)) == ["crosser"]


class TestAccountingAndPersistence:
    def test_stats(self, store, small_dataset):
        stats = store.stats()
        assert stats.n_objects == len(small_dataset)
        assert stats.n_raw_points == sum(len(t) for t in small_dataset)
        assert 0.0 < stats.point_compression_percent < 100.0
        assert stats.byte_compression_ratio > 2.0

    def test_empty_store_stats(self):
        stats = TrajectoryStore().stats()
        assert stats.n_objects == 0
        assert stats.point_compression_percent == 0.0

    def test_save_load_roundtrip(self, store, tmp_path, small_dataset):
        path = tmp_path / "fleet.store"
        store.save(path)
        loaded = TrajectoryStore.load(path)
        assert loaded.object_ids() == store.object_ids()
        for key in store.object_ids():
            assert loaded.get(key) == store.get(key)
            assert loaded.record(key).n_raw_points == store.record(key).n_raw_points

    def test_loaded_store_answers_queries(self, store, tmp_path, small_dataset):
        path = tmp_path / "fleet.store"
        store.save(path)
        loaded = TrajectoryStore.load(path)
        traj = small_dataset[0]
        mid = traj.xy[len(traj) // 2]
        box = BBox(mid[0] - 100, mid[1] - 100, mid[0] + 100, mid[1] + 100)
        assert traj.object_id in loaded.query_bbox(box)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_bytes(b"not a store at all")
        with pytest.raises(StorageError):
            TrajectoryStore.load(path)

    def test_load_rejects_truncated(self, store, tmp_path):
        path = tmp_path / "fleet.store"
        store.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        with pytest.raises(StorageError, match="truncated"):
            TrajectoryStore.load(path)
