"""Durability tests: checksummed store files and codec blobs.

These test the promise in ISSUE terms: a bit flipped anywhere in a
stored record is *detected* at load — never silently decoded into wrong
coordinates — and ``verify="skip"`` turns detection into quarantine
(healthy records load, failures are recorded) instead of a hard stop.
"""

from __future__ import annotations

import struct

import pytest

from repro.core import TDTR
from repro.exceptions import CorruptRecordError, StorageError
from repro.io_util import crc32
from repro.storage.codec import decode_trajectory, encode_trajectory
from repro.storage.store import TrajectoryStore


@pytest.fixture
def store_path(tmp_path, small_dataset):
    store = TrajectoryStore(compressor=TDTR(epsilon=25.0))
    for traj in small_dataset:
        store.insert(traj)
    path = tmp_path / "fleet.rsto"
    store.save(path)
    return path


def _flip_bit(data: bytes, offset: int) -> bytes:
    mutated = bytearray(data)
    mutated[offset] ^= 0x40
    return bytes(mutated)


class TestStoreBitFlips:
    def test_round_trip_clean(self, store_path, small_dataset):
        store = TrajectoryStore.load(store_path)
        assert sorted(store.object_ids()) == sorted(
            t.object_id for t in small_dataset
        )
        assert store.load_failures == []

    @pytest.mark.parametrize("relative_offset", [0.3, 0.5, 0.8])
    def test_flip_detected_under_raise(self, store_path, relative_offset):
        data = store_path.read_bytes()
        store_path.write_bytes(_flip_bit(data, int(len(data) * relative_offset)))
        with pytest.raises((CorruptRecordError, StorageError)):
            TrajectoryStore.load(store_path)

    def test_flip_quarantined_under_skip(self, store_path, small_dataset):
        data = store_path.read_bytes()
        # Flip a bit inside the *middle* record's payload region.
        store_path.write_bytes(_flip_bit(data, len(data) // 2))
        store = TrajectoryStore.load(store_path, verify="skip")
        assert len(store.load_failures) == 1
        assert len(store.object_ids()) == len(small_dataset) - 1

    def test_never_silently_wrong(self, store_path, small_dataset):
        """Every single-bit flip either loads the original data exactly
        or is reported — no flip may produce silently different
        coordinates."""
        clean_store = TrajectoryStore.load(store_path)
        clean = {oid: clean_store.get(oid) for oid in clean_store.object_ids()}
        data = store_path.read_bytes()
        step = max(1, len(data) // 23)  # sample offsets across the file
        for offset in range(9, len(data), step):
            store_path.write_bytes(_flip_bit(data, offset))
            try:
                store = TrajectoryStore.load(store_path, verify="skip")
            except StorageError:
                continue  # detected at the file level: fine
            assert store.load_failures, f"flip at byte {offset} undetected"
            for object_id in store.object_ids():
                surviving = store.get(object_id)
                original = clean[object_id]
                assert (surviving.t == original.t).all()
                assert (surviving.xy == original.xy).all()


class TestStoreTruncation:
    def test_truncation_raises(self, store_path):
        data = store_path.read_bytes()
        store_path.write_bytes(data[: len(data) - len(data) // 3])
        with pytest.raises(StorageError, match="truncated"):
            TrajectoryStore.load(store_path)

    def test_truncation_skip_keeps_prefix(self, store_path):
        data = store_path.read_bytes()
        store_path.write_bytes(data[: len(data) - 5])
        store = TrajectoryStore.load(store_path, verify="skip")
        assert any("truncated" in failure for failure in store.load_failures)

    def test_trailing_garbage_raises(self, store_path):
        store_path.write_bytes(store_path.read_bytes() + b"junk")
        with pytest.raises(StorageError, match="trailing"):
            TrajectoryStore.load(store_path)

    def test_invalid_verify_mode(self, store_path):
        with pytest.raises(ValueError, match="verify"):
            TrajectoryStore.load(store_path, verify="maybe")


class TestLegacyFormats:
    def test_version2_store_file_still_loads(self, tmp_path, small_dataset):
        """A v2 file (no record CRCs) built by hand must still load."""
        out = bytearray(b"RSTO")
        records = []
        for traj in small_dataset:
            blob = encode_trajectory(traj)
            records.append(
                struct.pack("<IdI", len(traj), float("nan"), len(blob)) + blob
            )
        out += struct.pack("<BI", 2, len(records))
        for framed in records:
            out += framed
        path = tmp_path / "legacy.rsto"
        path.write_bytes(bytes(out))
        store = TrajectoryStore.load(path)
        assert sorted(store.object_ids()) == sorted(
            t.object_id for t in small_dataset
        )

    def test_version1_codec_blob_still_decodes(self, small_dataset):
        """A v1 blob (current blob minus CRC trailer, version byte
        patched) must decode: pre-CRC archives stay readable."""
        traj = small_dataset[0]
        blob = bytearray(encode_trajectory(traj)[:-4])
        blob[4] = 1
        decoded = decode_trajectory(bytes(blob))
        assert decoded.object_id == traj.object_id
        assert len(decoded) == len(traj)

    def test_codec_bit_flip_detected(self, small_dataset):
        blob = encode_trajectory(small_dataset[0])
        mutated = bytearray(blob)
        mutated[len(blob) // 2] ^= 0x01
        with pytest.raises(CorruptRecordError, match="checksum"):
            decode_trajectory(bytes(mutated))

    def test_codec_verify_skip_mode(self, small_dataset):
        """Forensic mode: verify=False decodes despite a bad checksum."""
        blob = bytearray(encode_trajectory(small_dataset[0]))
        blob[-1] ^= 0xFF  # damage the CRC trailer itself
        with pytest.raises(CorruptRecordError):
            decode_trajectory(bytes(blob))
        decoded = decode_trajectory(bytes(blob), verify=False)
        assert decoded.object_id == small_dataset[0].object_id


class TestAtomicSave:
    def test_save_leaves_no_temp_files(self, tmp_path, small_dataset):
        store = TrajectoryStore()
        for traj in small_dataset:
            store.insert(traj)
        store.save(tmp_path / "fleet.rsto")
        assert [p.name for p in tmp_path.iterdir()] == ["fleet.rsto"]

    def test_save_replaces_previous_file(self, tmp_path, small_dataset):
        path = tmp_path / "fleet.rsto"
        small = TrajectoryStore()
        small.insert(small_dataset[0])
        small.save(path)
        full = TrajectoryStore()
        for traj in small_dataset:
            full.insert(traj)
        full.save(path)
        assert len(TrajectoryStore.load(path).object_ids()) == len(small_dataset)
