"""Hypothesis property tests for the store's secondary indexes.

Both indexes are checked against a trivially correct linear scan under
hypothesis-generated *mutation sequences* — insert, overwrite, remove,
query interleaved freely — so the consistency obligations that only show
up after mutation (the :class:`IntervalIndex`'s lazy dirty-rebuild, the
:class:`GridIndex`'s cell unregistration) are exercised on every path,
not just on a freshly built index.

Contracts verified:

* ``IntervalIndex.overlapping`` returns **exactly** the brute-force
  answer (it is an exact index);
* ``GridIndex.candidates`` returns a **superset** of the brute-force
  answer (it is a conservative filter: false positives allowed, false
  negatives never), drawn only from currently registered ids.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BBox
from repro.geometry.clip import segment_intersects_bbox
from repro.storage.index import GridIndex
from repro.storage.interval_index import IntervalIndex

KEYS = [f"obj-{i}" for i in range(6)]

finite = dict(allow_nan=False, allow_infinity=False)


# --------------------------------------------------------------------- #
# IntervalIndex
# --------------------------------------------------------------------- #

interval_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.sampled_from(KEYS),
            st.floats(0.0, 100.0, **finite),
            st.floats(0.0, 100.0, **finite),
        ),
        st.tuples(st.just("remove"), st.sampled_from(KEYS)),
        st.tuples(
            st.just("query"),
            st.floats(-10.0, 110.0, **finite),
            st.floats(0.0, 60.0, **finite),
        ),
    ),
    min_size=1,
    max_size=40,
)


class TestIntervalIndexProperties:
    @settings(max_examples=120, deadline=None)
    @given(interval_ops)
    def test_mutation_sequences_match_linear_scan(self, ops):
        index = IntervalIndex()
        truth: dict[str, tuple[float, float]] = {}
        for op in ops:
            if op[0] == "insert":
                _, key, a, b = op
                lo, hi = min(a, b), max(a, b)
                index.insert(key, lo, hi)
                truth[key] = (lo, hi)
            elif op[0] == "remove":
                index.remove(op[1])
                truth.pop(op[1], None)
            else:
                _, t0, span = op
                t1 = t0 + span
                expected = sorted(
                    key for key, (lo, hi) in truth.items()
                    if lo <= t1 and hi >= t0
                )
                assert index.overlapping(t0, t1) == expected
        # Terminal query: every sequence ends re-checking the dirty path.
        assert index.overlapping(-10.0, 110.0) == sorted(truth)
        assert len(index) == len(truth)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(0.0, 100.0, **finite),
        st.floats(0.0, 100.0, **finite),
        st.floats(0.0, 100.0, **finite),
    )
    def test_reinsert_replaces_old_interval(self, a, b, probe):
        """An overwritten interval must answer with its *new* extent."""
        index = IntervalIndex()
        index.insert("x", 0.0, 200.0)
        assert index.covering(probe) == ["x"]  # query, then mutate
        lo, hi = min(a, b), max(a, b)
        index.insert("x", lo, hi)
        assert index.covering(probe) == (["x"] if lo <= probe <= hi else [])


# --------------------------------------------------------------------- #
# GridIndex
# --------------------------------------------------------------------- #

points = st.lists(
    st.tuples(
        st.floats(-2000.0, 2000.0, **finite),
        st.floats(-2000.0, 2000.0, **finite),
    ),
    min_size=1,
    max_size=8,
)

grid_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.sampled_from(KEYS), points),
        st.tuples(st.just("remove"), st.sampled_from(KEYS)),
        st.tuples(
            st.just("query"),
            st.floats(-2500.0, 2500.0, **finite),
            st.floats(-2500.0, 2500.0, **finite),
            st.floats(0.0, 1500.0, **finite),
            st.floats(0.0, 1500.0, **finite),
        ),
    ),
    min_size=1,
    max_size=25,
)


def truly_intersects(xy: np.ndarray, box: BBox) -> bool:
    """Brute-force ground truth: does the polyline touch the box?"""
    if xy.shape[0] == 1:
        return box.contains_point(float(xy[0, 0]), float(xy[0, 1]))
    return any(
        segment_intersects_bbox(xy[i], xy[i + 1], box)
        for i in range(xy.shape[0] - 1)
    )


class TestGridIndexProperties:
    @settings(max_examples=120, deadline=None)
    @given(grid_ops)
    def test_mutation_sequences_never_lose_candidates(self, ops):
        index = GridIndex(cell_size_m=400.0)
        truth: dict[str, np.ndarray] = {}
        for op in ops:
            if op[0] == "insert":
                _, key, pts = op
                xy = np.asarray(pts, dtype=float)
                index.insert(key, xy)
                truth[key] = xy
            elif op[0] == "remove":
                index.remove(op[1])
                truth.pop(op[1], None)
            else:
                _, x0, y0, w, h = op
                box = BBox(x0, y0, x0 + w, y0 + h)
                candidates = index.candidates(box)
                expected = {
                    key for key, xy in truth.items()
                    if truly_intersects(xy, box)
                }
                assert expected <= candidates  # no false negatives, ever
                assert candidates <= set(truth)  # only live ids
        # Terminal full-extent query: every registered id is a candidate.
        everything = BBox(-3000.0, -3000.0, 3000.0, 3000.0)
        assert index.candidates(everything) == set(truth)
        assert len(index) == len(truth)

    @settings(max_examples=60, deadline=None)
    @given(points, points)
    def test_reinsert_replaces_old_geometry(self, old_pts, new_pts):
        """Re-registering an id forgets the old polyline's cells."""
        index = GridIndex(cell_size_m=400.0)
        index.insert("x", np.asarray(old_pts, dtype=float))
        new_xy = np.asarray(new_pts, dtype=float)
        index.insert("x", new_xy)
        reference = GridIndex(cell_size_m=400.0)
        reference.insert("x", new_xy)
        assert index._object_cells["x"] == reference._object_cells["x"]
        assert index.n_cells == reference.n_cells

    def test_remove_leaves_no_empty_buckets(self):
        index = GridIndex(cell_size_m=100.0)
        index.insert("a", np.array([[0.0, 0.0], [950.0, 0.0]]))
        index.insert("b", np.array([[0.0, 0.0], [0.0, 950.0]]))
        index.remove("a")
        assert index.candidates(BBox(500.0, -50.0, 900.0, 50.0)) == set()
        index.remove("b")
        assert index.n_cells == 0

    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size_m=0.0)
