"""Catalog/index consistency across every mutation path.

``TrajectoryStore.query_bbox`` looks candidate ids up in the catalog
*unguarded* — a grid-index entry pointing at a removed or replaced
record would be a KeyError in the read path. Historically that branch
was an untested ``except KeyError: continue``, which would have silently
hidden exactly that invariant break. These are the regression tests the
store's comment points at: after any sequence of insert / append /
adopt_record / remove, the spatial and interval indexes contain exactly
the cataloged ids, and a query over an object's *former* location
neither crashes nor resurrects it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ObjectNotFoundError
from repro.geometry.bbox import BBox
from repro.storage.store import TrajectoryStore
from repro.trajectory import Trajectory

# Covers every trajectory these tests create; kept small because the
# grid index enumerates each cell the query box overlaps.
EVERYWHERE = BBox(-5_000.0, -5_000.0, 70_000.0, 70_000.0)


def _store() -> TrajectoryStore:
    """Coarse cells keep the EVERYWHERE sweep a few dozen lookups."""
    return TrajectoryStore(cell_size_m=10_000.0)


def _traj(object_id: str, t0: float, origin: float) -> Trajectory:
    t = t0 + 10.0 * np.arange(6, dtype=float)
    xy = np.column_stack([origin + (t - t0) * 3.0, origin + (t - t0) * 2.0])
    return Trajectory(t, xy, object_id)


def _assert_consistent(store: TrajectoryStore) -> None:
    cataloged = set(store.object_ids())
    assert store.spatial_candidates(EVERYWHERE) == cataloged
    assert set(store.query_time_window(-1e12, 1e12)) == cataloged
    # The read path the invariant protects: no KeyError, ever.
    assert set(store.query_bbox(EVERYWHERE)) <= cataloged


class TestMutationPaths:
    def test_remove_leaves_no_stale_entries(self):
        store = _store()
        store.insert(_traj("a", 0.0, 0.0))
        store.insert(_traj("b", 0.0, 5000.0))
        store.remove("a")
        _assert_consistent(store)
        # Querying a's former neighbourhood must not crash or return it.
        assert store.query_bbox(BBox(-100.0, -100.0, 200.0, 200.0)) == []

    def test_replace_relocates_the_index_entry(self):
        store = _store()
        store.insert(_traj("mover", 0.0, 0.0))
        store.insert(_traj("mover", 0.0, 50_000.0), replace=True)
        _assert_consistent(store)
        old_home = BBox(-100.0, -100.0, 300.0, 300.0)
        new_home = BBox(49_900.0, 49_900.0, 50_300.0, 50_300.0)
        assert store.query_bbox(old_home) == []
        assert store.query_bbox(new_home) == ["mover"]

    def test_adopt_record_replace_relocates_the_index_entry(self):
        donor = _store()
        donor.insert(_traj("mover", 0.0, 50_000.0))
        store = _store()
        store.insert(_traj("mover", 0.0, 0.0))
        store.adopt_record(donor.record("mover"), replace=True)
        _assert_consistent(store)
        assert store.query_bbox(BBox(-100.0, -100.0, 300.0, 300.0)) == []
        assert store.query_bbox(
            BBox(49_900.0, 49_900.0, 50_300.0, 50_300.0)
        ) == ["mover"]
        # The summary was rebuilt from the adopted blob, not kept stale.
        assert store.summary("mover").bbox.min_x >= 49_000.0

    def test_append_extends_both_indexes(self):
        store = _store()
        store.insert(_traj("grow", 0.0, 0.0))
        store.append("grow", _traj("grow", 1000.0, 20_000.0))
        _assert_consistent(store)
        assert store.query_bbox(
            BBox(19_900.0, 19_900.0, 20_300.0, 20_300.0)
        ) == ["grow"]
        assert store.query_time_window(1000.0, 1001.0) == ["grow"]

    def test_merge_from_with_replace(self):
        store = _store()
        store.insert(_traj("shared", 0.0, 0.0))
        store.insert(_traj("mine", 0.0, 1000.0))
        other = _store()
        other.insert(_traj("shared", 0.0, 60_000.0))
        other.insert(_traj("theirs", 0.0, 2000.0))
        store.merge_from(other, replace=True)
        _assert_consistent(store)
        assert store.query_bbox(BBox(-100.0, -100.0, 300.0, 300.0)) == []

    def test_remove_unknown_id_raises_and_changes_nothing(self):
        store = _store()
        store.insert(_traj("only", 0.0, 0.0))
        with pytest.raises(ObjectNotFoundError):
            store.remove("ghost")
        _assert_consistent(store)

    def test_query_after_full_churn_is_clean(self):
        store = _store()
        for i in range(5):
            store.insert(_traj(f"o{i}", 0.0, i * 10_000.0))
        for i in range(5):
            store.remove(f"o{i}")
        _assert_consistent(store)
        assert store.query_bbox(EVERYWHERE) == []
        assert len(store) == 0


class TestRandomizedChurn:
    @settings(max_examples=40, deadline=None)
    @given(steps=st.lists(
        st.tuples(
            st.sampled_from(["insert", "replace", "remove", "adopt"]),
            st.sampled_from(["a", "b", "c"]),
            st.integers(0, 8),
        ),
        min_size=1,
        max_size=12,
    ))
    def test_any_mutation_sequence_keeps_indexes_exact(self, steps):
        store = _store()
        for action, key, cell in steps:
            origin = cell * 7_500.0
            if action == "insert":
                if key not in store:
                    store.insert(_traj(key, 0.0, origin))
            elif action == "replace":
                store.insert(_traj(key, 0.0, origin), replace=True)
            elif action == "adopt":
                donor = _store()
                donor.insert(_traj(key, 0.0, origin))
                store.adopt_record(donor.record(key), replace=True)
            elif key in store:
                store.remove(key)
            _assert_consistent(store)
