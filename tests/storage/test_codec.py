"""Tests for the delta/varint trajectory codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CodecError
from repro.storage import (
    decode_trajectory,
    decode_varint,
    encode_trajectory,
    encode_varint,
    raw_size_bytes,
    unzigzag,
    zigzag,
)
from repro.trajectory import Trajectory

from tests.conftest import trajectories


class TestZigzagVarint:
    @pytest.mark.parametrize(
        "value,expected", [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)]
    )
    def test_zigzag_known_values(self, value, expected):
        assert zigzag(value) == expected
        assert unzigzag(expected) == value

    @given(st.integers(-(2**62), 2**62))
    def test_zigzag_roundtrip(self, value):
        assert unzigzag(zigzag(value)) == value

    @given(st.integers(0, 2**63))
    def test_varint_roundtrip(self, value):
        out = bytearray()
        encode_varint(value, out)
        decoded, offset = decode_varint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_varint_small_values_one_byte(self):
        out = bytearray()
        encode_varint(100, out)
        assert len(out) == 1

    def test_varint_rejects_negative(self):
        with pytest.raises(CodecError):
            encode_varint(-1, bytearray())

    def test_truncated_varint(self):
        with pytest.raises(CodecError, match="truncated"):
            decode_varint(b"\x80", 0)


class TestTrajectoryCodec:
    def test_roundtrip_within_quantum(self, zigzag: Trajectory):
        blob = encode_trajectory(zigzag)
        back = decode_trajectory(blob)
        assert back.object_id == "zigzag"
        assert len(back) == len(zigzag)
        np.testing.assert_allclose(back.t, zigzag.t, atol=0.5e-3)
        np.testing.assert_allclose(back.xy, zigzag.xy, atol=0.5e-2)

    def test_compression_beats_raw(self, urban_trajectory):
        blob = encode_trajectory(urban_trajectory)
        assert len(blob) < raw_size_bytes(len(urban_trajectory)) / 2

    def test_single_point(self):
        traj = Trajectory.from_points([(12.5, 3.25, -7.75)], object_id="p")
        back = decode_trajectory(encode_trajectory(traj))
        assert len(back) == 1
        np.testing.assert_allclose(back.t, [12.5], atol=1e-3)

    def test_missing_object_id_roundtrips_as_none(self):
        traj = Trajectory.from_points([(0, 0, 0), (1, 1, 1)])
        assert decode_trajectory(encode_trajectory(traj)).object_id is None

    def test_rejects_timestamps_below_quantum(self):
        traj = Trajectory.from_points([(0, 0, 0), (1e-6, 1, 1)])
        with pytest.raises(CodecError, match="quantum"):
            encode_trajectory(traj)

    def test_custom_resolutions(self, zigzag: Trajectory):
        blob = encode_trajectory(zigzag, time_resolution_s=1.0, coord_resolution_m=1.0)
        back = decode_trajectory(blob)
        np.testing.assert_allclose(back.t, zigzag.t, atol=0.5)
        np.testing.assert_allclose(back.xy, zigzag.xy, atol=0.5)

    def test_rejects_bad_resolution(self, zigzag: Trajectory):
        with pytest.raises(CodecError):
            encode_trajectory(zigzag, time_resolution_s=0.0)

    def test_rejects_bad_magic(self):
        with pytest.raises(CodecError, match="magic"):
            decode_trajectory(b"NOPE\x01\x00")

    def test_rejects_bad_version(self, zigzag: Trajectory):
        blob = bytearray(encode_trajectory(zigzag))
        blob[4] = 99
        with pytest.raises(CodecError, match="version"):
            decode_trajectory(bytes(blob))

    def test_rejects_trailing_garbage(self, zigzag: Trajectory):
        blob = encode_trajectory(zigzag) + b"\x00\x00"
        with pytest.raises(CodecError, match="trailing"):
            decode_trajectory(blob)

    def test_rejects_truncation(self, zigzag: Trajectory):
        blob = encode_trajectory(zigzag)
        with pytest.raises(CodecError):
            decode_trajectory(blob[: len(blob) // 2])

    @settings(max_examples=40, deadline=None)
    @given(trajectories(min_points=1, max_points=40))
    def test_property_roundtrip_bounded_error(self, traj):
        blob = encode_trajectory(traj)
        back = decode_trajectory(blob)
        assert len(back) == len(traj)
        np.testing.assert_allclose(back.t, traj.t, atol=0.51e-3)
        np.testing.assert_allclose(back.xy, traj.xy, atol=0.51e-2)
