"""Tests for the ingestor's out-of-order / duplicate-fix guard."""

from __future__ import annotations

import pytest

from repro.exceptions import StreamError
from repro.storage import StreamIngestor, TrajectoryStore
from repro.streaming import StreamingOPW
from repro.types import Fix


@pytest.fixture
def ingestor() -> StreamIngestor:
    return StreamIngestor(
        TrajectoryStore(),
        compressor_factory=lambda: StreamingOPW(30.0, "synchronized"),
    )


def _skipping_ingestor() -> StreamIngestor:
    return StreamIngestor(
        TrajectoryStore(),
        compressor_factory=lambda: StreamingOPW(30.0, "synchronized"),
        on_out_of_order="skip",
    )


class TestOutOfOrderGuard:
    def test_monotone_fixes_accepted(self, ingestor):
        for i in range(5):
            ingestor.push("car", Fix(float(i), float(i * 10), 0.0))
        assert ingestor.raw_count("car") == 5

    def test_stale_fix_raises_by_default(self, ingestor):
        ingestor.push("car", Fix(10.0, 0.0, 0.0))
        with pytest.raises(StreamError, match="out-of-order"):
            ingestor.push("car", Fix(9.0, 5.0, 0.0))

    def test_duplicate_timestamp_raises_by_default(self, ingestor):
        ingestor.push("car", Fix(10.0, 0.0, 0.0))
        with pytest.raises(StreamError, match="not after"):
            ingestor.push("car", Fix(10.0, 5.0, 0.0))

    def test_error_message_names_the_skip_policy(self, ingestor):
        ingestor.push("car", Fix(10.0, 0.0, 0.0))
        with pytest.raises(StreamError, match="on_out_of_order='skip'"):
            ingestor.push("car", Fix(1.0, 0.0, 0.0))

    def test_guard_is_per_object(self, ingestor):
        ingestor.push("car", Fix(100.0, 0.0, 0.0))
        # A different object may be far behind in time.
        ingestor.push("bus", Fix(1.0, 0.0, 0.0))
        assert ingestor.raw_count("bus") == 1

    def test_rejected_fix_does_not_poison_state(self, ingestor):
        ingestor.push("car", Fix(10.0, 0.0, 0.0))
        with pytest.raises(StreamError):
            ingestor.push("car", Fix(5.0, 0.0, 0.0))
        ingestor.push("car", Fix(11.0, 1.0, 0.0))  # the stream continues
        assert ingestor.raw_count("car") == 2

    def test_invalid_policy_rejected(self):
        with pytest.raises(StreamError, match="on_out_of_order"):
            StreamIngestor(TrajectoryStore(), on_out_of_order="explode")


class TestSkipPolicy:
    def test_skip_drops_and_counts(self):
        ingestor = _skipping_ingestor()
        ingestor.push("car", Fix(10.0, 0.0, 0.0))
        assert ingestor.push("car", Fix(9.0, 1.0, 0.0)) == 0
        assert ingestor.push("car", Fix(10.0, 2.0, 0.0)) == 0
        ingestor.push("car", Fix(11.0, 3.0, 0.0))
        assert ingestor.dropped_count("car") == 2
        assert ingestor.raw_count("car") == 2  # dropped fixes not counted

    def test_finish_clears_order_state(self):
        ingestor = _skipping_ingestor()
        for i in range(3):
            ingestor.push("car", Fix(float(10 + i), float(i), 0.0))
        ingestor.push("car", Fix(1.0, 0.0, 0.0))  # dropped
        ingestor.finish("car")
        assert ingestor.dropped_count("car") == 0
        # After finish, the id restarts from scratch: old times are fine.
        assert ingestor.push("car", Fix(1.0, 0.0, 0.0)) >= 0
        assert ingestor.raw_count("car") == 1

    def test_flushed_trajectory_is_strictly_increasing(self):
        ingestor = _skipping_ingestor()
        for t in [0.0, 10.0, 5.0, 20.0, 20.0, 30.0, 29.0, 40.0]:
            ingestor.push("car", Fix(t, t * 3.0, -t))
        record = ingestor.finish("car")
        assert record.n_raw_points == 5  # three fixes dropped
        traj = ingestor.store.get("car")
        assert (traj.t[1:] > traj.t[:-1]).all()
