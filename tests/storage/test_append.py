"""Tests for appending continuations to stored trajectories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TDTR
from repro.exceptions import ObjectNotFoundError, StorageError
from repro.geometry import BBox
from repro.storage import TrajectoryStore
from repro.trajectory import Trajectory


def leg(t0: float, x0: float, n: int = 10, v: float = 10.0) -> Trajectory:
    t = t0 + np.arange(n) * 10.0
    x = x0 + (t - t0) * v
    return Trajectory(t, np.column_stack([x, np.zeros_like(x)]), "commuter")


class TestAppend:
    def test_extends_interval_and_counts(self):
        store = TrajectoryStore(compressor=TDTR(epsilon=20.0))
        morning = leg(0.0, 0.0)
        evening = leg(10_000.0, 2_000.0)
        store.insert(morning)
        record = store.append("commuter", evening)
        assert record.start_time == pytest.approx(morning.start_time, abs=1e-3)
        assert record.end_time == pytest.approx(evening.end_time, abs=1e-3)
        assert record.n_raw_points == len(morning) + len(evening)

    def test_prefix_points_untouched(self):
        store = TrajectoryStore(compressor=TDTR(epsilon=20.0))
        store.insert(leg(0.0, 0.0))
        before = store.get("commuter")
        store.append("commuter", leg(10_000.0, 2_000.0))
        after = store.get("commuter")
        np.testing.assert_allclose(after.t[: len(before)], before.t, atol=1e-3)

    def test_position_queries_span_both_legs(self):
        store = TrajectoryStore()
        store.insert(leg(0.0, 0.0))
        store.append("commuter", leg(10_000.0, 2_000.0))
        early = store.position_at("commuter", 45.0)
        late = store.position_at("commuter", 10_045.0)
        np.testing.assert_allclose(early, [450.0, 0.0], atol=0.1)
        np.testing.assert_allclose(late, [2_450.0, 0.0], atol=0.1)

    def test_bbox_query_sees_new_region(self):
        store = TrajectoryStore()
        store.insert(leg(0.0, 0.0))
        far_box = BBox(2_400.0, -10.0, 2_500.0, 10.0)
        assert store.query_bbox(far_box) == []
        store.append("commuter", leg(10_000.0, 2_000.0))
        assert store.query_bbox(far_box) == ["commuter"]

    def test_overlapping_continuation_rejected(self):
        store = TrajectoryStore()
        store.insert(leg(0.0, 0.0))
        with pytest.raises(StorageError, match="stored through"):
            store.append("commuter", leg(50.0, 0.0))

    def test_unknown_object_rejected(self):
        with pytest.raises(ObjectNotFoundError):
            TrajectoryStore().append("ghost", leg(0.0, 0.0))

    def test_bound_widened_to_worst_leg(self):
        store = TrajectoryStore(compressor=TDTR(epsilon=20.0))
        store.insert(leg(0.0, 0.0))
        record = store.append("commuter", leg(10_000.0, 2_000.0), compressor=TDTR(epsilon=60.0))
        assert record.sync_error_bound_m == pytest.approx(60.0, abs=0.1)

    def test_bound_none_is_sticky(self):
        store = TrajectoryStore()
        store.insert(leg(0.0, 0.0), sync_error_bound_m=None)
        record = store.append("commuter", leg(10_000.0, 2_000.0))
        assert record.sync_error_bound_m is None

    def test_survives_save_load(self, tmp_path):
        store = TrajectoryStore(compressor=TDTR(epsilon=20.0))
        store.insert(leg(0.0, 0.0))
        store.append("commuter", leg(10_000.0, 2_000.0))
        path = tmp_path / "appended.store"
        store.save(path)
        loaded = TrajectoryStore.load(path)
        assert loaded.get("commuter") == store.get("commuter")
        assert loaded.record("commuter").n_raw_points == store.record(
            "commuter"
        ).n_raw_points
