"""Tests for the endpoint interval index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.interval_index import IntervalIndex


class TestIntervalIndex:
    @pytest.fixture
    def index(self) -> IntervalIndex:
        idx = IntervalIndex()
        idx.insert("a", 0.0, 10.0)
        idx.insert("b", 5.0, 15.0)
        idx.insert("c", 20.0, 30.0)
        return idx

    def test_overlapping_basic(self, index):
        assert index.overlapping(0.0, 4.0) == ["a"]
        assert index.overlapping(6.0, 7.0) == ["a", "b"]
        assert index.overlapping(12.0, 25.0) == ["b", "c"]
        assert index.overlapping(16.0, 19.0) == []
        assert index.overlapping(-10.0, 100.0) == ["a", "b", "c"]

    def test_closed_interval_boundaries(self, index):
        assert index.overlapping(10.0, 10.0) == ["a", "b"]
        assert index.overlapping(30.0, 31.0) == ["c"]

    def test_covering(self, index):
        assert index.covering(7.0) == ["a", "b"]
        assert index.covering(17.0) == []

    def test_reinsert_replaces(self, index):
        index.insert("a", 100.0, 110.0)
        assert index.overlapping(0.0, 4.0) == []
        assert index.overlapping(100.0, 105.0) == ["a"]

    def test_remove(self, index):
        index.remove("b")
        assert index.overlapping(6.0, 7.0) == ["a"]
        index.remove("ghost")  # no-op
        assert len(index) == 2
        assert "a" in index and "b" not in index

    def test_point_interval(self):
        idx = IntervalIndex()
        idx.insert("p", 5.0, 5.0)
        assert idx.covering(5.0) == ["p"]
        assert idx.overlapping(5.0, 9.0) == ["p"]
        assert idx.overlapping(5.1, 9.0) == []

    def test_validation(self, index):
        with pytest.raises(ValueError):
            index.insert("x", 10.0, 5.0)
        with pytest.raises(ValueError):
            index.overlapping(10.0, 5.0)

    def test_empty_index(self):
        assert IntervalIndex().overlapping(0.0, 1.0) == []

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=0,
            max_size=25,
        ),
        st.floats(-10, 110),
        st.floats(0, 60),
    )
    def test_matches_naive_scan(self, intervals, t0, span):
        """The index answers exactly like a brute-force scan."""
        idx = IntervalIndex()
        truth: dict[str, tuple[float, float]] = {}
        for k, (a, b) in enumerate(intervals):
            lo, hi = min(a, b), max(a, b)
            key = f"i{k}"
            idx.insert(key, lo, hi)
            truth[key] = (lo, hi)
        t1 = t0 + span
        expected = sorted(
            key for key, (lo, hi) in truth.items() if lo <= t1 and hi >= t0
        )
        assert idx.overlapping(t0, t1) == expected

    def test_lazy_rebuild_amortized(self):
        """Interleaved mutations and queries stay consistent."""
        rng = np.random.default_rng(3)
        idx = IntervalIndex()
        truth: dict[str, tuple[float, float]] = {}
        for step in range(200):
            op = rng.integers(0, 3)
            key = f"k{rng.integers(0, 20)}"
            if op == 0:
                a, b = sorted(rng.uniform(0, 100, size=2))
                idx.insert(key, float(a), float(b))
                truth[key] = (float(a), float(b))
            elif op == 1 and truth:
                idx.remove(key)
                truth.pop(key, None)
            else:
                t0, t1 = sorted(rng.uniform(0, 100, size=2))
                expected = sorted(
                    k for k, (lo, hi) in truth.items() if lo <= t1 and hi >= t0
                )
                assert idx.overlapping(float(t0), float(t1)) == expected
