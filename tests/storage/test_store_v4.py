"""Store file version 4: the summary footer and v2/v3 back-compat.

Version 4 appends an ``RSUM`` footer (partition summaries + their
config) after the record region. These tests pin the compatibility
contract: v4 round-trips summaries bit-identically, older files still
load (summaries rebuild lazily from blobs, yielding the same values),
and a damaged footer never takes the records down with it.
"""

from __future__ import annotations

import struct

import pytest

from repro.exceptions import StorageError
from repro.io_util import crc32
from repro.query.summaries import FOOTER_MAGIC, SummaryConfig, encode_footer
from repro.storage.store import TrajectoryStore


def _make_store(small_dataset, **kwargs) -> TrajectoryStore:
    store = TrajectoryStore(summary_partition_points=8, **kwargs)
    for traj in small_dataset:
        store.insert(traj)
    return store


def _downgrade(data: bytes, version: int) -> bytes:
    """Rewrite a saved v4 file as an older version: patch the header
    byte and drop the footer (and, for v2, each record's CRC trailer)."""
    footer = _footer_start(data)
    out = bytearray()
    out += data[:4]
    _, count = struct.unpack_from("<BI", data, 4)
    out += struct.pack("<BI", version, count)
    offset = 9
    for _ in range(count):
        n_raw, bound, blob_len = struct.unpack_from("<IdI", data, offset)
        record = data[offset : offset + 16 + blob_len]
        offset += 16 + blob_len
        out += record
        if version >= 3:
            out += data[offset : offset + 4]  # keep the record CRC
        offset += 4
    assert offset == footer, "record region must end where the footer starts"
    return bytes(out)


def _footer_start(data: bytes) -> int:
    index = data.rfind(FOOTER_MAGIC)
    assert index > 0, "saved v4 file must contain a summary footer"
    return index


class TestV4RoundTrip:
    def test_summaries_round_trip_bit_identically(self, small_dataset, tmp_path):
        store = _make_store(small_dataset)
        path = tmp_path / "v4.rsto"
        store.save(path)
        loaded = TrajectoryStore.load(path)
        assert loaded.summary_config == store.summary_config
        assert loaded.object_ids() == store.object_ids()
        for key in store.object_ids():
            # Frozen dataclasses all the way down: exact equality means
            # the footer reproduced every float bit-for-bit.
            assert loaded.summary(key) == store.summary(key)
            assert loaded.get(key) == store.get(key)

    def test_load_adopts_the_file_summary_config(self, small_dataset, tmp_path):
        store = _make_store(small_dataset, summary_grid_m=7.5,
                            summary_time_grid_s=2.0)
        path = tmp_path / "tuned.rsto"
        store.save(path)
        loaded = TrajectoryStore.load(path)  # constructor defaults differ
        assert loaded.summary_config == SummaryConfig(8, 7.5, 2.0)

    def test_empty_store_round_trips(self, tmp_path):
        path = tmp_path / "empty.rsto"
        TrajectoryStore().save(path)
        assert TrajectoryStore.load(path).object_ids() == []

    def test_file_carries_exactly_one_footer(self, small_dataset, tmp_path):
        store = _make_store(small_dataset)
        path = tmp_path / "v4.rsto"
        store.save(path)
        data = path.read_bytes()
        expected = encode_footer(
            {key: store.summary(key) for key in store.object_ids()},
            store.summary_config,
        )
        assert data.endswith(expected)


class TestBackCompat:
    @pytest.mark.parametrize("version", [2, 3])
    def test_older_files_load_with_lazy_summaries(
        self, small_dataset, tmp_path, version
    ):
        store = _make_store(small_dataset)
        modern = tmp_path / "v4.rsto"
        store.save(modern)
        legacy = tmp_path / f"v{version}.rsto"
        legacy.write_bytes(_downgrade(modern.read_bytes(), version))
        loaded = TrajectoryStore.load(legacy, summary_partition_points=8)
        assert loaded.object_ids() == store.object_ids()
        for key in store.object_ids():
            assert loaded.get(key) == store.get(key)
            # No footer: the summary is rebuilt lazily from the blob and
            # must match what insert-time summarization produced.
            assert loaded.summary(key) == store.summary(key)

    def test_v4_without_footer_loads(self, small_dataset, tmp_path):
        """A v4 writer that died between records and footer still left a
        loadable file (the footer is optional on read)."""
        store = _make_store(small_dataset)
        path = tmp_path / "v4.rsto"
        store.save(path)
        data = path.read_bytes()
        bare = tmp_path / "bare.rsto"
        bare.write_bytes(data[: _footer_start(data)])
        loaded = TrajectoryStore.load(bare)
        assert loaded.object_ids() == store.object_ids()

    def test_unsupported_version_is_rejected(self, small_dataset, tmp_path):
        store = _make_store(small_dataset)
        path = tmp_path / "v4.rsto"
        store.save(path)
        data = bytearray(path.read_bytes())
        data[4] = 5
        bad = tmp_path / "v5.rsto"
        bad.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="unsupported store version"):
            TrajectoryStore.load(bad)


class TestFooterDamage:
    @pytest.fixture
    def saved(self, small_dataset, tmp_path):
        store = _make_store(small_dataset)
        path = tmp_path / "v4.rsto"
        store.save(path)
        return store, path, path.read_bytes()

    def _flip(self, tmp_path, data: bytes, position: int):
        mutated = bytearray(data)
        mutated[position] ^= 0x5A
        path = tmp_path / "flipped.rsto"
        path.write_bytes(bytes(mutated))
        return path

    def test_flipped_footer_byte_raises_by_default(self, saved, tmp_path):
        _, _, data = saved
        path = self._flip(tmp_path, data, _footer_start(data) + 30)
        with pytest.raises(StorageError, match="summary footer"):
            TrajectoryStore.load(path)

    def test_flipped_footer_crc_raises_by_default(self, saved, tmp_path):
        _, _, data = saved
        path = self._flip(tmp_path, data, len(data) - 2)
        with pytest.raises(StorageError, match="summary footer"):
            TrajectoryStore.load(path)

    def test_skip_quarantines_the_footer_and_keeps_records(
        self, saved, tmp_path
    ):
        store, _, data = saved
        path = self._flip(tmp_path, data, _footer_start(data) + 30)
        loaded = TrajectoryStore.load(
            path, verify="skip", summary_partition_points=8
        )
        assert loaded.object_ids() == store.object_ids()
        assert any("summary footer" in reason for reason in loaded.load_failures)
        for key in store.object_ids():
            assert loaded.get(key) == store.get(key)
            # Quarantined footer -> lazy rebuild under the constructor
            # config, same values as insert-time summarization.
            assert loaded.summary(key) == store.summary(key)

    def test_trailing_garbage_after_footer_is_rejected(self, saved, tmp_path):
        _, _, data = saved
        path = tmp_path / "trailing.rsto"
        path.write_bytes(data + b"junk")
        with pytest.raises(StorageError):
            TrajectoryStore.load(path)

    def test_record_damage_is_independent_of_the_footer(self, saved, tmp_path):
        """A corrupt record under ``verify="skip"`` is dropped while the
        footer still loads — and summaries of dropped records are not
        resurrected from it."""
        store, _, data = saved
        mutated = bytearray(data)
        # Flip a byte inside the first record's blob region.
        mutated[9 + 16 + 4] ^= 0xFF
        path = tmp_path / "record-flip.rsto"
        path.write_bytes(bytes(mutated))
        loaded = TrajectoryStore.load(path, verify="skip")
        assert len(loaded.load_failures) == 1
        survivors = loaded.object_ids()
        assert len(survivors) == len(store.object_ids()) - 1
        for key in survivors:
            assert loaded.summary(key) == store.summary(key)


class TestFooterQuarantineDefaultConfig:
    def test_loaded_summaries_never_outlive_their_records(
        self, small_dataset, tmp_path
    ):
        """The footer may describe ids the record region no longer has
        (hand-edited or partially recovered files); load must drop them
        rather than serve summaries of phantom objects."""
        store = _make_store(small_dataset)
        partial = TrajectoryStore(summary_partition_points=8)
        partial.insert(small_dataset[0])
        # Build the file by hand: one record + a footer naming all three.
        path = tmp_path / "one.rsto"
        partial.save(path)
        data = path.read_bytes()
        body = data[: data.rfind(FOOTER_MAGIC)]
        footer = encode_footer(
            {key: store.summary(key) for key in store.object_ids()},
            store.summary_config,
        )
        crafted = tmp_path / "phantom.rsto"
        crafted.write_bytes(body + footer)
        loaded = TrajectoryStore.load(crafted)
        assert loaded.object_ids() == [small_dataset[0].object_id]
        assert set(loaded._summaries) <= set(loaded.object_ids())


def test_v3_crc_still_verified(small_dataset, tmp_path):
    """Downgraded (v3) files keep per-record CRCs; a flip is detected."""
    store = _make_store(small_dataset)
    modern = tmp_path / "v4.rsto"
    store.save(modern)
    data = bytearray(_downgrade(modern.read_bytes(), 3))
    data[9 + 16 + 4] ^= 0xFF
    # Re-check: the stored record CRC must now mismatch.
    legacy = tmp_path / "v3-flip.rsto"
    legacy.write_bytes(bytes(data))
    with pytest.raises(Exception) as err:
        TrajectoryStore.load(legacy)
    assert "checksum" in str(err.value)


def test_crc32_helper_matches_zlib():
    import zlib

    assert crc32(b"repro") == zlib.crc32(b"repro") & 0xFFFFFFFF
