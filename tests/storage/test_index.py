"""Tests for the grid spatial index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import BBox
from repro.storage import GridIndex


class TestGridIndex:
    def test_insert_and_candidates(self):
        index = GridIndex(cell_size_m=100.0)
        index.insert("a", np.array([[10.0, 10.0], [50.0, 50.0]]))
        index.insert("b", np.array([[1000.0, 1000.0], [1100.0, 1000.0]]))
        assert index.candidates(BBox(0, 0, 60, 60)) == {"a"}
        assert index.candidates(BBox(900, 900, 1200, 1100)) == {"b"}
        assert index.candidates(BBox(0, 0, 2000, 2000)) == {"a", "b"}

    def test_candidates_is_superset_of_truth(self):
        """Grid candidates may be false positives but never miss."""
        rng = np.random.default_rng(3)
        index = GridIndex(cell_size_m=50.0)
        polylines = {}
        for i in range(20):
            xy = rng.uniform(0, 1000, size=(10, 2))
            polylines[f"t{i}"] = xy
            index.insert(f"t{i}", xy)
        box = BBox(200, 200, 500, 500)
        candidates = index.candidates(box)
        for name, xy in polylines.items():
            has_point_inside = any(box.contains_point(x, y) for x, y in xy)
            if has_point_inside:
                assert name in candidates

    def test_single_point_object(self):
        index = GridIndex(100.0)
        index.insert("p", np.array([[55.0, 250.0]]))
        assert index.candidates(BBox(0, 200, 100, 300)) == {"p"}
        assert index.candidates(BBox(0, 0, 40, 40)) == set()

    def test_remove(self):
        index = GridIndex(100.0)
        index.insert("a", np.array([[10.0, 10.0], [20.0, 20.0]]))
        assert "a" in index
        index.remove("a")
        assert "a" not in index
        assert index.candidates(BBox(0, 0, 100, 100)) == set()
        assert index.n_cells == 0

    def test_remove_unknown_is_noop(self):
        GridIndex(100.0).remove("ghost")

    def test_reinsert_replaces(self):
        index = GridIndex(100.0)
        index.insert("a", np.array([[10.0, 10.0], [20.0, 20.0]]))
        index.insert("a", np.array([[910.0, 910.0], [920.0, 920.0]]))
        assert index.candidates(BBox(0, 0, 100, 100)) == set()
        assert index.candidates(BBox(900, 900, 1000, 1000)) == {"a"}
        assert len(index) == 1

    def test_negative_coordinates(self):
        index = GridIndex(100.0)
        index.insert("n", np.array([[-250.0, -50.0], [-150.0, -60.0]]))
        assert index.candidates(BBox(-300, -100, -100, 0)) == {"n"}

    def test_long_segment_spans_many_cells(self):
        index = GridIndex(100.0)
        index.insert("long", np.array([[0.0, 50.0], [1000.0, 50.0]]))
        # A query in the middle of the segment must still find it.
        assert index.candidates(BBox(480, 0, 520, 100)) == {"long"}

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)
