"""Tests for repro.geometry.distance."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry import (
    euclidean,
    euclidean_many,
    haversine,
    perpendicular_distance,
    perpendicular_distances,
    point_segment_distance,
    point_segment_distances,
)

from tests.conftest import vectors2


class TestEuclidean:
    def test_pythagorean_triple(self):
        assert euclidean([0, 0], [3, 4]) == 5.0

    def test_zero_distance(self):
        assert euclidean([2.5, -1.0], [2.5, -1.0]) == 0.0

    def test_many_matches_scalar(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0], [-3.0, 2.0]])
        b = np.array([[3.0, 4.0], [1.0, 1.0], [0.0, -2.0]])
        many = euclidean_many(a, b)
        for i in range(3):
            assert many[i] == pytest.approx(euclidean(a[i], b[i]))

    def test_many_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal shapes"):
            euclidean_many(np.zeros((3, 2)), np.zeros((2, 2)))

    @given(vectors2(), vectors2())
    def test_symmetry(self, p, q):
        assert euclidean(p, q) == pytest.approx(euclidean(q, p))

    @given(vectors2(), vectors2(), vectors2())
    def test_triangle_inequality(self, a, b, c):
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9


class TestHaversine:
    def test_zero(self):
        assert haversine(5.0, 52.0, 5.0, 52.0) == 0.0

    def test_one_degree_latitude(self):
        # One degree of latitude is about 111.2 km anywhere.
        d = haversine(6.0, 52.0, 6.0, 53.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_longitude_shrinks_with_latitude(self):
        at_equator = haversine(0.0, 0.0, 1.0, 0.0)
        at_52n = haversine(0.0, 52.0, 1.0, 52.0)
        assert at_52n == pytest.approx(at_equator * math.cos(math.radians(52)), rel=0.01)

    def test_antipodal_is_half_circumference(self):
        d = haversine(0.0, 0.0, 180.0, 0.0)
        assert d == pytest.approx(math.pi * 6_371_008.8, rel=1e-6)


class TestPerpendicularDistance:
    def test_point_above_horizontal_line(self):
        assert perpendicular_distance([5, 3], [0, 0], [10, 0]) == pytest.approx(3.0)

    def test_point_beyond_segment_still_uses_line(self):
        # Perpendicular distance is to the infinite line, not the segment.
        assert perpendicular_distance([20, 4], [0, 0], [10, 0]) == pytest.approx(4.0)

    def test_degenerate_chord_falls_back_to_point_distance(self):
        assert perpendicular_distance([3, 4], [0, 0], [0, 0]) == pytest.approx(5.0)

    def test_vectorized_matches_scalar(self):
        pts = np.array([[1.0, 2.0], [5.0, -3.0], [9.0, 0.5]])
        a, b = np.array([0.0, 0.0]), np.array([10.0, 10.0])
        batch = perpendicular_distances(pts, a, b)
        for i, p in enumerate(pts):
            assert batch[i] == pytest.approx(perpendicular_distance(p, a, b))

    @given(vectors2(), vectors2(), vectors2())
    def test_nonnegative(self, p, a, b):
        assert perpendicular_distance(p, a, b) >= 0.0

    @given(vectors2(), vectors2())
    def test_point_on_line_is_zero(self, a, b):
        midpoint = (a + b) / 2.0
        assert perpendicular_distance(midpoint, a, b) == pytest.approx(0.0, abs=1e-6)


class TestPointSegmentDistance:
    def test_interior_projection_equals_perpendicular(self):
        assert point_segment_distance([5, 3], [0, 0], [10, 0]) == pytest.approx(3.0)

    def test_beyond_end_measures_to_endpoint(self):
        assert point_segment_distance([13, 4], [0, 0], [10, 0]) == pytest.approx(5.0)

    def test_before_start_measures_to_start(self):
        assert point_segment_distance([-3, 4], [0, 0], [10, 0]) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        assert point_segment_distance([3, 4], [1, 1], [1, 1]) == pytest.approx(
            math.hypot(2, 3)
        )

    def test_vectorized_matches_scalar(self):
        pts = np.array([[-5.0, 1.0], [5.0, 5.0], [15.0, -2.0]])
        a, b = np.array([0.0, 0.0]), np.array([10.0, 0.0])
        batch = point_segment_distances(pts, a, b)
        for i, p in enumerate(pts):
            assert batch[i] == pytest.approx(point_segment_distance(p, a, b))

    @given(vectors2(), vectors2(), vectors2())
    def test_segment_distance_at_least_line_distance(self, p, a, b):
        seg = point_segment_distance(p, a, b)
        line = perpendicular_distance(p, a, b)
        assert seg >= line - 1e-9


@given(
    st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)), min_size=1, max_size=8),
    vectors2(100.0),
    vectors2(100.0),
)
def test_perpendicular_invariant_under_translation(points, a, b):
    """Distances are translation invariant (for non-degenerate chords)."""
    assume(float(np.hypot(*(b - a))) > 1e-6)
    pts = np.asarray(points, dtype=float)
    shift = np.array([37.5, -12.25])
    d1 = perpendicular_distances(pts, a, b)
    d2 = perpendicular_distances(pts + shift, a + shift, b + shift)
    np.testing.assert_allclose(d1, d2, atol=1e-8)
