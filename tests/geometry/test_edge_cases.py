"""Edge-case tests for geometry branches not covered elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import (
    BBox,
    time_ratio_positions,
)
from repro.geometry.clip import clip_segment_to_bbox


class TestTimeRatioPositionsEdges:
    def test_zero_duration_chord_vectorized(self):
        """A zero-extent chord broadcasts the start position."""
        out = time_ratio_positions(
            5.0, np.array([1.0, 2.0]), 5.0, np.array([9.0, 9.0]), np.array([5.0, 5.0])
        )
        np.testing.assert_allclose(out, [[1.0, 2.0], [1.0, 2.0]])

    def test_empty_times(self):
        out = time_ratio_positions(
            0.0, np.array([0.0, 0.0]), 1.0, np.array([1.0, 1.0]), np.array([])
        )
        assert out.shape == (0, 2)


class TestClipDegenerateAxes:
    def test_axis_parallel_inside_band(self):
        box = BBox(0, 0, 10, 10)
        # Horizontal segment inside the y-band, overhanging in x.
        interval = clip_segment_to_bbox(
            np.array([-5.0, 5.0]), np.array([5.0, 5.0]), box
        )
        assert interval is not None
        assert interval[0] == pytest.approx(0.5)

    def test_axis_parallel_outside_band(self):
        box = BBox(0, 0, 10, 10)
        assert (
            clip_segment_to_bbox(np.array([-5.0, 50.0]), np.array([5.0, 50.0]), box)
            is None
        )


class TestBBoxUnionChains:
    def test_union_all_single(self):
        box = BBox(1, 2, 3, 4)
        assert BBox.union_all([box]) == box

    def test_union_is_commutative(self):
        a = BBox(0, 0, 1, 1)
        b = BBox(5, -2, 6, 0)
        assert a.union(b) == b.union(a)
