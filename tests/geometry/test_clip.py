"""Tests for repro.geometry.clip (Liang-Barsky)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import BBox
from repro.geometry.clip import clip_segment_to_bbox, segment_intersects_bbox

BOX = BBox(0.0, 0.0, 10.0, 10.0)


class TestSegmentIntersectsBBox:
    def test_fully_inside(self):
        assert segment_intersects_bbox([2, 2], [8, 8], BOX)

    def test_crossing_through(self):
        assert segment_intersects_bbox([-5, 5], [15, 5], BOX)

    def test_clipping_a_corner(self):
        assert segment_intersects_bbox([-1, 8], [3, 12], BOX)

    def test_fully_outside_one_side(self):
        assert not segment_intersects_bbox([12, 0], [12, 10], BOX)

    def test_diagonal_miss_near_corner(self):
        assert not segment_intersects_bbox([11, 10], [10, 11.5], BOX)

    def test_touching_edge_counts(self):
        assert segment_intersects_bbox([10, 2], [15, 2], BOX)

    def test_degenerate_point_inside(self):
        assert segment_intersects_bbox([5, 5], [5, 5], BOX)

    def test_degenerate_point_outside(self):
        assert not segment_intersects_bbox([50, 5], [50, 5], BOX)

    def test_vertical_segment_spanning(self):
        assert segment_intersects_bbox([5, -5], [5, 15], BOX)


class TestClipInterval:
    def test_full_crossing_interval(self):
        interval = clip_segment_to_bbox(np.array([-10.0, 5.0]), np.array([20.0, 5.0]), BOX)
        assert interval is not None
        u0, u1 = interval
        assert u0 == pytest.approx(10 / 30)
        assert u1 == pytest.approx(20 / 30)

    def test_inside_interval_is_unit(self):
        interval = clip_segment_to_bbox(np.array([1.0, 1.0]), np.array([9.0, 9.0]), BOX)
        assert interval == (0.0, 1.0)

    def test_miss_returns_none(self):
        assert clip_segment_to_bbox(np.array([20.0, 0.0]), np.array([30.0, 0.0]), BOX) is None

    @given(
        st.floats(-20, 20, allow_nan=False),
        st.floats(-20, 20, allow_nan=False),
        st.floats(-20, 20, allow_nan=False),
        st.floats(-20, 20, allow_nan=False),
    )
    def test_interval_endpoints_inside_box(self, x0, y0, x1, y1):
        """Wherever clipping succeeds, the clipped points lie in the box."""
        p0 = np.array([x0, y0])
        p1 = np.array([x1, y1])
        interval = clip_segment_to_bbox(p0, p1, BOX)
        if interval is None:
            return
        for u in interval:
            point = p0 + u * (p1 - p0)
            assert BOX.expanded(1e-6).contains_point(point[0], point[1])
