"""Tests for repro.geometry.bbox."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import BBox


def boxes() -> st.SearchStrategy[BBox]:
    coord = st.floats(-1000, 1000, allow_nan=False)
    return st.builds(
        lambda x1, y1, x2, y2: BBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)),
        coord,
        coord,
        coord,
        coord,
    )


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="invalid bbox"):
            BBox(1.0, 0.0, 0.0, 2.0)

    def test_degenerate_point_box_is_valid(self):
        box = BBox(1.0, 2.0, 1.0, 2.0)
        assert box.area == 0.0
        assert box.contains_point(1.0, 2.0)

    def test_of_points(self):
        box = BBox.of_points(np.array([[1.0, 5.0], [-2.0, 3.0], [4.0, 4.0]]))
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2.0, 3.0, 4.0, 5.0)

    def test_of_points_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            BBox.of_points(np.empty((0, 2)))

    def test_union_all_rejects_empty(self):
        with pytest.raises(ValueError, match="no boxes"):
            BBox.union_all([])

    def test_union_all(self):
        box = BBox.union_all([BBox(0, 0, 1, 1), BBox(5, -2, 6, 0)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, -2, 6, 1)


class TestPredicates:
    def test_contains_boundary(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains_point(0, 0)
        assert box.contains_point(10, 10)
        assert not box.contains_point(10.001, 5)

    def test_intersects_touching_edges(self):
        assert BBox(0, 0, 1, 1).intersects(BBox(1, 0, 2, 1))

    def test_disjoint(self):
        assert not BBox(0, 0, 1, 1).intersects(BBox(2, 2, 3, 3))

    def test_nested(self):
        assert BBox(0, 0, 10, 10).intersects(BBox(2, 2, 3, 3))

    @given(boxes(), boxes())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        for box in (a, b):
            assert u.contains_point(box.min_x, box.min_y)
            assert u.contains_point(box.max_x, box.max_y)


class TestDerived:
    def test_center_width_height(self):
        box = BBox(0, 2, 4, 8)
        assert box.center == (2.0, 5.0)
        assert box.width == 4.0
        assert box.height == 6.0
        assert box.area == 24.0

    def test_expanded(self):
        box = BBox(0, 0, 2, 2).expanded(1.0)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-1, -1, 3, 3)

    def test_expanded_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            BBox(0, 0, 1, 1).expanded(-0.5)
