"""Tests for repro.geometry.interpolation (paper Eqs. 1-2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    segment_speeds,
    synchronized_distances,
    time_ratio_position,
    time_ratio_positions,
)


class TestTimeRatioPosition:
    def test_midpoint_in_time_is_midpoint_in_space(self):
        pos = time_ratio_position(0.0, [0, 0], 10.0, [100, 40], 5.0)
        np.testing.assert_allclose(pos, [50, 20])

    def test_at_start_and_end(self):
        np.testing.assert_allclose(
            time_ratio_position(0.0, [1, 2], 10.0, [3, 4], 0.0), [1, 2]
        )
        np.testing.assert_allclose(
            time_ratio_position(0.0, [1, 2], 10.0, [3, 4], 10.0), [3, 4]
        )

    def test_unequal_time_ratio(self):
        # 2 of 10 seconds elapsed -> 20% of the way.
        pos = time_ratio_position(0.0, [0, 0], 10.0, [50, 100], 2.0)
        np.testing.assert_allclose(pos, [10, 20])

    def test_zero_duration_chord_returns_start(self):
        pos = time_ratio_position(5.0, [7, 8], 5.0, [100, 100], 5.0)
        np.testing.assert_allclose(pos, [7, 8])

    def test_extrapolation_is_linear(self):
        pos = time_ratio_position(0.0, [0, 0], 10.0, [10, 0], 20.0)
        np.testing.assert_allclose(pos, [20, 0])

    @given(st.floats(0.0, 1.0))
    def test_vectorized_matches_scalar(self, frac):
        ts, te = 3.0, 13.0
        ps, pe = np.array([-5.0, 2.0]), np.array([45.0, -18.0])
        ti = ts + frac * (te - ts)
        batch = time_ratio_positions(ts, ps, te, pe, np.array([ti]))
        np.testing.assert_allclose(batch[0], time_ratio_position(ts, ps, te, pe, ti))


class TestSynchronizedDistances:
    def test_constant_velocity_has_zero_distance(self):
        t = np.array([0.0, 10.0, 20.0, 30.0])
        xy = np.column_stack([t * 3.0, t * -2.0])
        dist = synchronized_distances(t, xy, 0, 3)
        np.testing.assert_allclose(dist, 0.0, atol=1e-9)

    def test_detour_point_measured_synchronously(self):
        # Object goes 0 -> 100 in 10 s but was at (50, 30) at t=5: the
        # synchronized position is (50, 0), so the distance is 30 (the
        # perpendicular distance happens to agree here).
        t = np.array([0.0, 5.0, 10.0])
        xy = np.array([[0.0, 0.0], [50.0, 30.0], [100.0, 0.0]])
        dist = synchronized_distances(t, xy, 0, 2)
        np.testing.assert_allclose(dist, [30.0])

    def test_time_skew_differs_from_perpendicular(self):
        # The object dwells: at t=9 it is still at x=10. Synchronized
        # position at t=9 is x=90 -> distance 80, while the perpendicular
        # distance to the chord is 0.
        t = np.array([0.0, 9.0, 10.0])
        xy = np.array([[0.0, 0.0], [10.0, 0.0], [100.0, 0.0]])
        dist = synchronized_distances(t, xy, 0, 2)
        np.testing.assert_allclose(dist, [80.0])

    def test_empty_for_adjacent_chord(self):
        t = np.array([0.0, 1.0])
        xy = np.zeros((2, 2))
        assert synchronized_distances(t, xy, 0, 1).size == 0

    def test_rejects_reversed_chord(self):
        t = np.array([0.0, 1.0, 2.0])
        xy = np.zeros((3, 2))
        with pytest.raises(ValueError, match="must exceed"):
            synchronized_distances(t, xy, 2, 1)


class TestSegmentSpeeds:
    def test_known_speeds(self):
        t = np.array([0.0, 10.0, 20.0])
        xy = np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 50.0]])
        np.testing.assert_allclose(segment_speeds(t, xy), [10.0, 5.0])

    def test_stationary_segment_zero_speed(self):
        t = np.array([0.0, 5.0])
        xy = np.array([[3.0, 3.0], [3.0, 3.0]])
        np.testing.assert_allclose(segment_speeds(t, xy), [0.0])

    def test_irregular_sampling(self):
        t = np.array([0.0, 1.0, 11.0])
        xy = np.array([[0.0, 0.0], [6.0, 8.0], [6.0, 8.0]])
        np.testing.assert_allclose(segment_speeds(t, xy), [10.0, 0.0])
