"""Tests for repro.geometry.projection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import LocalProjection, haversine


class TestLocalProjection:
    def test_reference_maps_to_origin(self):
        proj = LocalProjection(6.9, 52.2)
        x, y = proj.forward(6.9, 52.2)
        assert float(x) == pytest.approx(0.0)
        assert float(y) == pytest.approx(0.0)

    def test_axes_orientation(self):
        proj = LocalProjection(6.0, 52.0)
        x_east, _ = proj.forward(6.01, 52.0)
        _, y_north = proj.forward(6.0, 52.01)
        assert float(x_east) > 0
        assert float(y_north) > 0

    def test_roundtrip_exact(self):
        proj = LocalProjection(6.9, 52.2)
        lons = np.array([6.85, 6.9, 7.02])
        lats = np.array([52.1, 52.25, 52.18])
        x, y = proj.forward(lons, lats)
        lon2, lat2 = proj.inverse(x, y)
        np.testing.assert_allclose(lon2, lons, atol=1e-12)
        np.testing.assert_allclose(lat2, lats, atol=1e-12)

    def test_matches_haversine_at_city_scale(self):
        # Planar distance should agree with the great-circle distance to
        # well under a percent over ~10 km.
        proj = LocalProjection(6.9, 52.2)
        x1, y1 = proj.forward(6.9, 52.2)
        x2, y2 = proj.forward(7.0, 52.25)
        planar = float(np.hypot(x2 - x1, y2 - y1))
        great_circle = haversine(6.9, 52.2, 7.0, 52.25)
        assert planar == pytest.approx(great_circle, rel=5e-3)

    def test_centered_on(self):
        proj = LocalProjection.centered_on(np.array([6.0, 8.0]), np.array([50.0, 54.0]))
        assert proj.ref_lon == 7.0
        assert proj.ref_lat == 52.0

    def test_centered_on_rejects_empty(self):
        with pytest.raises(ValueError, match="zero points"):
            LocalProjection.centered_on(np.array([]), np.array([]))

    @given(
        st.floats(-0.2, 0.2, allow_nan=False),
        st.floats(-0.2, 0.2, allow_nan=False),
    )
    def test_roundtrip_property(self, dlon, dlat):
        proj = LocalProjection(5.0, 51.0)
        x, y = proj.forward(5.0 + dlon, 51.0 + dlat)
        lon, lat = proj.inverse(x, y)
        assert float(lon) == pytest.approx(5.0 + dlon, abs=1e-9)
        assert float(lat) == pytest.approx(51.0 + dlat, abs=1e-9)
