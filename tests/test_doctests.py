"""Executable docstring examples stay correct."""

from __future__ import annotations

import doctest

import pytest

import repro.trajectory.builder

MODULES_WITH_EXAMPLES = [
    repro.trajectory.builder,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0
