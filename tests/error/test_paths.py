"""Tests for generic path-to-path error evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.error import (
    max_path_distance,
    mean_path_distance,
    mean_synchronized_error,
)
from repro.exceptions import TrajectoryError
from repro.trajectory import CubicHermitePath, Trajectory


class TestPathDistances:
    def test_matches_closed_form_for_linear_paths(self, zigzag):
        approx = zigzag.subset([0, 9, len(zigzag) - 1])
        sampled = mean_path_distance(zigzag, approx, n_samples=20_001)
        exact = mean_synchronized_error(zigzag, approx)
        assert sampled == pytest.approx(exact, rel=2e-3)

    def test_identical_paths_zero(self, zigzag):
        assert mean_path_distance(zigzag, zigzag) == pytest.approx(0.0, abs=1e-9)
        assert max_path_distance(zigzag, zigzag) == pytest.approx(0.0, abs=1e-9)

    def test_spline_vs_trajectory(self, straight_line):
        spline = CubicHermitePath(straight_line)
        assert mean_path_distance(straight_line, spline) == pytest.approx(0.0, abs=1e-6)

    def test_partial_overlap_evaluates_intersection(self):
        t = np.arange(0.0, 100.0, 10.0)
        a = Trajectory(t, np.column_stack([t, np.zeros_like(t)]))
        b = Trajectory(t + 50.0, np.column_stack([t + 50.0, np.full_like(t, 7.0)]))
        assert mean_path_distance(a, b) == pytest.approx(7.0)

    def test_disjoint_paths_raise(self):
        a = Trajectory.from_points([(0, 0, 0), (10, 1, 1)])
        b = Trajectory.from_points([(100, 0, 0), (110, 1, 1)])
        with pytest.raises(TrajectoryError, match="overlap"):
            mean_path_distance(a, b)

    def test_mean_at_most_max(self, zigzag):
        approx = zigzag.subset([0, len(zigzag) - 1])
        assert mean_path_distance(zigzag, approx) <= max_path_distance(zigzag, approx)

    def test_sample_count_validation(self, zigzag):
        with pytest.raises(ValueError):
            mean_path_distance(zigzag, zigzag, n_samples=1)
