"""Tests for the closed-form time-synchronous error (paper Sect. 4.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.error import (
    max_synchronized_error,
    mean_synchronized_error,
    mean_synchronized_error_sampled,
    segment_mean_distance,
    synchronized_deltas,
)
from repro.exceptions import TrajectoryError
from repro.trajectory import Trajectory

from tests.conftest import trajectories, vectors2


def numeric_mean_distance(v0: np.ndarray, v1: np.ndarray, samples: int = 200_001) -> float:
    """Brute-force average of |v0 + u (v1 - v0)| over [0, 1]."""
    u = np.linspace(0.0, 1.0, samples)
    pts = v0[None, :] + u[:, None] * (v1 - v0)[None, :]
    return float(np.trapezoid(np.hypot(pts[:, 0], pts[:, 1]), u))


class TestSegmentMeanDistance:
    """The per-interval integral, case by case (paper's case analysis)."""

    def test_translation_case_constant_distance(self):
        # Paper case c1 = 0: v0 == v1 -> constant distance.
        assert segment_mean_distance([3, 4], [3, 4]) == pytest.approx(5.0)

    def test_shared_start_case(self):
        # Paper: segments share start point -> half the end distance.
        assert segment_mean_distance([0, 0], [6, 8]) == pytest.approx(5.0)

    def test_shared_end_case(self):
        # Paper: segments share end point -> half the start distance.
        assert segment_mean_distance([6, 8], [0, 0]) == pytest.approx(5.0)

    def test_parallel_deltas_with_sign_change(self):
        # delta ratios respected with a zero crossing inside the interval:
        # |u - 1/2| integrates to 1/4 per unit length.
        v0 = np.array([-2.0, 0.0])
        v1 = np.array([2.0, 0.0])
        assert segment_mean_distance(v0, v1) == pytest.approx(1.0)

    def test_general_case_against_numeric(self):
        v0 = np.array([10.0, -3.0])
        v1 = np.array([-4.0, 12.0])
        assert segment_mean_distance(v0, v1) == pytest.approx(
            numeric_mean_distance(v0, v1), rel=1e-6
        )

    def test_zero_everywhere(self):
        assert segment_mean_distance([0, 0], [0, 0]) == 0.0

    @settings(max_examples=200)
    @given(vectors2(500.0), vectors2(500.0))
    def test_matches_numeric_integration(self, v0, v1):
        closed = segment_mean_distance(v0, v1)
        numeric = numeric_mean_distance(np.asarray(v0), np.asarray(v1), samples=20_001)
        assert closed == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    @given(vectors2(), vectors2())
    def test_bounds(self, v0, v1):
        """Mean distance lies between 0 and max(|v0|, |v1|)."""
        mean = segment_mean_distance(v0, v1)
        upper = max(np.hypot(*v0), np.hypot(*v1))
        assert -1e-9 <= mean <= upper + 1e-9

    @given(vectors2(), vectors2())
    def test_symmetry_in_time_reversal(self, v0, v1):
        assert segment_mean_distance(v0, v1) == pytest.approx(
            segment_mean_distance(v1, v0), rel=1e-9, abs=1e-12
        )


class TestMeanSynchronizedError:
    def test_identical_trajectories_zero_error(self, zigzag):
        assert mean_synchronized_error(zigzag, zigzag) == pytest.approx(0.0, abs=1e-9)

    def test_straight_line_fully_compressed_zero_error(self, straight_line):
        approx = straight_line.subset([0, len(straight_line) - 1])
        assert mean_synchronized_error(straight_line, approx) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_translated_approximation_constant_error(self, zigzag):
        shifted = zigzag.shifted(dx=3.0, dy=4.0)
        assert mean_synchronized_error(zigzag, shifted) == pytest.approx(5.0)
        assert max_synchronized_error(zigzag, shifted) == pytest.approx(5.0)

    def test_hand_computed_triangle(self):
        # Original dwells at (100, 0) from t=5..10 while the approximation
        # keeps moving: distance grows 0 -> 50 over [0,5] (avg 25) and
        # shrinks 50 -> 0 over [5,10]... computed exactly below.
        original = Trajectory.from_points([(0, 0, 0), (5, 100, 0), (10, 100, 0)])
        approx = Trajectory.from_points([(0, 0, 0), (10, 100, 0)])
        # Approx position at t: 10t. Original: 20t then 100.
        # [0,5]: |20t-10t| = 10t, avg 25. [5,10]: |100-10t|, avg 25.
        assert mean_synchronized_error(original, approx) == pytest.approx(25.0)
        assert max_synchronized_error(original, approx) == pytest.approx(50.0)

    def test_requires_matching_interval(self, zigzag):
        truncated = zigzag.slice_index(0, len(zigzag) - 1)
        with pytest.raises(TrajectoryError, match="time interval"):
            mean_synchronized_error(zigzag, truncated)

    def test_rejects_single_point_original(self):
        single = Trajectory.from_points([(0, 0, 0)])
        with pytest.raises(TrajectoryError):
            mean_synchronized_error(single, single)

    def test_general_approximation_with_new_breakpoints(self, zigzag):
        """The error notion also works when the approximation is not a
        subseries of the original (merged-grid path)."""
        approx = zigzag.resample(13.0)
        closed = mean_synchronized_error(zigzag, approx)
        sampled = mean_synchronized_error_sampled(zigzag, approx, n_samples=40_001)
        assert closed == pytest.approx(sampled, rel=1e-3)

    @settings(max_examples=50, deadline=None)
    @given(trajectories(min_points=3, max_points=25))
    def test_closed_form_matches_numeric(self, traj):
        approx = traj.subset([0, len(traj) - 1])
        closed = mean_synchronized_error(traj, approx)
        sampled = mean_synchronized_error_sampled(traj, approx, n_samples=30_001)
        assert closed == pytest.approx(sampled, rel=2e-3, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(trajectories(min_points=3, max_points=25))
    def test_mean_below_max(self, traj):
        approx = traj.subset([0, len(traj) - 1])
        assert (
            mean_synchronized_error(traj, approx)
            <= max_synchronized_error(traj, approx) + 1e-9
        )


class TestSynchronizedDeltas:
    def test_per_point_view(self):
        original = Trajectory.from_points([(0, 0, 0), (5, 100, 0), (10, 100, 0)])
        approx = Trajectory.from_points([(0, 0, 0), (10, 100, 0)])
        deltas = synchronized_deltas(original, approx)
        np.testing.assert_allclose(deltas, [0.0, 50.0, 0.0])

    def test_max_error_equals_max_delta_for_subseries(self, zigzag):
        approx = zigzag.subset([0, 9, len(zigzag) - 1])
        assert max_synchronized_error(zigzag, approx) == pytest.approx(
            float(synchronized_deltas(zigzag, approx).max())
        )


class TestSampledEstimator:
    def test_rejects_too_few_samples(self, zigzag):
        approx = zigzag.subset([0, len(zigzag) - 1])
        with pytest.raises(ValueError, match="2 samples"):
            mean_synchronized_error_sampled(zigzag, approx, n_samples=1)

    def test_converges_with_resolution(self, zigzag):
        approx = zigzag.subset([0, len(zigzag) - 1])
        exact = mean_synchronized_error(zigzag, approx)
        coarse = mean_synchronized_error_sampled(zigzag, approx, n_samples=64)
        fine = mean_synchronized_error_sampled(zigzag, approx, n_samples=8192)
        assert abs(fine - exact) < abs(coarse - exact) + 1e-9
