"""Property tests for the non-finite input guard on the error integral.

Before the guard, a NaN or infinity in a difference vector flowed
through :func:`segment_mean_distance`'s case analysis and could come out
as a quiet NaN — or, worse, a *finite* wrong value via the degenerate-
case clamps — silently poisoning every aggregate error built on top.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.error import segment_mean_distance
from repro.exceptions import TrajectoryError

from tests.conftest import vectors2

_BAD = st.sampled_from([float("nan"), float("inf"), float("-inf")])


@st.composite
def vector_with_bad_component(draw: st.DrawFn) -> np.ndarray:
    vec = draw(vectors2())
    vec[draw(st.integers(0, 1))] = draw(_BAD)
    return vec


class TestFiniteGuard:
    @given(bad=vector_with_bad_component(), good=vectors2())
    @settings(max_examples=60, deadline=None)
    def test_bad_first_vector_raises(self, bad, good):
        with pytest.raises(TrajectoryError, match="finite"):
            segment_mean_distance(bad, good)

    @given(good=vectors2(), bad=vector_with_bad_component())
    @settings(max_examples=60, deadline=None)
    def test_bad_second_vector_raises(self, good, bad):
        with pytest.raises(TrajectoryError, match="finite"):
            segment_mean_distance(good, bad)

    def test_message_shows_the_offending_vectors(self):
        with pytest.raises(TrajectoryError, match=r"v0=\[nan"):
            segment_mean_distance(
                np.array([float("nan"), 0.0]), np.array([1.0, 1.0])
            )

    @given(v0=vectors2(), v1=vectors2())
    @settings(max_examples=120, deadline=None)
    def test_finite_inputs_give_finite_nonnegative_output(self, v0, v1):
        result = segment_mean_distance(v0, v1)
        assert math.isfinite(result)
        assert result >= 0.0

    @given(v0=vectors2(), v1=vectors2())
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_endpoint_maximum(self, v0, v1):
        # dist(u) is convex in u, so its mean can't beat the larger
        # endpoint norm.
        result = segment_mean_distance(v0, v1)
        assert result <= max(np.linalg.norm(v0), np.linalg.norm(v1)) + 1e-9
