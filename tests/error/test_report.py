"""Tests for the detailed compression report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TDTR
from repro.error import max_synchronized_error
from repro.error.report import detailed_report
from repro.exceptions import TrajectoryError
from repro.trajectory import Trajectory


class TestDetailedReport:
    @pytest.fixture
    def report_pair(self, urban_trajectory):
        approx = TDTR(epsilon=40.0).compress(urban_trajectory).compressed
        return urban_trajectory, approx, detailed_report(urban_trajectory, approx)

    def test_counts(self, report_pair):
        original, approx, report = report_pair
        assert report.n_original == len(original)
        assert report.n_kept == len(approx)
        assert len(report.segments) == len(approx) - 1

    def test_percentiles_ordered(self, report_pair):
        _, _, report = report_pair
        values = [report.percentiles_m[p] for p in sorted(report.percentiles_m)]
        assert values == sorted(values)
        assert all(v >= 0 for v in values)

    def test_worst_moment_consistent_with_max_error(self, report_pair):
        original, approx, report = report_pair
        assert report.worst_error_m == pytest.approx(
            max_synchronized_error(original, approx)
        )
        assert original.start_time <= report.worst_time <= original.end_time

    def test_segment_rows_partition_points(self, report_pair):
        original, _, report = report_pair
        # Interior points are covered once; boundary points are assigned
        # to the segment starting at them.
        assert sum(s.n_original_points for s in report.segments) == len(original)

    def test_segment_max_bounded_by_threshold(self, report_pair):
        _, _, report = report_pair
        for seg in report.segments:
            assert seg.max_sync_error_m <= 40.0 + 1e-9
            assert seg.mean_sync_error_m <= seg.max_sync_error_m + 1e-12

    def test_worst_segments_sorted(self, report_pair):
        _, _, report = report_pair
        worst = report.worst_segments(5)
        errors = [s.max_sync_error_m for s in worst]
        assert errors == sorted(errors, reverse=True)

    def test_render_mentions_key_numbers(self, report_pair):
        _, _, report = report_pair
        text = report.render()
        assert "compression:" in text
        assert "p50=" in text
        assert "worst moment" in text

    def test_identity_report_zero_everywhere(self, zigzag):
        report = detailed_report(zigzag, zigzag)
        assert report.worst_error_m == pytest.approx(0.0, abs=1e-9)
        assert all(s.max_sync_error_m <= 1e-9 for s in report.segments)

    def test_custom_percentiles(self, zigzag):
        approx = zigzag.subset([0, len(zigzag) - 1])
        report = detailed_report(zigzag, approx, percentiles=(25, 75))
        assert set(report.percentiles_m) == {25, 75}

    def test_rejects_single_point_approx(self, zigzag):
        with pytest.raises(TrajectoryError):
            detailed_report(zigzag, Trajectory.from_points([(0, 0, 0)]))

    def test_hand_computed_segment_stats(self):
        original = Trajectory.from_points(
            [(0, 0, 0), (5, 100, 0), (10, 100, 0), (15, 100, 0), (20, 200, 0)]
        )
        approx = original.subset([0, 2, 4])
        report = detailed_report(original, approx)
        # Segment 0 covers originals at t=0 and t=5 (boundary at t=10
        # belongs to segment 1).
        assert report.segments[0].n_original_points == 2
        assert report.segments[0].max_sync_error_m == pytest.approx(50.0)
