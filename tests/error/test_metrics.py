"""Tests for compression accounting and the composite report."""

from __future__ import annotations

import pytest

from repro.core import TDTR
from repro.error import (
    compression_percent,
    compression_ratio,
    evaluate_compression,
    mean_speed_error,
)
from repro.trajectory import Trajectory


class TestCompressionAccounting:
    def test_percent(self):
        assert compression_percent(100, 10) == pytest.approx(90.0)
        assert compression_percent(100, 100) == 0.0

    def test_percent_validation(self):
        with pytest.raises(ValueError):
            compression_percent(0, 0)
        with pytest.raises(ValueError):
            compression_percent(10, 0)
        with pytest.raises(ValueError):
            compression_percent(10, 11)

    def test_ratio(self):
        assert compression_ratio(100, 10) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            compression_ratio(100, 0)


class TestMeanSpeedError:
    def test_zero_when_speed_profile_preserved(self, straight_line):
        approx = straight_line.subset([0, len(straight_line) - 1])
        assert mean_speed_error(straight_line, approx) == pytest.approx(0.0, abs=1e-9)

    def test_known_value(self):
        # Original: 20 m/s for 5 s then 0 m/s for 5 s. Approx: 10 m/s
        # throughout. Mean |diff| = (10 + 10) / 2.
        original = Trajectory.from_points([(0, 0, 0), (5, 100, 0), (10, 100, 0)])
        approx = original.subset([0, 2])
        assert mean_speed_error(original, approx) == pytest.approx(10.0)

    def test_requires_two_points(self):
        single = Trajectory.from_points([(0, 0, 0)])
        with pytest.raises(ValueError):
            mean_speed_error(single, single)


class TestEvaluateCompression:
    def test_report_fields_consistent(self, urban_trajectory):
        result = TDTR(epsilon=40.0).compress(urban_trajectory)
        report = evaluate_compression(urban_trajectory, result.compressed)
        assert report.n_original == len(urban_trajectory)
        assert report.n_kept == result.n_kept
        assert report.compression_percent == pytest.approx(result.compression_percent)
        assert report.compression_ratio >= 1.0
        assert 0.0 <= report.mean_sync_error_m <= report.max_sync_error_m
        assert report.max_sync_error_m <= 40.0 + 1e-9  # the TD-TR guarantee
        assert report.mean_speed_error_ms >= 0.0

    def test_summary_mentions_counts(self, zigzag):
        report = evaluate_compression(zigzag, zigzag)
        text = report.summary()
        assert "19 -> 19" in text
        assert "0.0%" in text

    def test_identity_report_is_all_zero(self, zigzag):
        report = evaluate_compression(zigzag, zigzag)
        assert report.mean_sync_error_m == pytest.approx(0.0, abs=1e-9)
        assert report.max_perp_error_m == pytest.approx(0.0, abs=1e-9)
        assert report.mean_speed_error_ms == pytest.approx(0.0, abs=1e-9)


class TestReportSerialization:
    @pytest.fixture
    def report(self, zigzag):
        return evaluate_compression(TDTR(epsilon=30.0).compress(zigzag))

    def test_to_dict_has_fields_and_derived(self, report):
        data = report.to_dict()
        assert data["n_original"] == report.n_original
        assert data["mean_sync_error_m"] == report.mean_sync_error_m
        assert data["compression_percent"] == pytest.approx(
            report.compression_percent
        )
        assert data["compression_ratio"] == pytest.approx(
            report.compression_ratio
        )

    def test_round_trip(self, report):
        from repro.error.metrics import CompressionReport

        clone = CompressionReport.from_dict(report.to_dict())
        assert clone == report

    def test_from_dict_ignores_extras(self, report):
        from repro.error.metrics import CompressionReport

        data = report.to_dict()
        data["something_else"] = 1
        assert CompressionReport.from_dict(data) == report

    def test_from_dict_missing_field(self, report):
        from repro.error.metrics import CompressionReport

        data = report.to_dict()
        del data["max_sync_error_m"]
        with pytest.raises(ValueError, match="missing.*max_sync_error_m"):
            CompressionReport.from_dict(data)


class TestEvaluateCompressionInputs:
    def test_accepts_result_pair_and_tuple(self, zigzag):
        result = TDTR(epsilon=30.0).compress(zigzag)
        from_pair = evaluate_compression(zigzag, result.compressed)
        from_result = evaluate_compression(result)
        from_tuple = evaluate_compression((zigzag, result.compressed))
        assert from_result == from_pair
        assert from_tuple == from_pair

    def test_rejects_bare_trajectory(self, zigzag):
        with pytest.raises(TypeError, match="CompressionResult"):
            evaluate_compression(zigzag)
