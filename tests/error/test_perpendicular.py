"""Tests for the classic perpendicular error notions (paper Sect. 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DouglasPeucker
from repro.error import (
    area_error_sampled,
    max_perpendicular_error,
    mean_perpendicular_error,
    perpendicular_deltas,
)
from repro.exceptions import TrajectoryError
from repro.trajectory import Trajectory


class TestPerpendicularDeltas:
    def test_retained_points_contribute_zero(self, zigzag):
        approx = zigzag.subset([0, 5, 11, len(zigzag) - 1])
        deltas = perpendicular_deltas(zigzag, approx)
        assert deltas[0] == pytest.approx(0.0, abs=1e-9)
        assert deltas[5] == pytest.approx(0.0, abs=1e-9)
        assert deltas[-1] == pytest.approx(0.0, abs=1e-9)

    def test_known_geometry(self):
        original = Trajectory.from_points([(0, 0, 0), (5, 50, 30), (10, 100, 0)])
        approx = original.subset([0, 2])
        deltas = perpendicular_deltas(original, approx)
        np.testing.assert_allclose(deltas, [0.0, 30.0, 0.0])

    def test_requires_covering_interval(self, zigzag):
        with pytest.raises(TrajectoryError):
            perpendicular_deltas(zigzag, zigzag.slice_index(0, 3))

    def test_line_vs_segment_distance(self):
        # A dwell point "behind" the chord start: segment distance is to
        # the endpoint, line distance is the (smaller) perpendicular one.
        original = Trajectory.from_points([(0, 0, 0), (5, -30, 40), (10, 100, 0)])
        approx = original.subset([0, 2])
        to_segment = perpendicular_deltas(original, approx, to_segment=True)
        to_line = perpendicular_deltas(original, approx, to_segment=False)
        assert to_segment[1] == pytest.approx(50.0)
        assert to_line[1] == pytest.approx(40.0)


class TestAggregates:
    def test_mean_and_max(self):
        original = Trajectory.from_points(
            [(0, 0, 0), (5, 50, 30), (10, 100, 0), (15, 150, -12), (20, 200, 0)]
        )
        approx = original.subset([0, 4])
        assert max_perpendicular_error(original, approx) == pytest.approx(30.0)
        assert mean_perpendicular_error(original, approx) == pytest.approx(
            (0 + 30 + 0 + 12 + 0) / 5
        )

    def test_ndp_threshold_bounds_max_line_error(self, urban_trajectory):
        for eps in (20.0, 50.0, 80.0):
            approx = DouglasPeucker(epsilon=eps).compress(urban_trajectory).compressed
            assert (
                max_perpendicular_error(urban_trajectory, approx, to_segment=False)
                <= eps + 1e-9
            )


class TestAreaError:
    def test_zero_for_identity(self, zigzag):
        assert area_error_sampled(zigzag, zigzag) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_lossy_approx(self, zigzag):
        approx = zigzag.subset([0, len(zigzag) - 1])
        assert area_error_sampled(zigzag, approx) > 1.0

    def test_at_most_max_perpendicular(self, zigzag):
        approx = zigzag.subset([0, len(zigzag) - 1])
        assert area_error_sampled(zigzag, approx) <= max_perpendicular_error(
            zigzag, approx, to_segment=True
        )

    def test_rejects_bad_sample_count(self, zigzag):
        with pytest.raises(ValueError):
            area_error_sampled(zigzag, zigzag, n_samples=1)

    def test_requires_covering_interval(self, zigzag):
        with pytest.raises(TrajectoryError):
            area_error_sampled(zigzag, zigzag.slice_index(1, len(zigzag)))
